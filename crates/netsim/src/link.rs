//! Per-link loss and delay model.
//!
//! Wireless links in the DES testbed exhibit loss and delay that grow with
//! channel load; ExCovery compensates for incomplete control by measuring
//! rather than assuming. Our model captures the established qualitative
//! behaviour (cf. Milic & Malek, "Properties of wireless multihop networks
//! in theory and practice"):
//!
//! * a base loss probability per link (imperfect medium),
//! * loss rising convexly with utilization — `p = 1 − (1−p₀)·e^(−k·u)`,
//! * delay composed of a base propagation/MAC component plus an M/M/1-style
//!   queueing term `d = d₀ · (1 + u/(1−u))`, capped to keep the simulation
//!   stable at overload,
//! * utilization `u` computed from the background traffic flows crossing
//!   the link (see [`crate::traffic`]).

use crate::time::SimDuration;

/// Parameters of the link model, shared by all links of a simulation.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Loss probability of an idle link.
    pub base_loss: f64,
    /// Exponent steepness of load-induced loss.
    pub load_loss_factor: f64,
    /// One-hop delay of an idle link.
    pub base_delay: SimDuration,
    /// Relative jitter amplitude applied to each hop delay (±fraction).
    pub jitter_frac: f64,
    /// Nominal link capacity in kilobits per second; utilization is
    /// offered background load divided by this.
    pub capacity_kbps: f64,
    /// Utilization cap to keep queueing delay finite.
    pub max_utilization: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self {
            // Calibrated so an idle 1-hop mDNS exchange succeeds >99% and a
            // saturated mesh loses a substantial share of multicasts —
            // the regimes spanned by the paper's case study.
            base_loss: 0.01,
            load_loss_factor: 2.0,
            base_delay: SimDuration::from_micros(800),
            jitter_frac: 0.25,
            capacity_kbps: 6_000.0,
            max_utilization: 0.95,
        }
    }
}

impl LinkModel {
    /// Effective loss probability of a link at `offered_kbps` background load.
    #[inline]
    pub fn loss_probability(&self, offered_kbps: f64) -> f64 {
        let u = self.utilization(offered_kbps);
        // Idle link: exp(0) = 1 exactly, so skip the transcendental.
        if u == 0.0 {
            return self.base_loss;
        }
        1.0 - (1.0 - self.base_loss) * (-self.load_loss_factor * u).exp()
    }

    /// Effective one-hop delay at `offered_kbps` background load, before
    /// jitter. Grows hyperbolically with utilization (queueing).
    #[inline]
    pub fn hop_delay(&self, offered_kbps: f64) -> SimDuration {
        let u = self.utilization(offered_kbps);
        // Idle link: the queueing factor is exactly 1.
        if u == 0.0 {
            return self.base_delay;
        }
        self.base_delay.mul_f64(1.0 + u / (1.0 - u))
    }

    /// Applies symmetric jitter to a delay: `jitter_draw` ∈ [0,1).
    pub fn jittered(&self, delay: SimDuration, jitter_draw: f64) -> SimDuration {
        let k = 1.0 + self.jitter_frac * (2.0 * jitter_draw - 1.0);
        delay.mul_f64(k.max(0.0))
    }

    /// The smallest delay any link crossing can experience: the idle base
    /// delay at the minimum jitter draw. Load, serialization time and
    /// injected fault delays only ever *add* to this. The sharded
    /// simulator uses it as the conservative lookahead: an event processed
    /// at time `t` cannot schedule a cross-shard arrival earlier than
    /// `t + min_transit_delay()` (see `crate::shard`). A zero value (a
    /// degenerate model) disables windowed parallelism.
    pub fn min_transit_delay(&self) -> SimDuration {
        self.base_delay.mul_f64((1.0 - self.jitter_frac).max(0.0))
    }

    /// Serialization time of `size_bytes` on this link.
    pub fn serialization_delay(&self, size_bytes: u32) -> SimDuration {
        let bits = f64::from(size_bytes) * 8.0;
        SimDuration::from_secs_f64(bits / (self.capacity_kbps * 1_000.0))
    }

    fn utilization(&self, offered_kbps: f64) -> f64 {
        (offered_kbps.max(0.0) / self.capacity_kbps).min(self.max_utilization)
    }
}

/// Tracks the background load (kbit/s) offered to each undirected link.
#[derive(Debug, Clone, Default)]
pub struct LinkLoad {
    // Keyed by (min, max) node index.
    load: crate::fasthash::FastHashMap<(u16, u16), f64>,
}

impl LinkLoad {
    /// Creates an empty load map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `kbps` of offered load to the link `a—b` (order-insensitive).
    pub fn add(&mut self, a: u16, b: u16, kbps: f64) {
        *self.load.entry(key(a, b)).or_insert(0.0) += kbps;
    }

    /// Removes `kbps` of offered load from the link `a—b`, clamping at 0.
    pub fn remove(&mut self, a: u16, b: u16, kbps: f64) {
        if let Some(v) = self.load.get_mut(&key(a, b)) {
            *v = (*v - kbps).max(0.0);
            if *v == 0.0 {
                self.load.remove(&key(a, b));
            }
        }
    }

    /// Current offered load on the link `a—b` in kbit/s.
    #[inline]
    pub fn get(&self, a: u16, b: u16) -> f64 {
        // Idle network fast path: no lookup per link crossing.
        if self.load.is_empty() {
            return 0.0;
        }
        self.load.get(&key(a, b)).copied().unwrap_or(0.0)
    }

    /// Clears all load (end-of-run reset).
    pub fn clear(&mut self) {
        self.load.clear();
    }

    /// Total offered load across all links (diagnostics).
    pub fn total(&self) -> f64 {
        self.load.values().sum()
    }

    /// Offered load of every loaded link, as `((a, b), kbps)` with
    /// `a <= b` (diagnostics/observability; iteration order unspecified).
    pub fn entries(&self) -> impl Iterator<Item = ((u16, u16), f64)> + '_ {
        self.load.iter().map(|(k, v)| (*k, *v))
    }
}

fn key(a: u16, b: u16) -> (u16, u16) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_loss_is_base_loss() {
        let m = LinkModel::default();
        assert!((m.loss_probability(0.0) - m.base_loss).abs() < 1e-12);
    }

    #[test]
    fn loss_monotone_in_load() {
        let m = LinkModel::default();
        let p0 = m.loss_probability(0.0);
        let p1 = m.loss_probability(1_000.0);
        let p2 = m.loss_probability(5_000.0);
        assert!(p0 < p1 && p1 < p2, "{p0} {p1} {p2}");
        assert!(p2 < 1.0);
    }

    #[test]
    fn loss_saturates_at_capacity_cap() {
        let m = LinkModel::default();
        // Beyond max_utilization the probability stops growing.
        assert_eq!(m.loss_probability(1e9), m.loss_probability(1e12));
    }

    #[test]
    fn delay_grows_with_load() {
        let m = LinkModel::default();
        let d0 = m.hop_delay(0.0);
        let d1 = m.hop_delay(3_000.0);
        assert_eq!(d0, m.base_delay);
        assert!(d1 > d0);
    }

    #[test]
    fn jitter_bounds() {
        let m = LinkModel::default();
        let d = SimDuration::from_millis(10);
        let lo = m.jittered(d, 0.0);
        let hi = m.jittered(d, 1.0 - 1e-12);
        assert!(lo < d && d < hi);
        assert!(lo >= d.mul_f64(1.0 - m.jitter_frac));
        assert!(hi <= d.mul_f64(1.0 + m.jitter_frac));
        // Mid draw is identity.
        assert_eq!(m.jittered(d, 0.5), d);
    }

    #[test]
    fn serialization_scales_with_size() {
        let m = LinkModel::default();
        let d1 = m.serialization_delay(100);
        let d2 = m.serialization_delay(200);
        let diff = (d2.as_nanos() as i64 - 2 * d1.as_nanos() as i64).abs();
        assert!(diff <= 1, "rounding beyond 1 ns: {diff}");
    }

    #[test]
    fn link_load_is_undirected_and_clamped() {
        let mut l = LinkLoad::new();
        l.add(3, 1, 100.0);
        assert_eq!(l.get(1, 3), 100.0);
        assert_eq!(l.get(3, 1), 100.0);
        l.add(1, 3, 50.0);
        assert_eq!(l.get(1, 3), 150.0);
        l.remove(3, 1, 200.0);
        assert_eq!(l.get(1, 3), 0.0);
        assert_eq!(l.total(), 0.0);
    }

    #[test]
    fn link_load_clear() {
        let mut l = LinkLoad::new();
        l.add(0, 1, 10.0);
        l.add(1, 2, 20.0);
        assert_eq!(l.total(), 30.0);
        l.clear();
        assert_eq!(l.get(0, 1), 0.0);
    }
}
