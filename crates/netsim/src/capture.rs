//! Packet captures.
//!
//! Each node records every packet it observes (sent, received or forwarded)
//! with its *local* timestamp and complete content — the raw material of the
//! `Packets` table of the paper's storage schema (Table I) and the basis for
//! deriving statistical connection parameters during later analysis
//! (§IV-B2).

use crate::packet::{Destination, PacketId, Payload, Port};
use crate::sim::NodeId;
use crate::time::SimTime;

/// How the capturing node observed the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaptureKind {
    /// The node transmitted the packet.
    Sent,
    /// The node received (and consumed) the packet.
    Received,
    /// The node relayed the packet towards another node.
    Forwarded,
}

/// One captured packet observation.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureRecord {
    /// Node that made the observation.
    pub node: NodeId,
    /// Local (drifting) clock reading at observation time.
    pub local_time: SimTime,
    /// Transmission identifier.
    pub packet_id: PacketId,
    /// 16-bit tagger id carried by the packet.
    pub tag: u16,
    /// Originating node of the packet.
    pub src: NodeId,
    /// Addressing of the packet.
    pub dst: Destination,
    /// Destination port.
    pub port: Port,
    /// Complete, unaltered payload. Shares the sender's allocation
    /// ([`Payload`] is `Arc`-backed), so capturing never copies bytes.
    pub payload: Payload,
    /// How the packet was observed.
    pub kind: CaptureKind,
}

/// Per-node capture buffer — the node's "temporary storage" (§IV-B5).
#[derive(Debug, Clone, Default)]
pub struct CaptureBuffer {
    records: Vec<CaptureRecord>,
}

impl CaptureBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    #[inline]
    pub fn record(&mut self, rec: CaptureRecord) {
        self.records.push(rec);
    }

    /// All records in observation order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drains all records (collection phase hands them to the master).
    pub fn drain(&mut self) -> Vec<CaptureRecord> {
        std::mem::take(&mut self.records)
    }

    /// Drops everything (run preparation: "network packets generated in
    /// previous runs must be dropped on all participants", §IV-C1).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Records observed on a given port.
    pub fn on_port(&self, port: Port) -> impl Iterator<Item = &CaptureRecord> {
        self.records.iter().filter(move |r| r.port == port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u16, port: Port, kind: CaptureKind) -> CaptureRecord {
        CaptureRecord {
            node: NodeId(node),
            local_time: SimTime::from_nanos(1),
            packet_id: PacketId(7),
            tag: 3,
            src: NodeId(0),
            dst: Destination::Multicast,
            port,
            payload: Payload::from("x"),
            kind,
        }
    }

    #[test]
    fn record_and_read_back() {
        let mut b = CaptureBuffer::new();
        assert!(b.is_empty());
        b.record(rec(1, 5353, CaptureKind::Sent));
        b.record(rec(1, 427, CaptureKind::Received));
        assert_eq!(b.len(), 2);
        assert_eq!(b.records()[0].kind, CaptureKind::Sent);
    }

    #[test]
    fn port_filter() {
        let mut b = CaptureBuffer::new();
        b.record(rec(1, 5353, CaptureKind::Sent));
        b.record(rec(1, 427, CaptureKind::Sent));
        b.record(rec(1, 5353, CaptureKind::Received));
        assert_eq!(b.on_port(5353).count(), 2);
        assert_eq!(b.on_port(427).count(), 1);
        assert_eq!(b.on_port(80).count(), 0);
    }

    #[test]
    fn drain_empties_buffer() {
        let mut b = CaptureBuffer::new();
        b.record(rec(2, 5353, CaptureKind::Forwarded));
        let drained = b.drain();
        assert_eq!(drained.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut b = CaptureBuffer::new();
        b.record(rec(2, 5353, CaptureKind::Sent));
        b.clear();
        assert!(b.is_empty());
    }
}
