//! Deterministic parallel execution of independent replications.
//!
//! ExCovery campaigns repeat an experiment many times with per-run seeds
//! (§IV-C1); MACI-style frameworks scale the same way — by fanning
//! *independent* runs out to workers. Replications never share state: each
//! gets its own seed derived from the campaign master seed and its
//! replication index, so the set of results is a pure function of
//! `(master_seed, replications)`. A single run can additionally parallelize
//! *internally* across spatial shards (`crate::shard`, `EXCOVERY_SHARDS`);
//! both axes are deterministic, and auto-sized worker pools divide the
//! machine's cores by the shard count so the two compose under one thread
//! budget.
//!
//! [`run_replications`] exploits that: scoped worker threads claim
//! replication indices from an atomic counter, execute them, and store each
//! result in its replication's slot. Results are returned **in replication
//! order**, so the output is byte-identical to [`run_replications_serial`]
//! no matter how many workers run or how execution interleaves — verified
//! by the serial-vs-parallel determinism test.

use crate::rng::derive_seed_indexed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Label mixed into per-replication seed derivation.
const REP_SEED_LABEL: &str = "campaign_rep";

/// Environment variable overriding the campaign worker count.
pub const WORKERS_ENV: &str = "EXCOVERY_WORKERS";

/// Parses an [`WORKERS_ENV`]-style worker count. An empty (or
/// whitespace-only) value means auto (`0`); anything else must be a
/// non-negative decimal integer, where `0` keeps its meaning of
/// "auto-size to available parallelism".
pub fn parse_workers(value: &str) -> Result<usize, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Ok(0);
    }
    trimmed.parse::<usize>().map_err(|_| {
        format!(
            "invalid worker count {value:?}: expected a non-negative integer \
             (0 or unset auto-sizes to available parallelism)"
        )
    })
}

/// Reads the worker count from [`WORKERS_ENV`]. Unset means auto (`0`);
/// an unparsable value aborts loudly instead of silently falling back to
/// auto — a typo in a campaign script must not quietly change the
/// execution shape of a measurement campaign.
pub fn workers_from_env() -> usize {
    match std::env::var(WORKERS_ENV) {
        Err(_) => 0,
        Ok(v) => parse_workers(&v).unwrap_or_else(|e| panic!("{WORKERS_ENV}: {e}")),
    }
}

/// Environment variable selecting the per-run spatial shard count
/// (`crate::shard`). `0`/unset means 1 (serial); results are bit-exact for
/// every value, so this only trades threads for wall-clock.
pub const SHARDS_ENV: &str = "EXCOVERY_SHARDS";

/// Parses an [`SHARDS_ENV`]-style shard count. Empty/whitespace means
/// serial (`1`); `0` also means serial; anything else must be a
/// non-negative decimal integer.
pub fn parse_shards(value: &str) -> Result<usize, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Ok(1);
    }
    trimmed
        .parse::<usize>()
        .map(|n| n.max(1))
        .map_err(|_| {
            format!(
                "invalid shard count {value:?}: expected a non-negative integer \
                 (0 or unset runs serially with one shard)"
            )
        })
}

/// Reads the shard count from [`SHARDS_ENV`]. Unset means serial (`1`); an
/// unparsable value aborts loudly, mirroring [`workers_from_env`] — shard
/// count never changes results, but a typo must not silently change the
/// execution shape of a campaign either.
pub fn shards_from_env() -> usize {
    match std::env::var(SHARDS_ENV) {
        Err(_) => 1,
        Ok(v) => parse_shards(&v).unwrap_or_else(|e| panic!("{SHARDS_ENV}: {e}")),
    }
}

/// How a replication campaign is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed; replication `i` receives
    /// `derive_seed_indexed(master_seed, "campaign_rep", i)`.
    pub master_seed: u64,
    /// Number of independent replications.
    pub replications: u64,
    /// Worker threads; `0` uses the machine's available parallelism.
    pub workers: usize,
}

impl CampaignConfig {
    /// Starts a builder: one replication from master seed `0`, auto-sized
    /// worker pool. The same `builder()` idiom as `EngineConfig` and
    /// `ReportOptions`.
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder {
            cfg: Self {
                master_seed: 0,
                replications: 1,
                workers: 0,
            },
        }
    }

    /// A campaign of `replications` runs from `master_seed`, auto-sizing
    /// the worker pool.
    #[deprecated(note = "construct via `CampaignConfig::builder()`")]
    pub fn new(master_seed: u64, replications: u64) -> Self {
        Self {
            master_seed,
            replications,
            workers: 0,
        }
    }

    /// Overrides the worker count (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The seed replication `rep` runs with.
    pub fn rep_seed(&self, rep: u64) -> u64 {
        derive_seed_indexed(self.master_seed, REP_SEED_LABEL, rep)
    }

    fn effective_workers(&self) -> usize {
        let auto = || {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            // Compose with per-run sharding under one thread budget: with
            // EXCOVERY_SHARDS=s each replication itself fans out to s shard
            // threads during windows, so auto-sized campaigns claim
            // cores/s replication slots instead of oversubscribing s-fold.
            // Explicit worker counts are honored verbatim.
            (cores / shards_from_env().max(1)).max(1)
        };
        let w = if self.workers == 0 {
            auto()
        } else {
            self.workers
        };
        w.max(1).min(self.replications.max(1) as usize)
    }
}

/// Builder for [`CampaignConfig`].
#[derive(Debug, Clone)]
pub struct CampaignConfigBuilder {
    cfg: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Sets the campaign master seed.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.cfg.master_seed = seed;
        self
    }

    /// Sets the number of independent replications.
    pub fn replications(mut self, n: u64) -> Self {
        self.cfg.replications = n;
        self
    }

    /// Sets the worker count (`0` = available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> CampaignConfig {
        self.cfg
    }
}

/// Runs all replications on the calling thread, in replication order.
///
/// `run` receives `(replication_index, derived_seed)`.
pub fn run_replications_serial<T>(cfg: &CampaignConfig, run: impl Fn(u64, u64) -> T) -> Vec<T> {
    (0..cfg.replications)
        .map(|rep| run(rep, cfg.rep_seed(rep)))
        .collect()
}

/// Runs all replications across scoped worker threads, returning results
/// in replication order — byte-identical to
/// [`run_replications_serial`] with the same configuration.
///
/// `run` receives `(replication_index, derived_seed)` and must derive all
/// randomness from the seed (every simulator construction does).
pub fn run_replications<T, F>(cfg: &CampaignConfig, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    run_indexed(cfg.effective_workers(), cfg.replications as usize, |rep| {
        run(rep as u64, cfg.rep_seed(rep as u64))
    })
}

/// Runs `count` independent jobs across at most `workers` scoped threads
/// (`0` = available parallelism), returning `f(0), f(1), …` **in index
/// order** regardless of scheduling. The deterministic-fan-out primitive
/// under both [`run_replications`] and the bench harness's experiment
/// campaigns.
pub fn run_indexed<T, F>(workers: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .min(count.max(1));
    if excovery_obs::enabled() {
        excovery_obs::global()
            .gauge("campaign_workers", &[])
            .set(workers as i64);
    }
    let f = &f;
    let job = move |idx: usize| {
        // Wall-clock job timing: campaign fan-out runs on real threads,
        // so the caller-supplied-clock rule of the simulator does not
        // apply here. Gated so the disabled path stays a plain call.
        let started = excovery_obs::enabled().then(std::time::Instant::now);
        let out = f(idx);
        if let Some(t0) = started {
            let reg = excovery_obs::global();
            reg.counter("campaign_jobs_completed_total", &[]).inc();
            reg.histogram("campaign_job_duration_ns", &[])
                .observe(t0.elapsed().as_nanos() as u64);
        }
        out
    };
    if workers <= 1 || count <= 1 {
        return (0..count).map(job).collect();
    }
    // One slot per job: workers claim indices from the shared counter and
    // park results in their own slot, so merge order is fixed by
    // construction regardless of scheduling.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let out = job(idx);
                *slots[idx].lock().expect("campaign slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("campaign slot poisoned")
                .expect("job result missing")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Destination, Payload};
    use crate::sim::{NodeId, Simulator, SimulatorConfig};
    use crate::topology::Topology;

    fn one_rep(seed: u64) -> (u64, u64, u64) {
        let mut sim = Simulator::new(Topology::chain(4), SimulatorConfig::perfect_clocks(seed));
        for _ in 0..20 {
            sim.send_from(
                NodeId(0),
                7,
                Destination::Unicast(NodeId(3)),
                Payload::from("ping"),
            );
        }
        sim.run_until_idle(10_000);
        let s = sim.stats();
        (s.sent, s.delivered, s.dropped_loss)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let cfg = CampaignConfig::builder()
            .master_seed(42)
            .replications(12)
            .workers(4)
            .build();
        let serial = run_replications_serial(&cfg, |_, seed| one_rep(seed));
        let parallel = run_replications(&cfg, |_, seed| one_rep(seed));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let base = CampaignConfig::builder()
            .master_seed(7)
            .replications(9)
            .build();
        let r1 = run_replications(&base.with_workers(1), |_, s| one_rep(s));
        let r3 = run_replications(&base.with_workers(3), |_, s| one_rep(s));
        let r8 = run_replications(&base.with_workers(8), |_, s| one_rep(s));
        assert_eq!(r1, r3);
        assert_eq!(r1, r8);
    }

    #[test]
    fn rep_seeds_are_distinct_and_stable() {
        let cfg = CampaignConfig::builder()
            .master_seed(1)
            .replications(100)
            .build();
        let seeds: Vec<u64> = (0..100).map(|r| cfg.rep_seed(r)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
        assert_eq!(seeds, (0..100).map(|r| cfg.rep_seed(r)).collect::<Vec<_>>());
    }

    #[test]
    fn results_come_back_in_replication_order() {
        let cfg = CampaignConfig::builder()
            .master_seed(3)
            .replications(32)
            .workers(8)
            .build();
        let reps = run_replications(&cfg, |rep, _| rep);
        assert_eq!(reps, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_campaign_is_empty() {
        let cfg = CampaignConfig::builder()
            .master_seed(0)
            .replications(0)
            .build();
        let out: Vec<u64> = run_replications(&cfg, |rep, _| rep);
        assert!(out.is_empty());
    }

    #[test]
    fn parse_workers_accepts_counts_and_auto() {
        assert_eq!(parse_workers(""), Ok(0));
        assert_eq!(parse_workers("  "), Ok(0));
        assert_eq!(parse_workers("0"), Ok(0));
        assert_eq!(parse_workers("4"), Ok(4));
        assert_eq!(parse_workers(" 16 "), Ok(16));
    }

    #[test]
    fn parse_workers_rejects_garbage_loudly() {
        for bad in ["auto", "-1", "3.5", "4x", "0x10"] {
            let err = parse_workers(bad).unwrap_err();
            assert!(err.contains(&format!("{bad:?}")), "{err}");
            assert!(err.contains("non-negative integer"), "{err}");
        }
    }

    #[test]
    fn parse_shards_accepts_counts_and_serial_default() {
        assert_eq!(parse_shards(""), Ok(1));
        assert_eq!(parse_shards("  "), Ok(1));
        assert_eq!(parse_shards("0"), Ok(1));
        assert_eq!(parse_shards("1"), Ok(1));
        assert_eq!(parse_shards(" 8 "), Ok(8));
    }

    #[test]
    fn parse_shards_rejects_garbage_loudly() {
        for bad in ["auto", "-2", "1.5", "2x"] {
            let err = parse_shards(bad).unwrap_err();
            assert!(err.contains(&format!("{bad:?}")), "{err}");
            assert!(err.contains("non-negative integer"), "{err}");
        }
    }
}
