//! Spatial sharding of the simulator: shard assignment and the
//! conservative parallel window driver.
//!
//! # Shard assignment
//!
//! Nodes are sorted by position `(x, y, id)` and cut into `S` near-equal
//! contiguous stripes — a pure function of `(topology, S)`, so the
//! assignment is identical on every machine and every run. On a grid the
//! stripes are vertical bands; on a chain they are contiguous segments; on
//! a random-geometric graph they approximate vertical slabs. Spatial
//! stripes keep most radio neighbours in the same shard, which minimizes
//! cross-shard traffic without any load measurement.
//!
//! # Conservative lookahead
//!
//! Every event that crosses a shard boundary is a packet transit, and a
//! transit scheduled at time `t` is due no earlier than `t + L`, where
//! `L = base_delay × (1 − jitter_frac)` is the smallest delay the link
//! model can produce (load, serialization and injected delays only add;
//! see [`crate::link::LinkModel::min_transit_delay`]). Therefore if all
//! pending events are at `≥ W`, any event processed in the window
//! `[W, W + L)` can only generate cross-shard arrivals at `≥ W + L` — past
//! the window end. Each shard may thus drain its own queue through the
//! window without observing the others, which is the classical conservative
//! (CMB-style) synchronization argument. Cross-shard events wait in
//! [`crate::mailbox::MailboxGrid`] cells and are drained after the barrier
//! that ends the window, strictly before the next window's start is
//! chosen, so the "all pending events are at `≥ W`" precondition is
//! re-established every round.
//!
//! Bit-exactness with the serial path does *not* come from the windows —
//! it comes from the global event order key `(time, origin_node,
//! origin_seq)` and from per-node randomness streams: every state a
//! handler touches is owned by the node the event occurs at (or keyed by
//! it), and every node's events execute in global-key order no matter how
//! shard queues interleave, so each node observes exactly the serial
//! sequence of callbacks and RNG draws.

use crate::capture::CaptureBuffer;
use crate::event::EventQueue;
use crate::fasthash::{FastHashMap, FastHashSet};
use crate::filter::FilterSet;
use crate::packet::{PacketId, Port};
use crate::sim::{NodeId, ProtocolEvent, SimStats};
use crate::tagger::Tagger;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Number of log₂ buckets in the mailbox depth histogram.
pub(crate) const DEPTH_BUCKETS: usize = 16;

/// Deterministic node → shard assignment (spatial stripes).
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    /// Global node id → owning shard.
    of: Vec<u16>,
    /// Global node id → index into the owning shard's node vector.
    local: Vec<u32>,
}

impl ShardMap {
    /// Builds the assignment for `shards` stripes over `topology`.
    /// `shards` is clamped to `[1, node_count]` (an empty topology gets one
    /// empty shard).
    pub fn new(topology: &Topology, shards: usize) -> Self {
        let n = topology.len();
        let shards = shards.clamp(1, n.max(1));
        let mut order: Vec<u16> = (0..n as u16).collect();
        order.sort_by(|&a, &b| {
            let (ax, ay) = topology.position(NodeId(a));
            let (bx, by) = topology.position(NodeId(b));
            ax.total_cmp(&bx).then(ay.total_cmp(&by)).then(a.cmp(&b))
        });
        let mut of = vec![0u16; n];
        let mut local = vec![0u32; n];
        let base = n / shards;
        let extra = n % shards;
        let mut cursor = 0usize;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            for (i, &node) in order[cursor..cursor + len].iter().enumerate() {
                of[node as usize] = s as u16;
                local[node as usize] = i as u32;
            }
            cursor += len;
        }
        Self { shards, of, local }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of nodes in the mapped topology.
    pub fn node_count(&self) -> usize {
        self.of.len()
    }

    /// The shard owning `node`.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.of[node.0 as usize] as usize
    }

    /// Index of `node` within its owning shard's node vector.
    #[inline]
    pub(crate) fn local_index(&self, node: NodeId) -> usize {
        self.local[node.0 as usize] as usize
    }

    /// Global node ids owned by `shard`, in local-index order.
    pub fn nodes_of(&self, shard: usize) -> Vec<NodeId> {
        let mut nodes: Vec<(u32, NodeId)> = (0..self.of.len())
            .filter(|&i| self.of[i] as usize == shard)
            .map(|i| (self.local[i], NodeId(i as u16)))
            .collect();
        nodes.sort();
        nodes.into_iter().map(|(_, n)| n).collect()
    }
}

/// Per-node simulator state. All state a packet/timer handler mutates is
/// either here or in shard-level maps keyed by this node — the ownership
/// discipline that makes sharded execution bit-exact.
pub(crate) struct SimNode {
    pub id: NodeId,
    pub clock: crate::clock::NodeClock,
    pub filters: FilterSet,
    pub captures: CaptureBuffer,
    pub tagger: Tagger,
    pub drop_all: bool,
    /// Agent/protocol jitter stream.
    pub rng: StdRng,
    /// Per-node sync-measurement error stream. Node-local (rather than a
    /// simulator-wide stream) so the master may fan `measure_sync` calls
    /// out to nodes in any order — or in parallel — without changing the
    /// drawn errors.
    pub sync_rng: StdRng,
    /// Channel stream for loss/jitter/filter draws made *by this node*
    /// (egress checks at the source, per-hop draws at the transmitting
    /// node, ingress checks at the receiver). Node-local so the draw
    /// sequence is a pure function of this node's event order, which is
    /// shard-count invariant.
    pub channel_rng: StdRng,
    /// Next scheduling/emission sequence number; combined with the node id
    /// into the global event order key `(id << 48) | seq`.
    pub next_seq: u64,
    /// Next packet sequence; packet ids are `(id << 32) | seq`, which stays
    /// below 2⁵³ (JSON-number safe) for any feasible run.
    pub next_packet_seq: u32,
    /// Next timer instance id (uniqueness scope: this node).
    pub next_tid: u64,
    pub agents: FastHashMap<Port, Box<dyn crate::sim::Agent>>,
}

impl SimNode {
    /// Allocates the next global ordering key for an event this node
    /// originates.
    #[inline]
    pub fn next_key(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        debug_assert!(seq < 1 << 48, "per-node event sequence overflow");
        ((self.id.0 as u64) << 48) | seq
    }
}

/// One spatial partition: its nodes, event queue and all formerly-global
/// mutable simulator state, decomposed so windows never race.
pub(crate) struct Shard {
    pub id: usize,
    /// Owned nodes in local-index order (see [`ShardMap::local_index`]).
    pub nodes: Vec<SimNode>,
    pub queue: EventQueue<crate::sim::Ev>,
    pub time: SimTime,
    pub stats: SimStats,
    pub events_executed: u64,
    /// Flood duplicate suppression, keyed `(packet, destination node)` —
    /// only ever touched by events at nodes this shard owns.
    pub flood_seen: FastHashSet<(PacketId, u16)>,
    /// Live timer instances per `(node, port, token)`.
    pub active_timers: FastHashMap<(u16, Port, u64), FastHashSet<u64>>,
    /// Emitted protocol events with their `(reference time, global key)`;
    /// merged across shards in key order when drained.
    pub protocol_events: Vec<(SimTime, u64, ProtocolEvent)>,
    /// Events this shard pushed into cross-shard mailboxes.
    pub crossings_out: u64,
    /// Parallel windows this shard participated in.
    pub windows: u64,
    /// Wall-clock nanoseconds spent waiting at window barriers (only
    /// accumulated while observability is enabled; never read by the
    /// simulation itself).
    pub barrier_wait_ns: u64,
    /// log₂ histogram of mailbox depths observed at drain time.
    pub mailbox_depth_hist: [u64; DEPTH_BUCKETS],
    // Published-so-far baselines so `publish_obs` emits monotone deltas.
    pub obs_events_published: u64,
    pub obs_crossings_published: u64,
    pub obs_windows_published: u64,
    pub obs_barrier_ns_published: u64,
    pub obs_depth_published: [u64; DEPTH_BUCKETS],
}

impl Shard {
    pub fn new(id: usize) -> Self {
        Self {
            id,
            nodes: Vec::new(),
            // Steady state holds at most a few events per node in flight.
            queue: EventQueue::with_capacity(256),
            time: SimTime::ZERO,
            stats: SimStats::default(),
            events_executed: 0,
            flood_seen: FastHashSet::default(),
            active_timers: FastHashMap::default(),
            protocol_events: Vec::new(),
            crossings_out: 0,
            windows: 0,
            barrier_wait_ns: 0,
            mailbox_depth_hist: [0; DEPTH_BUCKETS],
            obs_events_published: 0,
            obs_crossings_published: 0,
            obs_windows_published: 0,
            obs_barrier_ns_published: 0,
            obs_depth_published: [0; DEPTH_BUCKETS],
        }
    }

    /// Records a mailbox drain depth into the log₂ histogram.
    #[inline]
    pub fn note_mailbox_depth(&mut self, depth: usize) {
        let bucket = (usize::BITS - depth.leading_zeros()) as usize;
        self.mailbox_depth_hist[bucket.min(DEPTH_BUCKETS - 1)] += 1;
    }
}

/// Shared control block of one parallel window run.
struct WindowCtrl {
    barrier: Barrier,
    /// Per-shard minimum pending event time (nanos; `u64::MAX` = idle).
    mins: Vec<AtomicU64>,
    /// Current window end in nanos (leader-written between barriers).
    end: AtomicU64,
    /// 0 = exclusive window, 1 = inclusive (final window up to a deadline),
    /// 2 = done.
    mode: AtomicU64,
    /// Total events processed across all shards (storm-guard budget).
    total: AtomicU64,
}

const MODE_EXCLUSIVE: u64 = 0;
const MODE_INCLUSIVE: u64 = 1;
const MODE_DONE: u64 = 2;

/// Runs shards in parallel windows of `lookahead` until `deadline` (if
/// `Some`) or until globally idle, whichever comes first, with `budget`
/// as an approximate global event cap (checked at window granularity).
/// Returns the total number of events executed.
///
/// `drain` must move every mailbox event destined for the given shard into
/// its queue; `process` must drain the shard's queue up to the window end
/// (exclusive, or inclusive when the flag is set) and return the event
/// count. Neither closure is allowed to touch any other shard.
pub(crate) fn run_windows<D, P>(
    shards: &mut [Shard],
    lookahead: SimDuration,
    deadline: Option<SimTime>,
    budget: u64,
    obs: bool,
    drain: D,
    process: P,
) -> u64
where
    D: Fn(&mut Shard) + Sync,
    P: Fn(&mut Shard, SimTime, bool) -> u64 + Sync,
{
    debug_assert!(lookahead > SimDuration::ZERO, "parallel run needs lookahead");
    let n = shards.len();
    let ctrl = WindowCtrl {
        barrier: Barrier::new(n),
        mins: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
        end: AtomicU64::new(0),
        mode: AtomicU64::new(MODE_EXCLUSIVE),
        total: AtomicU64::new(0),
    };
    let ctrl = &ctrl;
    let drain = &drain;
    let process = &process;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for shard in shards.iter_mut() {
            handles.push(scope.spawn(move || {
                let wait = |shard: &mut Shard| {
                    if obs {
                        let t0 = std::time::Instant::now();
                        ctrl.barrier.wait();
                        shard.barrier_wait_ns += t0.elapsed().as_nanos() as u64;
                    } else {
                        ctrl.barrier.wait();
                    }
                };
                loop {
                    // Phase 1: all sends of the previous window are complete
                    // (we are past its trailing barrier), so drain inbound
                    // mail and publish this shard's minimum pending time.
                    drain(shard);
                    let min = shard.queue.peek_time().map_or(u64::MAX, |t| t.as_nanos());
                    ctrl.mins[shard.id].store(min, Ordering::Relaxed);
                    wait(shard);
                    // Phase 2: the leader picks the next window.
                    if shard.id == 0 {
                        let m = ctrl
                            .mins
                            .iter()
                            .map(|a| a.load(Ordering::Relaxed))
                            .min()
                            .unwrap_or(u64::MAX);
                        let over_budget = ctrl.total.load(Ordering::Relaxed) >= budget;
                        let past_deadline =
                            deadline.is_some_and(|d| m != u64::MAX && m > d.as_nanos());
                        if m == u64::MAX || over_budget || past_deadline {
                            ctrl.mode.store(MODE_DONE, Ordering::Relaxed);
                        } else {
                            let open_end = m.saturating_add(lookahead.as_nanos());
                            match deadline {
                                Some(d) if open_end > d.as_nanos() => {
                                    ctrl.end.store(d.as_nanos(), Ordering::Relaxed);
                                    ctrl.mode.store(MODE_INCLUSIVE, Ordering::Relaxed);
                                }
                                _ => {
                                    ctrl.end.store(open_end, Ordering::Relaxed);
                                    ctrl.mode.store(MODE_EXCLUSIVE, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    wait(shard);
                    // Phase 3: everyone reads the decision and processes.
                    let mode = ctrl.mode.load(Ordering::Relaxed);
                    if mode == MODE_DONE {
                        break;
                    }
                    let end = SimTime::from_nanos(ctrl.end.load(Ordering::Relaxed));
                    let n = process(shard, end, mode == MODE_INCLUSIVE);
                    if n > 0 {
                        ctrl.total.fetch_add(n, Ordering::Relaxed);
                    }
                    shard.windows += 1;
                    // Trailing barrier: no shard may drain mail (phase 1 of
                    // the next round) while another is still pushing.
                    wait(shard);
                }
            }));
        }
        for h in handles {
            h.join().expect("shard worker panicked");
        }
    });
    ctrl.total.load(Ordering::Relaxed)
}
