//! The packet tagger.
//!
//! The prototype (§VI-A) runs a background tagger on every node that writes
//! an incrementing 16-bit identifier into an IP header option of each
//! selected packet, enabling hop-by-hop packet tracking and loss/delay
//! analysis outside the scope of the ExCovery processes. This module
//! reproduces the tagger including its wrap-around behaviour, and provides
//! the matching *sequence reconstruction* used during analysis to count
//! losses between two observation points despite the 16-bit wrap.

/// Per-node tagger state: a 16-bit counter that wraps.
#[derive(Debug, Clone, Default)]
pub struct Tagger {
    next: u16,
}

impl Tagger {
    /// Creates a tagger starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tagger starting at an arbitrary value (e.g. resumed state).
    pub fn starting_at(v: u16) -> Self {
        Self { next: v }
    }

    /// Stamps the next packet: returns the identifier and increments
    /// (wrapping at 2^16, as a real 16-bit header option would).
    pub fn stamp(&mut self) -> u16 {
        let v = self.next;
        self.next = self.next.wrapping_add(1);
        v
    }

    /// The identifier the next call to [`Self::stamp`] will return.
    pub fn peek(&self) -> u16 {
        self.next
    }
}

/// Reconstructs how many tags were skipped between two *consecutive
/// observations* of the same tagger stream, accounting for wrap-around.
///
/// Returns `None` if `current` appears to be a reordered (older) tag —
/// distinguishable from a long gap only up to half the counter space, the
/// standard serial-number-arithmetic convention (RFC 1982).
pub fn gap_between(previous: u16, current: u16) -> Option<u16> {
    let forward = current.wrapping_sub(previous);
    if forward == 0 {
        return Some(0); // duplicate observation
    }
    if forward <= u16::MAX / 2 {
        Some(forward - 1) // packets lost strictly between the two
    } else {
        None // reordering: current is "before" previous
    }
}

/// Summarizes a tagged stream observed at a measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Observed (delivered) packets.
    pub received: u64,
    /// Inferred losses from tag gaps.
    pub lost: u64,
    /// Observations that arrived out of order.
    pub reordered: u64,
    /// Exact duplicates.
    pub duplicates: u64,
}

impl StreamStats {
    /// Loss ratio `lost / (lost + received)`; 0 for an empty stream.
    pub fn loss_ratio(&self) -> f64 {
        let total = self.lost + self.received;
        if total == 0 {
            0.0
        } else {
            self.lost as f64 / total as f64
        }
    }
}

/// Folds a sequence of observed tags into [`StreamStats`].
pub fn analyze_stream(tags: impl IntoIterator<Item = u16>) -> StreamStats {
    let mut stats = StreamStats::default();
    let mut prev: Option<u16> = None;
    for tag in tags {
        match prev {
            None => stats.received += 1,
            Some(p) => match gap_between(p, tag) {
                Some(0) if tag == p => {
                    stats.duplicates += 1;
                    continue; // do not advance prev
                }
                Some(gap) => {
                    stats.received += 1;
                    stats.lost += u64::from(gap);
                }
                None => {
                    stats.reordered += 1;
                    continue; // keep newest tag as reference
                }
            },
        }
        prev = Some(tag);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_increments_and_wraps() {
        let mut t = Tagger::starting_at(u16::MAX - 1);
        assert_eq!(t.stamp(), u16::MAX - 1);
        assert_eq!(t.stamp(), u16::MAX);
        assert_eq!(t.stamp(), 0);
        assert_eq!(t.peek(), 1);
    }

    #[test]
    fn gap_simple() {
        assert_eq!(gap_between(5, 6), Some(0));
        assert_eq!(gap_between(5, 9), Some(3));
        assert_eq!(gap_between(5, 5), Some(0));
    }

    #[test]
    fn gap_across_wrap() {
        assert_eq!(gap_between(u16::MAX, 0), Some(0));
        assert_eq!(gap_between(u16::MAX - 1, 2), Some(3));
    }

    #[test]
    fn reordering_detected() {
        assert_eq!(gap_between(10, 9), None);
        assert_eq!(gap_between(0, u16::MAX), None);
    }

    #[test]
    fn analyze_clean_stream() {
        let s = analyze_stream(0..100u16);
        assert_eq!(s.received, 100);
        assert_eq!(s.lost, 0);
        assert_eq!(s.loss_ratio(), 0.0);
    }

    #[test]
    fn analyze_stream_with_losses() {
        let s = analyze_stream([0u16, 1, 4, 5, 9]);
        assert_eq!(s.received, 5);
        assert_eq!(s.lost, 2 + 3);
        assert!((s.loss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn analyze_stream_with_duplicates_and_reordering() {
        let s = analyze_stream([0u16, 1, 1, 3, 2, 4]);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.reordered, 1);
        assert_eq!(s.received, 4); // 0,1,3,4
        assert_eq!(s.lost, 1); // tag 2 counted lost at the 1->3 step
    }

    #[test]
    fn analyze_stream_across_wrap() {
        let tags = (u16::MAX - 2..=u16::MAX).chain(0..3u16);
        let s = analyze_stream(tags);
        assert_eq!(s.received, 6);
        assert_eq!(s.lost, 0);
    }

    #[test]
    fn empty_stream() {
        let s = analyze_stream(std::iter::empty());
        assert_eq!(s, StreamStats::default());
        assert_eq!(s.loss_ratio(), 0.0);
    }
}
