//! Seeded, stream-splittable randomness.
//!
//! The paper (§IV-C1) requires that *"all random sequences can be
//! reproduced"* from seeds named in the experiment description. To keep
//! independent subsystems (link loss, traffic pair choice, fault activation
//! windows, clock assignment) statistically independent yet individually
//! reproducible, each obtains its own PRNG derived from the master seed and
//! a stream label via [`derive_rng`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a deterministic sub-seed from a master seed and a stream label.
///
/// Uses the FNV-1a construction followed by two rounds of SplitMix64
/// finalization, which is cheap, stable across platforms, and mixes label
/// bits thoroughly so `"link"` and `"lin k"` produce unrelated streams.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ master;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    splitmix(splitmix(h))
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Creates a [`StdRng`] for the given master seed and stream label.
pub fn derive_rng(master: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label))
}

/// Derives a seed that additionally depends on an index (e.g. a run number),
/// used for per-run replication streams such as traffic pair switching.
pub fn derive_seed_indexed(master: u64, label: &str, index: u64) -> u64 {
    splitmix(derive_seed(master, label) ^ splitmix(index))
}

/// Creates a [`StdRng`] bound to a master seed, stream label and index.
pub fn derive_rng_indexed(master: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_indexed(master, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, "link");
        let mut b = derive_rng(42, "link");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(derive_seed(42, "link"), derive_seed(42, "clock"));
        assert_ne!(derive_seed(42, "link"), derive_seed(43, "link"));
    }

    #[test]
    fn similar_labels_are_uncorrelated() {
        // Single-character changes must flip roughly half the bits.
        let a = derive_seed(1, "stream_a");
        let b = derive_seed(1, "stream_b");
        let differing = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "only {differing} bits differ"
        );
    }

    #[test]
    fn indexed_streams_are_distinct_per_index() {
        let s0 = derive_seed_indexed(7, "traffic", 0);
        let s1 = derive_seed_indexed(7, "traffic", 1);
        assert_ne!(s0, s1);
        // ... but reproducible.
        assert_eq!(s1, derive_seed_indexed(7, "traffic", 1));
    }

    #[test]
    fn zero_master_seed_is_usable() {
        let mut r = derive_rng(0, "x");
        let v: u64 = r.gen();
        // SplitMix finalization must not map the zero state to zero output.
        assert_ne!(derive_seed(0, ""), 0);
        let _ = v;
    }
}
