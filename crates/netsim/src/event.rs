//! The discrete-event queue.
//!
//! Ordered by `(time, key)`; the key makes simultaneous events fire in a
//! deterministic order, which keeps runs bit-exact across executions — the
//! reproducibility property ExCovery requires of a platform (§IV-C1).
//!
//! Two keying disciplines are supported:
//!
//! * [`EventQueue::schedule`] assigns an internal insertion sequence, so
//!   simultaneous events fire in insertion order (the classic serial FEL).
//! * [`EventQueue::schedule_with_key`] lets the caller supply the key. The
//!   sharded simulator uses `(origin_node << 48) | origin_seq` keys, which
//!   define one *global* total order over events regardless of which
//!   shard's queue an event sits in — the property that makes an N-shard
//!   run bit-exact with the serial path (see `crate::shard`).
//!
//! Payloads live in a slab and the binary heap holds only 24-byte
//! `(time, key, slot)` keys, so every sift during push/pop moves a
//! small fixed-size entry instead of a full simulator event (a packet,
//! its shared route and hop bookkeeping — roughly a cache line). On the
//! packet hot path this is the difference between the heap being
//! memory-bound and arithmetic-bound.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue<T> {
    /// Min-heap of `(due, key, slot)`; `key` is unique per queue, so
    /// `slot` never participates in an ordering decision.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload storage indexed by slot; `None` marks a free slot.
    slots: Vec<Option<T>>,
    /// Recycled slot indices.
    free: Vec<u32>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events, sized so the
    /// steady-state event population of a run never regrows the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            seq: 0,
        }
    }

    fn store(&mut self, payload: T) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(
                    self.slots[slot as usize].is_none(),
                    "free list pointed at an occupied slot"
                );
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Some(payload));
                slot
            }
        }
    }

    /// Schedules `payload` at absolute time `due` with an internal
    /// insertion-order key.
    #[inline]
    pub fn schedule(&mut self, due: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        let slot = self.store(payload);
        self.heap.push(Reverse((due, seq, slot)));
        self.debug_check_invariants();
    }

    /// Schedules `payload` at absolute time `due` under a caller-supplied
    /// ordering key. Keys must be unique among pending events with equal
    /// `due` for the pop order to be well defined.
    #[inline]
    pub fn schedule_with_key(&mut self, due: SimTime, key: u64, payload: T) {
        let slot = self.store(payload);
        self.heap.push(Reverse((due, key, slot)));
        self.debug_check_invariants();
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let Reverse((due, _, slot)) = self.heap.pop()?;
        debug_assert!((slot as usize) < self.slots.len(), "slot out of bounds");
        let payload = self.slots[slot as usize]
            .take()
            .expect("heap entry without payload");
        self.free.push(slot);
        self.debug_check_invariants();
        Some((due, payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((due, _, _))| due)
    }

    /// `(time, key)` of the earliest pending event — the merge cursor the
    /// sharded simulator compares across shard queues.
    pub fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|&Reverse((due, key, _))| (due, key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (run clean-up).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }

    /// Releases excess capacity accumulated by event storms. Called from
    /// `Simulator::reset_for_run` so a single pathological run does not pin
    /// its peak allocation for the rest of a campaign.
    pub fn shrink_to_fit(&mut self) {
        self.heap.shrink_to_fit();
        self.slots.shrink_to_fit();
        self.free.shrink_to_fit();
    }

    /// Slot-reuse invariant: every slot is either on the heap or on the
    /// free list, never both, never neither.
    #[inline]
    fn debug_check_invariants(&self) {
        debug_assert_eq!(
            self.heap.len() + self.free.len(),
            self.slots.len(),
            "slot leak: heap {} + free {} != slots {}",
            self.heap.len(),
            self.free.len(),
            self.slots.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn caller_keys_override_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule_with_key(t, 9, "last");
        q.schedule_with_key(t, 1, "first");
        q.schedule_with_key(t, 4, "middle");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["first", "middle", "last"]);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.peek(), None);
        q.schedule_with_key(SimTime::from_nanos(42), 7, ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.peek(), Some((SimTime::from_nanos(42), 7)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        q.shrink_to_fit();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "late");
        q.schedule(SimTime::from_nanos(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_nanos(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            q.schedule(SimTime::from_nanos(round), round);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(round), round)));
        }
        // Steady-state churn reuses the single slot instead of growing.
        assert!(q.slots.len() <= 2, "slab grew to {}", q.slots.len());
    }

    /// Reference model: a `BTreeMap` keyed `(time, key)` pops in exactly
    /// the order the queue promises.
    fn check_against_model(pairs: &[(u64, u64)], pop_every: usize) {
        let mut q = EventQueue::new();
        let mut model: BTreeMap<(SimTime, u64), usize> = BTreeMap::new();
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for (i, &(t, k)) in pairs.iter().enumerate() {
            let due = SimTime::from_nanos(t);
            q.schedule_with_key(due, k, i);
            model.insert((due, k), i);
            if pop_every > 0 && i % pop_every == 0 {
                if let Some((due, payload)) = q.pop() {
                    let (&mk, &mv) = model.iter().next().expect("model empty but queue popped");
                    model.remove(&mk);
                    assert_eq!((due, payload), (mk.0, mv));
                    popped.push(payload);
                    expected.push(mv);
                }
            }
        }
        while let Some((due, payload)) = q.pop() {
            let (&mk, &mv) = model.iter().next().expect("model empty but queue popped");
            model.remove(&mk);
            assert_eq!((due, payload), (mk.0, mv));
        }
        assert!(model.is_empty(), "queue drained before the model");
        assert_eq!(popped, expected);
    }

    #[test]
    fn ten_thousand_random_pairs_match_btreemap_model() {
        // Deterministic LCG: 10k (time, key) pairs with heavy time
        // collisions (time % 64) to stress the key tiebreak, unique keys.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut pairs = Vec::with_capacity(10_000);
        for i in 0..10_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            pairs.push((state % 64, (state >> 16 << 16) | i));
        }
        check_against_model(&pairs, 3);
    }
}
