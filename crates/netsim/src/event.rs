//! The discrete-event queue.
//!
//! A binary heap ordered by `(time, sequence)`; the sequence number makes
//! simultaneous events fire in insertion order, which keeps runs bit-exact
//! across executions — the reproducibility property ExCovery requires of a
//! platform (§IV-C1).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in the queue: an opaque payload due at a given instant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<T> {
    due: SimTime,
    seq: u64,
    payload: T,
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue<T: Eq> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T: Eq> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `due`.
    pub fn schedule(&mut self, due: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { due, seq, payload }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.due, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (run clean-up).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "late");
        q.schedule(SimTime::from_nanos(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_nanos(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
