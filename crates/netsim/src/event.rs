//! The discrete-event queue.
//!
//! Ordered by `(time, sequence)`; the sequence number makes simultaneous
//! events fire in insertion order, which keeps runs bit-exact across
//! executions — the reproducibility property ExCovery requires of a
//! platform (§IV-C1).
//!
//! Payloads live in a slab and the binary heap holds only 24-byte
//! `(time, sequence, slot)` keys, so every sift during push/pop moves a
//! small fixed-size entry instead of a full simulator event (a packet,
//! its shared route and hop bookkeeping — roughly a cache line). On the
//! packet hot path this is the difference between the heap being
//! memory-bound and arithmetic-bound.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue<T> {
    /// Min-heap of `(due, seq, slot)`; `seq` is unique, so `slot` never
    /// participates in an ordering decision.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload storage indexed by slot; `None` marks a free slot.
    slots: Vec<Option<T>>,
    /// Recycled slot indices.
    free: Vec<u32>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events, sized so the
    /// steady-state event population of a run never regrows the heap.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute time `due`.
    #[inline]
    pub fn schedule(&mut self, due: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event queue slot overflow");
                self.slots.push(Some(payload));
                slot
            }
        };
        self.heap.push(Reverse((due, seq, slot)));
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let Reverse((due, _, slot)) = self.heap.pop()?;
        let payload = self.slots[slot as usize]
            .take()
            .expect("heap entry without payload");
        self.free.push(slot);
        Some((due, payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((due, _, _))| due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (run clean-up).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.clear();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "late");
        q.schedule(SimTime::from_nanos(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.schedule(SimTime::from_nanos(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            q.schedule(SimTime::from_nanos(round), round);
            assert_eq!(q.pop(), Some((SimTime::from_nanos(round), round)));
        }
        // Steady-state churn reuses the single slot instead of growing.
        assert!(q.slots.len() <= 2, "slab grew to {}", q.slots.len());
    }
}
