//! Low-allocation protocol-event names and parameters.
//!
//! Protocol events are the hottest observation channel in the simulator:
//! every agent emits several per packet. Names are almost always string
//! literals ("sd_service_add", "query_sent"), and parameter lists are short
//! (one to three pairs). Representing them as `String` +
//! `Vec<(String, String)>` forced four-plus heap allocations per emit.
//!
//! [`EventStr`] wraps `Cow<'static, str>` so literals are interned at
//! compile time (zero allocation) while dynamic names — fault flags built
//! with `format!` — still work. [`EventParams`] stores up to
//! [`INLINE_PARAMS`] pairs inline and only spills longer lists to the heap,
//! SmallVec-style, without pulling in an external dependency.

use std::borrow::Cow;
use std::fmt;

/// An event name or parameter string; `&'static str` in the common case.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct EventStr(Cow<'static, str>);

/// Protocol-event names are the same representation as parameter strings.
pub type EventName = EventStr;

impl EventStr {
    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Converts into an owned `String` (clones only if borrowed).
    pub fn into_string(self) -> String {
        self.0.into_owned()
    }
}

impl fmt::Display for EventStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::ops::Deref for EventStr {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for EventStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&'static str> for EventStr {
    fn from(s: &'static str) -> Self {
        EventStr(Cow::Borrowed(s))
    }
}

impl From<String> for EventStr {
    fn from(s: String) -> Self {
        EventStr(Cow::Owned(s))
    }
}

impl From<Cow<'static, str>> for EventStr {
    fn from(c: Cow<'static, str>) -> Self {
        EventStr(c)
    }
}

impl From<EventStr> for String {
    fn from(s: EventStr) -> Self {
        s.into_string()
    }
}

impl PartialEq<str> for EventStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for EventStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for EventStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<EventStr> for str {
    fn eq(&self, other: &EventStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<EventStr> for &str {
    fn eq(&self, other: &EventStr) -> bool {
        *self == other.as_str()
    }
}

/// One key/value parameter.
pub type Param = (EventStr, EventStr);

/// Pairs stored inline before spilling to the heap.
pub const INLINE_PARAMS: usize = 3;

/// A short list of key/value parameters attached to a protocol event.
///
/// Up to [`INLINE_PARAMS`] pairs live inline in the struct; longer lists
/// (rare) spill the remainder into a `Vec`. Iteration order is insertion
/// order in both regimes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventParams {
    inline: [Option<Param>; INLINE_PARAMS],
    spill: Vec<Param>,
}

impl EventParams {
    /// An empty parameter list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.inline.iter().filter(|p| p.is_some()).count() + self.spill.len()
    }

    /// True if there are no parameters.
    pub fn is_empty(&self) -> bool {
        self.inline[0].is_none() && self.spill.is_empty()
    }

    /// Appends a pair, spilling to the heap past [`INLINE_PARAMS`].
    pub fn push(&mut self, key: impl Into<EventStr>, value: impl Into<EventStr>) {
        let pair = (key.into(), value.into());
        if self.spill.is_empty() {
            for slot in &mut self.inline {
                if slot.is_none() {
                    *slot = Some(pair);
                    return;
                }
            }
        }
        self.spill.push(pair);
    }

    /// Iterates pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.inline
            .iter()
            .filter_map(|p| p.as_ref())
            .chain(self.spill.iter())
    }

    /// Looks up a value by key (first match).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.iter()
            .find(|(k, _)| k.as_str() == key)
            .map(|(_, v)| v.as_str())
    }

    /// Converts into owned `(String, String)` pairs (the storage format of
    /// the experiment event log — a cold path).
    pub fn into_string_pairs(self) -> Vec<(String, String)> {
        let EventParams { inline, spill } = self;
        inline
            .into_iter()
            .flatten()
            .chain(spill)
            .map(|(k, v)| (k.into_string(), v.into_string()))
            .collect()
    }
}

impl<K: Into<EventStr>, V: Into<EventStr>, const N: usize> From<[(K, V); N]> for EventParams {
    fn from(pairs: [(K, V); N]) -> Self {
        let mut out = EventParams::new();
        for (k, v) in pairs {
            out.push(k, v);
        }
        out
    }
}

impl<K: Into<EventStr>, V: Into<EventStr>> From<Vec<(K, V)>> for EventParams {
    fn from(pairs: Vec<(K, V)>) -> Self {
        let mut out = EventParams::new();
        for (k, v) in pairs {
            out.push(k, v);
        }
        out
    }
}

impl<'a> IntoIterator for &'a EventParams {
    type Item = &'a Param;
    type IntoIter = Box<dyn Iterator<Item = &'a Param> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_names_do_not_allocate() {
        let name: EventStr = "sd_service_add".into();
        assert!(matches!(name.0, Cow::Borrowed(_)));
        assert_eq!(name, "sd_service_add");
        assert_eq!("sd_service_add", name);
    }

    #[test]
    fn dynamic_names_still_work() {
        let name: EventStr = format!("fault_{}_started", "node_crash").into();
        assert_eq!(name.as_str(), "fault_node_crash_started");
        let s: String = name.into();
        assert_eq!(s, "fault_node_crash_started");
    }

    #[test]
    fn params_stay_inline_up_to_capacity() {
        let p = EventParams::from([("a", "1"), ("b", "2"), ("c", "3")]);
        assert_eq!(p.len(), 3);
        assert!(p.spill.is_empty());
        assert_eq!(p.get("b"), Some("2"));
        assert_eq!(p.get("z"), None);
    }

    #[test]
    fn params_spill_preserving_order() {
        let mut p = EventParams::new();
        for i in 0..6 {
            p.push(format!("k{i}"), format!("v{i}"));
        }
        assert_eq!(p.len(), 6);
        assert_eq!(p.spill.len(), 3);
        let keys: Vec<&str> = p.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["k0", "k1", "k2", "k3", "k4", "k5"]);
        assert_eq!(
            p.into_string_pairs(),
            (0..6)
                .map(|i| (format!("k{i}"), format!("v{i}")))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_params() {
        let p = EventParams::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.iter().count(), 0);
        assert!(p.into_string_pairs().is_empty());
    }

    #[test]
    fn from_vec_matches_from_array() {
        let a = EventParams::from([("x", "1"), ("y", "2")]);
        let b = EventParams::from(vec![("x", "1"), ("y", "2")]);
        assert_eq!(a, b);
    }
}
