//! Per-node clocks with offset and drift.
//!
//! ExCovery measures, before each run, the difference of each participant's
//! clock to a reference clock so a valid global time line can be constructed
//! later (§IV-B3). The simulated clocks therefore deviate realistically: a
//! constant offset plus a linear drift (parts-per-million), and the
//! synchronization *measurement* itself carries a bounded error, so the
//! conditioning pipeline downstream has real work to do.

use crate::time::SimTime;

/// A node-local clock derived from the simulation reference clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClock {
    /// Constant offset added to the reference clock, in nanoseconds
    /// (may be negative: the node clock can run behind).
    pub offset_ns: i64,
    /// Linear drift in parts per million of elapsed reference time.
    pub drift_ppm: f64,
}

impl NodeClock {
    /// A perfectly synchronized clock.
    pub const PERFECT: NodeClock = NodeClock {
        offset_ns: 0,
        drift_ppm: 0.0,
    };

    /// Creates a clock with the given offset and drift.
    pub fn new(offset_ns: i64, drift_ppm: f64) -> Self {
        Self {
            offset_ns,
            drift_ppm,
        }
    }

    /// Converts a reference instant to this node's local reading.
    ///
    /// `local = ref + offset + drift_ppm * ref / 1e6`, clamped at zero.
    #[inline]
    pub fn local_time(&self, reference: SimTime) -> SimTime {
        // Perfect clocks (the common bench/test configuration) read the
        // reference directly; the deviation math below reduces to it.
        if self.offset_ns == 0 && self.drift_ppm == 0.0 {
            return reference;
        }
        let t = reference.as_nanos() as i128;
        let drift = (t as f64 * self.drift_ppm / 1e6) as i128;
        let local = t + i128::from(self.offset_ns) + drift;
        SimTime::from_nanos(local.max(0) as u64)
    }

    /// Converts a local reading back to the reference clock.
    ///
    /// Inverts [`Self::local_time`] analytically; exact up to integer
    /// rounding (±1 ns), which the tests assert.
    pub fn reference_time(&self, local: SimTime) -> SimTime {
        let l = local.as_nanos() as i128 - i128::from(self.offset_ns);
        let reference = l as f64 / (1.0 + self.drift_ppm / 1e6);
        SimTime::from_nanos(reference.round().max(0.0) as u64)
    }

    /// The instantaneous offset (local − reference) at a given reference time.
    pub fn instantaneous_offset_ns(&self, reference: SimTime) -> i64 {
        self.local_time(reference).signed_delta_nanos(reference)
    }
}

/// One synchronization measurement of a node clock against the reference.
///
/// Mirrors the `TimeDiff` attribute of the `RunInfos` table (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncMeasurement {
    /// Reference instant when the measurement was taken.
    pub measured_at: SimTime,
    /// Estimated offset (local − reference) in nanoseconds, including
    /// measurement error.
    pub estimated_offset_ns: i64,
    /// Half-width of the measurement uncertainty interval in nanoseconds
    /// (the paper requires platforms to quantify the synchronization error).
    pub uncertainty_ns: u64,
}

impl SyncMeasurement {
    /// Performs a measurement of `clock` at `now` with the given error term.
    ///
    /// `error_ns` is sampled by the caller from a seeded stream so runs are
    /// reproducible; its absolute value bounds the reported uncertainty.
    pub fn measure(clock: &NodeClock, now: SimTime, error_ns: i64) -> Self {
        let true_offset = clock.instantaneous_offset_ns(now);
        Self {
            measured_at: now,
            estimated_offset_ns: true_offset + error_ns,
            uncertainty_ns: error_ns.unsigned_abs().max(1),
        }
    }

    /// Maps a local timestamp onto the common (reference) time base using
    /// this measurement, as done in the conditioning phase (§IV-F).
    pub fn to_common_time(&self, local: SimTime) -> SimTime {
        let common = local.as_nanos() as i128 - i128::from(self.estimated_offset_ns);
        SimTime::from_nanos(common.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        let t = SimTime::from_nanos(123_456_789);
        assert_eq!(NodeClock::PERFECT.local_time(t), t);
        assert_eq!(NodeClock::PERFECT.reference_time(t), t);
    }

    #[test]
    fn positive_offset_moves_clock_forward() {
        let c = NodeClock::new(5_000, 0.0);
        let t = SimTime::from_nanos(1_000_000);
        assert_eq!(c.local_time(t).as_nanos(), 1_005_000);
        assert_eq!(c.instantaneous_offset_ns(t), 5_000);
    }

    #[test]
    fn negative_offset_clamps_at_zero_near_epoch() {
        let c = NodeClock::new(-10_000, 0.0);
        assert_eq!(c.local_time(SimTime::from_nanos(4_000)), SimTime::ZERO);
    }

    #[test]
    fn drift_accumulates_linearly() {
        let c = NodeClock::new(0, 100.0); // 100 ppm fast
        let t = SimTime::from_nanos(10 * 1_000_000_000);
        // 10 s * 100 ppm = 1 ms ahead.
        assert_eq!(c.instantaneous_offset_ns(t), 1_000_000);
    }

    #[test]
    fn reference_time_inverts_local_time() {
        let clocks = [
            NodeClock::new(3_271, 42.5),
            NodeClock::new(-9_999, -17.0),
            NodeClock::new(1_000_000, 250.0),
        ];
        for c in clocks {
            for ns in [0u64, 1_000, 5_000_000_000, 3_600_000_000_000] {
                let reference = SimTime::from_nanos(ns);
                // Skip instants where the local clock clamps at the epoch;
                // the clamp deliberately loses information.
                if (ns as i128) + i128::from(c.offset_ns) < 0 {
                    continue;
                }
                let local = c.local_time(reference);
                let back = c.reference_time(local);
                let err = back.signed_delta_nanos(reference).abs();
                assert!(err <= 1, "clock {c:?} at {ns}: inversion error {err} ns");
            }
        }
    }

    #[test]
    fn sync_measurement_recovers_offset_within_error() {
        let c = NodeClock::new(250_000, 10.0);
        let now = SimTime::from_nanos(2_000_000_000);
        let m = SyncMeasurement::measure(&c, now, 300);
        let true_offset = c.instantaneous_offset_ns(now);
        assert_eq!(m.estimated_offset_ns, true_offset + 300);
        assert_eq!(m.uncertainty_ns, 300);
    }

    #[test]
    fn to_common_time_unifies_bases() {
        let c = NodeClock::new(1_000_000, 0.0);
        let now = SimTime::from_nanos(500_000_000);
        let m = SyncMeasurement::measure(&c, now, 0);
        let local_stamp = c.local_time(SimTime::from_nanos(600_000_000));
        let common = m.to_common_time(local_stamp);
        assert_eq!(common.as_nanos(), 600_000_000);
    }

    #[test]
    fn uncertainty_is_at_least_one_ns() {
        let m = SyncMeasurement::measure(&NodeClock::PERFECT, SimTime::ZERO, 0);
        assert_eq!(m.uncertainty_ns, 1);
    }
}
