//! Mesh topology: node placement, unit-disk adjacency, shortest paths.
//!
//! The DES testbed is a multi-floor wireless mesh; we model placements as
//! points in a plane with a unit-disk radio range. Generators cover the
//! shapes used in the experiments: chains (hop-distance sweeps), grids
//! (the dense office mesh) and random geometric graphs (irregular
//! deployments). Hop counts between participants are the paper's
//! "rudimentary topology measurement" (§IV-B4); full adjacency snapshots
//! implement the anticipated "more advanced topology recording".

use crate::sim::NodeId;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// A static mesh topology over `n` nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<(f64, f64)>,
    range: f64,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds a topology from explicit positions and a radio range.
    ///
    /// Adjacency is built with a uniform grid of `range`-sized buckets —
    /// each node only checks the 9 surrounding cells — so construction is
    /// `O(n)` for bounded-density deployments instead of `O(n²)`. The
    /// result (including per-node neighbor order, ascending by id) is
    /// identical to the exhaustive pairwise scan, which remains as the
    /// fallback for degenerate ranges.
    pub fn from_positions(positions: Vec<(f64, f64)>, range: f64) -> Self {
        let n = positions.len();
        let mut adjacency = vec![Vec::new(); n];
        if range.is_finite() && range > 0.0 && n > 1 {
            let cell_of = |p: (f64, f64)| -> (i64, i64) {
                ((p.0 / range).floor() as i64, (p.1 / range).floor() as i64)
            };
            let mut buckets: crate::fasthash::FastHashMap<(i64, i64), Vec<u32>> =
                crate::fasthash::FastHashMap::default();
            for (i, &p) in positions.iter().enumerate() {
                buckets.entry(cell_of(p)).or_default().push(i as u32);
            }
            for (i, &p) in positions.iter().enumerate() {
                let (cx, cy) = cell_of(p);
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(cell) = buckets.get(&(cx + dx, cy + dy)) else {
                            continue;
                        };
                        for &j in cell {
                            let j = j as usize;
                            if j != i && dist(p, positions[j]) <= range {
                                adjacency[i].push(NodeId(j as u16));
                            }
                        }
                    }
                }
                // Bucket visit order is hash-dependent; the contract
                // (ascending node id, matching the pairwise scan) is not.
                adjacency[i].sort_unstable();
            }
        } else {
            for i in 0..n {
                for j in (i + 1)..n {
                    if dist(positions[i], positions[j]) <= range {
                        adjacency[i].push(NodeId(j as u16));
                        adjacency[j].push(NodeId(i as u16));
                    }
                }
            }
        }
        Self {
            positions,
            range,
            adjacency,
        }
    }

    /// A chain of `n` nodes spaced exactly one radio range apart: node `i`
    /// reaches only `i±1`. Used for hop-distance sweeps (CS-3).
    pub fn chain(n: usize) -> Self {
        let positions = (0..n).map(|i| (i as f64, 0.0)).collect();
        Self::from_positions(positions, 1.01)
    }

    /// A `w × h` grid with unit spacing and a radio range of 1.01, so each
    /// node reaches its 4-neighbourhood. Approximates the dense office mesh
    /// of the DES testbed.
    pub fn grid(w: usize, h: usize) -> Self {
        let mut positions = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                positions.push((x as f64, y as f64));
            }
        }
        Self::from_positions(positions, 1.01)
    }

    /// A random geometric graph: `n` nodes uniform in a `side × side` square
    /// with the given radio `range`, positions drawn from `rng`.
    pub fn random_geometric(n: usize, side: f64, range: f64, rng: &mut impl rand::Rng) -> Self {
        let positions = (0..n)
            .map(|_| (rng.gen::<f64>() * side, rng.gen::<f64>() * side))
            .collect();
        Self::from_positions(positions, range)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u16).map(NodeId)
    }

    /// Radio range used to build adjacency.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of a node.
    pub fn position(&self, node: NodeId) -> (f64, f64) {
        self.positions[node.0 as usize]
    }

    /// Direct radio neighbours of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0 as usize]
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        dist(self.position(a), self.position(b))
    }

    /// BFS hop distances from `src` to every node; `None` = unreachable.
    pub fn hop_counts_from(&self, src: NodeId) -> Vec<Option<u32>> {
        let n = self.len();
        let mut dist = vec![None; n];
        let mut queue = VecDeque::new();
        dist[src.0 as usize] = Some(0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.0 as usize].unwrap();
            for &v in self.neighbors(u) {
                if dist[v.0 as usize].is_none() {
                    dist[v.0 as usize] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Hop count between two nodes; `None` if disconnected.
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.hop_counts_from(a)[b.0 as usize]
    }

    /// Shortest path from `a` to `b` (inclusive of both); `None` if
    /// disconnected. Ties broken deterministically by lowest node id.
    pub fn shortest_path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        let n = self.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[a.0 as usize] = true;
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            // adjacency lists are built in increasing id order already
            for &v in self.neighbors(u) {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    parent[v.0 as usize] = Some(u);
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while let Some(p) = parent[cur.0 as usize] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// True if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.hop_counts_from(NodeId(0)).iter().all(Option::is_some)
    }

    /// Full hop-count matrix between a set of participants — the topology
    /// measurement ExCovery takes before and after each experiment (§IV-B4).
    pub fn hop_matrix(&self, participants: &[NodeId]) -> Vec<Vec<Option<u32>>> {
        participants
            .iter()
            .map(|&a| {
                let d = self.hop_counts_from(a);
                participants.iter().map(|&b| d[b.0 as usize]).collect()
            })
            .collect()
    }

    /// Adjacency snapshot as edge list (advanced topology recording).
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            for &j in &self.adjacency[i] {
                if (i as u16) < j.0 {
                    out.push((NodeId(i as u16), j));
                }
            }
        }
        out
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// Lazily precomputed all-pairs routing for a static [`Topology`].
///
/// The simulator used to run a BFS per unicast send and clone neighbor
/// `Vec`s per flood fan-out. A topology never changes during an experiment,
/// so both are cached here: every shortest path and every adjacency list is
/// materialized as a shared `Arc<[NodeId]>` slice. In-flight packets hold an
/// `Arc` clone of their route — forwarding advances an index into the shared
/// slice and never allocates.
///
/// Rows are built *on first use*, one source node at a time, behind a
/// [`OnceLock`]: a flood-only experiment on a 100×100 grid never pays for
/// (or stores) 10⁸ unicast paths, while a unicast sweep amortizes each BFS
/// across every packet from that source. `OnceLock` keeps lookups `&self`,
/// so concurrent shard workers share the table without coordination beyond
/// the first builder of a row winning the publish.
///
/// Paths are bit-identical to [`Topology::shortest_path`]: both derive from
/// a FIFO BFS that scans neighbors in increasing id order, so the parent
/// pointers (and therefore the reconstructed routes) match exactly. The
/// early exit in `shortest_path` only prunes exploration *after* the
/// destination's parent has been fixed, which cannot change the result.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// One lazily-built row per source node: `rows[src][dst]`.
    rows: Vec<OnceLock<Box<[Option<Arc<[NodeId]>>]>>>,
    /// Shared adjacency lists, same order as [`Topology::neighbors`].
    neighbors: Vec<Arc<[NodeId]>>,
}

impl RoutingTable {
    /// Builds the table shell; per-source BFS rows are computed on demand.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.len();
        let neighbors = (0..n)
            .map(|i| Arc::from(topology.neighbors(NodeId(i as u16))))
            .collect();
        Self {
            n,
            rows: (0..n).map(|_| OnceLock::new()).collect(),
            neighbors,
        }
    }

    /// One full BFS from `src`, reconstructing the path to every node.
    fn build_row(&self, src: NodeId) -> Box<[Option<Arc<[NodeId]>>]> {
        let n = self.n;
        let s = src.0 as usize;
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors[u.0 as usize].iter() {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    parent[v.0 as usize] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        let mut row: Vec<Option<Arc<[NodeId]>>> = vec![None; n];
        let mut scratch: Vec<NodeId> = Vec::new();
        for d in 0..n {
            if d == s {
                row[d] = Some(Arc::from([src] as [NodeId; 1]));
                continue;
            }
            if !seen[d] {
                continue; // unreachable
            }
            scratch.clear();
            let mut cur = NodeId(d as u16);
            scratch.push(cur);
            while let Some(p) = parent[cur.0 as usize] {
                scratch.push(p);
                cur = p;
            }
            scratch.reverse();
            row[d] = Some(Arc::from(scratch.as_slice()));
        }
        row.into_boxed_slice()
    }

    /// Cached shortest path from `a` to `b` (inclusive); `None` if
    /// disconnected. Identical to [`Topology::shortest_path`].
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<&Arc<[NodeId]>> {
        let row = self.rows[a.0 as usize].get_or_init(|| self.build_row(a));
        row[b.0 as usize].as_ref()
    }

    /// Shared adjacency list of `node`, same order as
    /// [`Topology::neighbors`].
    pub fn neighbors(&self, node: NodeId) -> &Arc<[NodeId]> {
        &self.neighbors[node.0 as usize]
    }

    /// Hop count along the cached path; `None` if disconnected.
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.path(a, b).map(|p| p.len() as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn chain_hop_counts_are_index_distance() {
        let t = Topology::chain(6);
        assert_eq!(t.hop_count(NodeId(0), NodeId(5)), Some(5));
        assert_eq!(t.hop_count(NodeId(2), NodeId(4)), Some(2));
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(3)), &[NodeId(2), NodeId(4)]);
    }

    #[test]
    fn grid_adjacency_is_4_neighbourhood() {
        let t = Topology::grid(3, 3);
        // Center node (1,1) = id 4 has 4 neighbours.
        assert_eq!(t.neighbors(NodeId(4)).len(), 4);
        // Corner has 2.
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
        assert_eq!(t.hop_count(NodeId(0), NodeId(8)), Some(4));
        assert!(t.is_connected());
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let t = Topology::grid(4, 4);
        let p = t.shortest_path(NodeId(0), NodeId(15)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(15)));
        assert_eq!(
            p.len() as u32 - 1,
            t.hop_count(NodeId(0), NodeId(15)).unwrap()
        );
        // Consecutive nodes are adjacent.
        for w in p.windows(2) {
            assert!(t.neighbors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn self_path_is_singleton() {
        let t = Topology::chain(3);
        assert_eq!(t.shortest_path(NodeId(1), NodeId(1)), Some(vec![NodeId(1)]));
        assert_eq!(t.hop_count(NodeId(1), NodeId(1)), Some(0));
    }

    #[test]
    fn disconnected_components_detected() {
        let t = Topology::from_positions(vec![(0.0, 0.0), (0.5, 0.0), (10.0, 0.0)], 1.0);
        assert!(!t.is_connected());
        assert_eq!(t.hop_count(NodeId(0), NodeId(2)), None);
        assert_eq!(t.shortest_path(NodeId(0), NodeId(2)), None);
        assert_eq!(t.hop_count(NodeId(0), NodeId(1)), Some(1));
    }

    #[test]
    fn hop_matrix_is_symmetric_with_zero_diagonal() {
        let t = Topology::grid(3, 2);
        let participants: Vec<NodeId> = t.nodes().collect();
        let m = t.hop_matrix(&participants);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], Some(0));
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, m[j][i]);
            }
        }
    }

    #[test]
    fn random_geometric_is_reproducible() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(9);
        let t1 = Topology::random_geometric(20, 5.0, 1.5, &mut r1);
        let t2 = Topology::random_geometric(20, 5.0, 1.5, &mut r2);
        assert_eq!(t1.edges(), t2.edges());
        for n in t1.nodes() {
            assert_eq!(t1.position(n), t2.position(n));
        }
    }

    #[test]
    fn edges_unique_and_ordered() {
        let t = Topology::grid(3, 3);
        let edges = t.edges();
        // 2*w*h - w - h edges in a grid: 2*9-3-3 = 12.
        assert_eq!(edges.len(), 12);
        for (a, b) in &edges {
            assert!(a.0 < b.0);
        }
    }

    #[test]
    fn routing_table_matches_per_packet_bfs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for topo in [
            Topology::chain(6),
            Topology::grid(5, 5),
            Topology::from_positions(vec![(0.0, 0.0), (0.5, 0.0), (10.0, 0.0)], 1.0),
            Topology::random_geometric(24, 5.0, 1.7, &mut rng),
        ] {
            let table = RoutingTable::new(&topo);
            for a in topo.nodes() {
                for b in topo.nodes() {
                    let bfs = topo.shortest_path(a, b);
                    let cached = table.path(a, b).map(|p| p.to_vec());
                    assert_eq!(bfs, cached, "path {a:?}->{b:?} diverged");
                    assert_eq!(table.hop_count(a, b), topo.hop_count(a, b));
                }
                assert_eq!(&table.neighbors(a)[..], topo.neighbors(a));
            }
        }
    }

    #[test]
    fn empty_topology() {
        let t = Topology::from_positions(vec![], 1.0);
        assert!(t.is_empty());
        assert!(t.is_connected());
        assert!(t.edges().is_empty());
    }
}
