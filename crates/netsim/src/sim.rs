//! The simulator core: nodes, agents, packet transport, timers.
//!
//! [`Simulator`] owns a [`Topology`], one internal node record per topology
//! node and a deterministic event queue per spatial shard (see
//! [`crate::shard`]). Protocol implementations (the SD substrate, test
//! harnesses) attach as [`Agent`]s bound to a `(node, port)` pair and
//! interact with the world exclusively through an [`AgentCtx`] — sending
//! packets, arming timers and emitting protocol events that ExCovery
//! records.
//!
//! Transport model:
//!
//! * **Unicast** packets follow the shortest path, hop by hop; each link
//!   crossing draws loss from the load-dependent [`LinkModel`] and adds a
//!   jittered per-hop delay plus serialization time.
//! * **Multicast/Broadcast** packets flood the mesh with per-packet
//!   duplicate suppression, the standard mesh multicast approximation; each
//!   link crossing draws loss and delay independently.
//!
//! Fault injection ([`FilterRule`]) is evaluated at the originator
//! (transmit direction) and the final receiver (receive direction); an
//! interface fault or the *drop-all* environment manipulation additionally
//! stops a node from relaying.
//!
//! # Sharded execution
//!
//! With `SimulatorConfig::shards > 1` (or `EXCOVERY_SHARDS` set) the
//! topology is striped into spatial shards, each with its own event queue,
//! and a single run executes on one thread per shard synchronized by
//! conservative lookahead windows. Every event carries a global ordering
//! key `(origin_node << 48) | origin_seq` and every random draw comes from
//! a per-node stream, so the outcome — stats, captures, protocol events,
//! `ExperimentOutcome::digest()` — is bit-exact with the serial path for
//! any shard count. See `crate::shard` for the synchronization argument.

use crate::capture::{CaptureBuffer, CaptureKind, CaptureRecord};
use crate::clock::{NodeClock, SyncMeasurement};
use crate::fasthash::FastHashMap;
use crate::filter::{Direction, FilterRule, FilterSet, RuleId, Verdict};
use crate::link::{LinkLoad, LinkModel};
use crate::mailbox::MailboxGrid;
use crate::packet::{Destination, Packet, PacketId, Payload, Port};
use crate::params::{EventName, EventParams};
use crate::rng::derive_rng_indexed;
use crate::shard::{run_windows, Shard, ShardMap, SimNode};
use crate::tagger::Tagger;
use crate::time::{SimDuration, SimTime};
use crate::topology::{RoutingTable, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Index of a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol endpoint attached to a `(node, port)`.
///
/// All methods receive an [`AgentCtx`] for interacting with the simulator;
/// default implementations ignore the callback.
pub trait Agent: std::any::Any + Send {
    /// Called once when the agent is installed.
    fn on_start(&mut self, _ctx: &mut AgentCtx) {}
    /// Called when a packet addressed to this agent's port is delivered.
    fn on_packet(&mut self, _ctx: &mut AgentCtx, _pkt: &Packet) {}
    /// Called when a timer armed via [`AgentCtx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut AgentCtx, _token: u64) {}
    /// Concrete-type access for external control (NodeManagers drive their
    /// protocol agents between simulator steps; see `Simulator::with_agent_mut`).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A protocol-level event surfaced by an agent (e.g. `sd_service_add`),
/// recorded with the node's local clock. ExCovery's engine drains these
/// into its event list (§IV-B1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolEvent {
    /// Node the event occurred on.
    pub node: NodeId,
    /// Local clock reading at emission.
    pub local_time: SimTime,
    /// Event name (a `&'static str` for the common literal case).
    pub name: EventName,
    /// Event parameters as key/value pairs (inline up to three).
    pub params: EventParams,
}

/// What an agent asked the simulator to do during a callback.
enum Action {
    Send {
        dst: Destination,
        port: Port,
        payload: Payload,
    },
    SetTimer {
        delay: SimDuration,
        token: u64,
    },
    CancelTimer {
        token: u64,
    },
}

/// The interface through which agents act on the simulated world.
pub struct AgentCtx<'a> {
    now: SimTime,
    local_now: SimTime,
    node: NodeId,
    actions: Vec<Action>,
    events: Vec<ProtocolEvent>,
    rng: &'a mut StdRng,
}

impl<'a> AgentCtx<'a> {
    /// Current reference-clock time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current *local* clock reading of this agent's node.
    pub fn local_now(&self) -> SimTime {
        self.local_now
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a packet from this node.
    pub fn send(&mut self, dst: Destination, port: Port, payload: impl Into<Payload>) {
        self.actions.push(Action::Send {
            dst,
            port,
            payload: payload.into(),
        });
    }

    /// Arms a timer that calls [`Agent::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Cancels all pending timers of this agent carrying `token`.
    pub fn cancel_timer(&mut self, token: u64) {
        self.actions.push(Action::CancelTimer { token });
    }

    /// Emits a protocol event recorded by the experimentation layer.
    ///
    /// `name` is typically a string literal (no allocation); `params`
    /// accepts an array of pairs, e.g. `[("service", value)]`, or
    /// [`EventParams::new()`] for none.
    pub fn emit(&mut self, name: impl Into<EventName>, params: impl Into<EventParams>) {
        self.events.push(ProtocolEvent {
            node: self.node,
            local_time: self.local_now,
            name: name.into(),
            params: params.into(),
        });
    }

    /// Seeded per-node randomness for protocol jitter (reproducible).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// Simulator-internal queued events. Every variant executes *at* exactly
/// one node ([`Ev::node`]); the event is queued on (or mailed to) the
/// shard owning that node.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A unicast packet finishes crossing the link `from → to`.
    /// `path` is the full route shared with the routing cache; `next` is
    /// the index into it of the hop after `to` (`path.len()` at the end).
    UnicastTransit {
        packet: Packet,
        from: NodeId,
        to: NodeId,
        path: Arc<[NodeId]>,
        next: usize,
    },
    /// A flooded packet finishes crossing the link `from → to`. The packet
    /// is shared: a fan-out of degree d bumps one refcount d times instead
    /// of deep-cloning the payload d times.
    FloodTransit {
        packet: Arc<Packet>,
        from: NodeId,
        to: NodeId,
    },
    /// Final delivery deferred by an injected receive delay; filters were
    /// already evaluated.
    Deliver { packet: Packet, at: NodeId },
    /// A timer armed by the agent at `(node, port)` fires.
    Timer {
        node: NodeId,
        port: Port,
        token: u64,
        tid: u64,
    },
}

impl Ev {
    /// The node this event executes at — which determines the owning shard.
    #[inline]
    pub(crate) fn node(&self) -> NodeId {
        match self {
            Ev::UnicastTransit { to, .. } | Ev::FloodTransit { to, .. } => *to,
            Ev::Deliver { at, .. } => *at,
            Ev::Timer { node, .. } => *node,
        }
    }
}

/// Counters of transport activity, useful for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Packets handed to the network by agents.
    pub sent: u64,
    /// Final deliveries to an agent.
    pub delivered: u64,
    /// Packets dropped by filter rules (fault injection).
    pub dropped_filter: u64,
    /// Link crossings lost to the channel model.
    pub dropped_loss: u64,
    /// Flood duplicates suppressed.
    pub duplicates: u64,
    /// Relay transmissions performed.
    pub forwarded: u64,
}

impl SimStats {
    /// Component-wise sum (merging per-shard counters).
    pub(crate) fn merge(&mut self, o: SimStats) {
        self.sent += o.sent;
        self.delivered += o.delivered;
        self.dropped_filter += o.dropped_filter;
        self.dropped_loss += o.dropped_loss;
        self.duplicates += o.duplicates;
        self.forwarded += o.forwarded;
    }
}

/// Configuration of a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Master seed; every internal stream derives from it.
    pub seed: u64,
    /// Link loss/delay model.
    pub link_model: LinkModel,
    /// Maximum absolute node clock offset, nanoseconds (uniform draw).
    pub max_clock_offset_ns: i64,
    /// Maximum absolute node clock drift, ppm (uniform draw).
    pub max_drift_ppm: f64,
    /// Maximum absolute clock-sync measurement error, nanoseconds.
    pub max_sync_error_ns: i64,
    /// Spatial shards for multi-core execution of a single run. `0` = auto:
    /// the `EXCOVERY_SHARDS` environment variable, defaulting to 1
    /// (serial). Any value is clamped to the node count. The outcome is
    /// bit-exact for every shard count.
    pub shards: usize,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            link_model: LinkModel::default(),
            // A loosely NTP-synchronized testbed: offsets up to ±5 ms,
            // drift up to ±50 ppm, sync measurement error up to ±100 µs.
            max_clock_offset_ns: 5_000_000,
            max_drift_ppm: 50.0,
            max_sync_error_ns: 100_000,
            shards: 0,
        }
    }
}

impl SimulatorConfig {
    /// Configuration with perfectly synchronized clocks (useful in tests).
    pub fn perfect_clocks(seed: u64) -> Self {
        Self {
            seed,
            max_clock_offset_ns: 0,
            max_drift_ppm: 0.0,
            max_sync_error_ns: 0,
            ..Self::default()
        }
    }

    /// Same configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same configuration with an explicit shard count (`0` = auto via
    /// `EXCOVERY_SHARDS`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// The shard count a simulator over `node_count` nodes will actually
    /// use: the configured count, or the `EXCOVERY_SHARDS` environment
    /// value when `0`, clamped to `[1, node_count]`.
    pub fn resolved_shards(&self, node_count: usize) -> usize {
        let requested = if self.shards == 0 {
            crate::campaign::shards_from_env()
        } else {
            self.shards
        };
        requested.max(1).clamp(1, node_count.max(1))
    }
}

/// Immutable per-run context shared by every shard: configuration, routing,
/// shard map and background load. All `Sync`; handlers read, never write.
pub(crate) struct SimCtx<'a> {
    pub cfg: &'a SimulatorConfig,
    pub routing: &'a RoutingTable,
    pub map: &'a ShardMap,
    pub link_load: &'a LinkLoad,
}

// ---- per-shard event handlers ------------------------------------------
//
// Inherent methods on `Shard` (defined in `crate::shard`); they implement
// the transport semantics. Invariant: a handler only touches state of the
// shard it runs on — its own nodes, queue, stats and maps — plus the
// read-only `SimCtx` and the cross-shard mailbox.

impl Shard {
    #[inline]
    fn node(&self, ctx: &SimCtx, id: NodeId) -> &SimNode {
        debug_assert_eq!(ctx.map.shard_of(id), self.id, "foreign node access");
        &self.nodes[ctx.map.local_index(id)]
    }

    #[inline]
    fn node_mut(&mut self, ctx: &SimCtx, id: NodeId) -> &mut SimNode {
        debug_assert_eq!(ctx.map.shard_of(id), self.id, "foreign node access");
        &mut self.nodes[ctx.map.local_index(id)]
    }

    /// Queues `ev` under `(due, key)`: locally if this shard owns the
    /// executing node, through the mailbox grid otherwise.
    fn schedule_ev(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        due: SimTime,
        key: u64,
        ev: Ev,
    ) {
        let dst = ctx.map.shard_of(ev.node());
        if dst == self.id {
            self.queue.schedule_with_key(due, key, ev);
        } else {
            self.crossings_out += 1;
            mail.push(self.id, dst, due, key, ev);
        }
    }

    /// Pops and executes the earliest event of this shard's queue.
    pub(crate) fn process_one(&mut self, ctx: &SimCtx, mail: &MailboxGrid<Ev>) -> bool {
        let Some((due, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(due >= self.time, "time must be monotone per shard");
        self.time = due;
        self.events_executed += 1;
        match ev {
            Ev::UnicastTransit {
                packet,
                from,
                to,
                path,
                next,
            } => self.handle_unicast_transit(ctx, mail, packet, from, to, path, next),
            Ev::FloodTransit { packet, from, to } => {
                self.handle_flood_transit(ctx, mail, packet, from, to)
            }
            Ev::Deliver { packet, at } => self.deliver(ctx, mail, &packet, at),
            Ev::Timer {
                node,
                port,
                token,
                tid,
            } => self.handle_timer(ctx, mail, node, port, token, tid),
        }
        true
    }

    /// Drains this shard's queue through the window `[.., end)` (or
    /// `[.., end]` when `inclusive`); returns the number of events
    /// executed. The conservative-window workhorse.
    pub(crate) fn process_window(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        end: SimTime,
        inclusive: bool,
    ) -> u64 {
        let mut n = 0;
        while let Some(t) = self.queue.peek_time() {
            let in_window = if inclusive { t <= end } else { t < end };
            if !in_window {
                break;
            }
            self.process_one(ctx, mail);
            n += 1;
        }
        n
    }

    /// Runs `f` on the agent at `(node, port)` with a fresh context, then
    /// applies the actions the agent requested.
    pub(crate) fn dispatch(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        node: NodeId,
        port: Port,
        f: impl FnOnce(&mut dyn Agent, &mut AgentCtx),
    ) {
        let now = self.time;
        let n = self.node_mut(ctx, node);
        let Some(mut agent) = n.agents.remove(&port) else {
            return;
        };
        let local_now = n.clock.local_time(now);
        let mut actx = AgentCtx {
            now,
            local_now,
            node,
            actions: Vec::new(),
            events: Vec::new(),
            rng: &mut n.rng,
        };
        f(agent.as_mut(), &mut actx);
        let AgentCtx {
            actions, events, ..
        } = actx;
        // Reinstall unless the agent replaced/removed itself meanwhile
        // (it cannot — only the simulator mutates the map — so insert).
        n.agents.insert(port, agent);
        for pe in events {
            let key = self.node_mut(ctx, node).next_key();
            self.protocol_events.push((now, key, pe));
        }
        for action in actions {
            match action {
                Action::Send {
                    dst,
                    port: p,
                    payload,
                } => self.process_send(ctx, mail, node, dst, p, payload),
                Action::SetTimer { delay, token } => {
                    let (tid, key) = {
                        let n = self.node_mut(ctx, node);
                        let tid = n.next_tid;
                        n.next_tid += 1;
                        (tid, n.next_key())
                    };
                    self.active_timers
                        .entry((node.0, port, token))
                        .or_default()
                        .insert(tid);
                    let due = self.time + delay;
                    // Timers fire at the arming node, so this is always a
                    // local enqueue; `schedule_ev` keeps the routing uniform.
                    self.schedule_ev(
                        ctx,
                        mail,
                        due,
                        key,
                        Ev::Timer {
                            node,
                            port,
                            token,
                            tid,
                        },
                    );
                }
                Action::CancelTimer { token } => {
                    self.active_timers.remove(&(node.0, port, token));
                }
            }
        }
    }

    fn handle_timer(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        node: NodeId,
        port: Port,
        token: u64,
        tid: u64,
    ) {
        let key = (node.0, port, token);
        let live = match self.active_timers.get_mut(&key) {
            Some(set) => set.remove(&tid),
            None => false,
        };
        if let Some(set) = self.active_timers.get(&key) {
            if set.is_empty() {
                self.active_timers.remove(&key);
            }
        }
        if live {
            self.dispatch(ctx, mail, node, port, |agent, actx| {
                agent.on_timer(actx, token)
            });
        }
    }

    fn alloc_packet(
        &mut self,
        ctx: &SimCtx,
        src: NodeId,
        dst: Destination,
        port: Port,
        payload: Payload,
    ) -> Packet {
        let sent_at = self.time;
        let n = self.node_mut(ctx, src);
        let seq = n.next_packet_seq;
        n.next_packet_seq += 1;
        // `(src << 32) | seq` stays below 2⁵³ — safe as a JSON number and
        // allocation-order deterministic per source node (shard-invariant).
        let id = PacketId((u64::from(src.0) << 32) | u64::from(seq));
        let tag = n.tagger.stamp();
        Packet {
            id,
            tag,
            src,
            dst,
            port,
            size_bytes: Packet::wire_size(&payload),
            payload,
            sent_at,
        }
    }

    fn capture(&mut self, ctx: &SimCtx, node: NodeId, packet: &Packet, kind: CaptureKind) {
        let now = self.time;
        let n = self.node_mut(ctx, node);
        let local_time = n.clock.local_time(now);
        n.captures.record(CaptureRecord {
            node,
            local_time,
            packet_id: packet.id,
            tag: packet.tag,
            src: packet.src,
            dst: packet.dst,
            port: packet.port,
            payload: packet.payload.clone(),
            kind,
        });
    }

    pub(crate) fn process_send(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        src: NodeId,
        dst: Destination,
        port: Port,
        payload: Payload,
    ) {
        self.stats.sent += 1;
        let packet = self.alloc_packet(ctx, src, dst, port, payload);
        // The sender observes its own transmission attempt even if egress
        // filters subsequently drop it — exactly what a local capture on a
        // faulty interface would show.
        self.capture(ctx, src, &packet, CaptureKind::Sent);
        if self.node(ctx, src).drop_all {
            self.stats.dropped_filter += 1;
            return;
        }
        // Egress filter: path rules match against the final unicast peer.
        let peer = match dst {
            Destination::Unicast(d) => Some(d),
            _ => None,
        };
        let verdict = {
            let SimNode {
                filters,
                channel_rng,
                ..
            } = self.node_mut(ctx, src);
            filters.evaluate(Direction::Transmit, peer, channel_rng)
        };
        let extra = match verdict {
            Verdict::Drop => {
                self.stats.dropped_filter += 1;
                return;
            }
            Verdict::Pass { extra_delay } => extra_delay,
        };
        match dst {
            Destination::Unicast(final_dst) => {
                if final_dst == src {
                    // Loopback: deliver immediately without touching the medium.
                    self.deliver(ctx, mail, &packet, src);
                    return;
                }
                let Some(path) = ctx.routing.path(src, final_dst) else {
                    self.stats.dropped_loss += 1; // unroutable
                    return;
                };
                // path = [src, h1, ..., final]; transmit to h1. The route is
                // a shared slice from the routing cache — no per-packet copy.
                let path = Arc::clone(path);
                let first = path[1];
                self.transmit_hop(ctx, mail, packet, src, first, path, 2, extra);
            }
            Destination::Multicast | Destination::Broadcast => {
                self.flood_seen.insert((packet.id, src.0));
                let packet = Arc::new(packet);
                self.flood_from(ctx, mail, &packet, src, None, extra);
            }
        }
    }

    /// Attempts one unicast link crossing `from → to`; on success schedules
    /// the transit-complete event. `path`/`next` index the shared route:
    /// `path[next]` is the hop after `to` (`next == path.len()` at the end).
    /// All draws come from `from`'s channel stream — `from` is always the
    /// node the current event executes at.
    #[allow(clippy::too_many_arguments)]
    fn transmit_hop(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        packet: Packet,
        from: NodeId,
        to: NodeId,
        path: Arc<[NodeId]>,
        next: usize,
        extra_delay: SimDuration,
    ) {
        let load = ctx.link_load.get(from.0, to.0);
        let p = ctx.cfg.link_model.loss_probability(load);
        let lost = self.node_mut(ctx, from).channel_rng.gen::<f64>() < p;
        if lost {
            self.stats.dropped_loss += 1;
            return;
        }
        let base = ctx.cfg.link_model.hop_delay(load);
        let (jitter_draw, key) = {
            let n = self.node_mut(ctx, from);
            (n.channel_rng.gen::<f64>(), n.next_key())
        };
        let delay = ctx.cfg.link_model.jittered(base, jitter_draw)
            + ctx.cfg.link_model.serialization_delay(packet.size_bytes)
            + extra_delay;
        let due = self.time + delay;
        self.schedule_ev(
            ctx,
            mail,
            due,
            key,
            Ev::UnicastTransit {
                packet,
                from,
                to,
                path,
                next,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_unicast_transit(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        packet: Packet,
        _from: NodeId,
        to: NodeId,
        path: Arc<[NodeId]>,
        next: usize,
    ) {
        if self.node(ctx, to).drop_all {
            self.stats.dropped_filter += 1;
            return;
        }
        if next >= path.len() {
            // Final hop: ingress filters, then delivery.
            let verdict = {
                let SimNode {
                    filters,
                    channel_rng,
                    ..
                } = self.node_mut(ctx, to);
                filters.evaluate(Direction::Receive, Some(packet.src), channel_rng)
            };
            match verdict {
                Verdict::Drop => self.stats.dropped_filter += 1,
                Verdict::Pass { extra_delay } if extra_delay > SimDuration::ZERO => {
                    // Defer the (already filter-approved) delivery.
                    let key = self.node_mut(ctx, to).next_key();
                    let due = self.time + extra_delay;
                    self.schedule_ev(ctx, mail, due, key, Ev::Deliver { packet, at: to });
                }
                Verdict::Pass { .. } => self.deliver(ctx, mail, &packet, to),
            }
        } else {
            // Relay: a node with a downed interface cannot forward.
            if self.relay_blocked(ctx, to) {
                self.stats.dropped_filter += 1;
                return;
            }
            self.capture(ctx, to, &packet, CaptureKind::Forwarded);
            self.stats.forwarded += 1;
            // Advance the index into the shared route — no allocation.
            let hop = path[next];
            self.transmit_hop(ctx, mail, packet, to, hop, path, next + 1, SimDuration::ZERO);
        }
    }

    /// True if `node`'s filters prevent it from relaying traffic
    /// (interface fault in any direction blocks the shared radio).
    fn relay_blocked(&self, ctx: &SimCtx, node: NodeId) -> bool {
        let n = self.node(ctx, node);
        // Fault-free fast path: nothing installed can block the relay.
        if !n.drop_all && n.filters.is_empty() {
            return false;
        }
        // Probe with a max-output RNG: `gen::<f64>()` yields ≈1.0, so
        // probabilistic loss rules (p < 1) never fire and only deterministic
        // blocks (InterfaceDown, total loss) force a Drop verdict.
        let mut probe_rng = rand::rngs::mock::StepRng::new(u64::MAX, 0);
        n.drop_all
            || matches!(
                n.filters
                    .evaluate(Direction::Transmit, None, &mut probe_rng),
                Verdict::Drop
            )
            || matches!(
                n.filters.evaluate(Direction::Receive, None, &mut probe_rng),
                Verdict::Drop
            )
    }

    fn flood_from(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        packet: &Arc<Packet>,
        at: NodeId,
        came_from: Option<NodeId>,
        extra_delay: SimDuration,
    ) {
        // Shared adjacency slice from the routing cache — no per-fan-out
        // copy; the Arc clone detaches the borrow from the routing table.
        let neighbors = Arc::clone(ctx.routing.neighbors(at));
        let ser = ctx.cfg.link_model.serialization_delay(packet.size_bytes);
        for &nb in neighbors.iter() {
            if Some(nb) == came_from {
                continue;
            }
            let load = ctx.link_load.get(at.0, nb.0);
            let p = ctx.cfg.link_model.loss_probability(load);
            let lost = self.node_mut(ctx, at).channel_rng.gen::<f64>() < p;
            if lost {
                self.stats.dropped_loss += 1;
                continue;
            }
            let base = ctx.cfg.link_model.hop_delay(load);
            let (jitter_draw, key) = {
                let n = self.node_mut(ctx, at);
                (n.channel_rng.gen::<f64>(), n.next_key())
            };
            let delay = ctx.cfg.link_model.jittered(base, jitter_draw) + ser + extra_delay;
            let due = self.time + delay;
            self.schedule_ev(
                ctx,
                mail,
                due,
                key,
                Ev::FloodTransit {
                    packet: Arc::clone(packet),
                    from: at,
                    to: nb,
                },
            );
        }
    }

    fn handle_flood_transit(
        &mut self,
        ctx: &SimCtx,
        mail: &MailboxGrid<Ev>,
        packet: Arc<Packet>,
        from: NodeId,
        to: NodeId,
    ) {
        if !self.flood_seen.insert((packet.id, to.0)) {
            self.stats.duplicates += 1;
            return;
        }
        if self.node(ctx, to).drop_all {
            self.stats.dropped_filter += 1;
            return;
        }
        // Ingress filter at every receiving node.
        let verdict = {
            let SimNode {
                filters,
                channel_rng,
                ..
            } = self.node_mut(ctx, to);
            filters.evaluate(Direction::Receive, Some(packet.src), channel_rng)
        };
        let deliverable = match verdict {
            Verdict::Drop => {
                self.stats.dropped_filter += 1;
                false
            }
            Verdict::Pass { .. } => true,
        };
        let subscribed = self.node(ctx, to).agents.contains_key(&packet.port);
        if deliverable {
            if subscribed {
                self.deliver(ctx, mail, &packet, to);
            } else {
                self.capture(ctx, to, &packet, CaptureKind::Forwarded);
            }
        }
        // Relaying continues regardless of local subscription, unless the
        // node's radio is down. Note a Receive-dropped packet was still
        // heard by the radio in reality only probabilistically; we model
        // fault-filtered packets as consumed (not relayed) to make the
        // interface fault actually partition the flood.
        if deliverable && !self.relay_blocked(ctx, to) {
            self.stats.forwarded += 1;
            self.flood_from(ctx, mail, &packet, to, Some(from), SimDuration::ZERO);
        }
    }

    fn deliver(&mut self, ctx: &SimCtx, mail: &MailboxGrid<Ev>, packet: &Packet, at: NodeId) {
        self.capture(ctx, at, packet, CaptureKind::Received);
        if self.node(ctx, at).agents.contains_key(&packet.port) {
            self.stats.delivered += 1;
            self.dispatch(ctx, mail, at, packet.port, |agent, actx| {
                agent.on_packet(actx, packet)
            });
        }
    }
}

// ---- the simulator -----------------------------------------------------

/// The deterministic discrete-event network simulator.
///
/// ```
/// use excovery_netsim::sim::{Simulator, SimulatorConfig};
/// use excovery_netsim::topology::Topology;
/// use excovery_netsim::{Destination, NodeId, Payload};
///
/// let mut sim = Simulator::new(Topology::chain(3), SimulatorConfig::perfect_clocks(7));
/// sim.send_from(NodeId(0), 5353, Destination::Unicast(NodeId(2)), Payload::from("hello"));
/// sim.run_until_idle(1_000);
/// // The receiver captured the packet (1% base loss may rarely drop it;
/// // seed 7 delivers).
/// assert_eq!(sim.captures(NodeId(2)).len(), 1);
/// ```
pub struct Simulator {
    topology: Topology,
    routing: RoutingTable,
    cfg: SimulatorConfig,
    map: ShardMap,
    shards: Vec<Shard>,
    mail: MailboxGrid<Ev>,
    /// Conservative window width: the link model's minimum transit delay.
    /// Zero (a degenerate model) forces serial-merged execution.
    lookahead: SimDuration,
    time: SimTime,
    link_load: LinkLoad,
    /// Stats already published to the observability registry, so
    /// [`Simulator::publish_obs`] emits monotone counter deltas.
    obs_published: SimStats,
    obs_published_events: u64,
}

impl Simulator {
    /// Builds a simulator over `topology` with the given configuration.
    ///
    /// Node clocks are drawn from the seed-derived `clock` stream in node-id
    /// order, so the same `(topology, seed)` always produces the same clock
    /// population — independent of the shard count.
    pub fn new(topology: Topology, cfg: SimulatorConfig) -> Self {
        let shard_count = cfg.resolved_shards(topology.len());
        let map = ShardMap::new(&topology, shard_count);
        let mut clock_rng = crate::rng::derive_rng(cfg.seed, "clock");
        // Create nodes in GLOBAL id order (the clock stream draw order must
        // not depend on sharding), then distribute into stripe order.
        let mut slots: Vec<Option<SimNode>> = (0..topology.len())
            .map(|i| {
                let offset = if cfg.max_clock_offset_ns > 0 {
                    clock_rng.gen_range(-cfg.max_clock_offset_ns..=cfg.max_clock_offset_ns)
                } else {
                    0
                };
                let drift = if cfg.max_drift_ppm > 0.0 {
                    clock_rng.gen_range(-cfg.max_drift_ppm..=cfg.max_drift_ppm)
                } else {
                    0.0
                };
                Some(SimNode {
                    id: NodeId(i as u16),
                    clock: NodeClock::new(offset, drift),
                    filters: FilterSet::new(),
                    captures: CaptureBuffer::new(),
                    tagger: Tagger::new(),
                    drop_all: false,
                    rng: derive_rng_indexed(cfg.seed, "agent", i as u64),
                    sync_rng: derive_rng_indexed(cfg.seed, "sync", i as u64),
                    channel_rng: derive_rng_indexed(cfg.seed, "channel", i as u64),
                    next_seq: 0,
                    next_packet_seq: 0,
                    next_tid: 0,
                    agents: FastHashMap::default(),
                })
            })
            .collect();
        let shards = (0..map.shard_count())
            .map(|s| {
                let mut shard = Shard::new(s);
                for id in map.nodes_of(s) {
                    shard
                        .nodes
                        .push(slots[id.0 as usize].take().expect("node assigned twice"));
                }
                shard
            })
            .collect();
        Self {
            routing: RoutingTable::new(&topology),
            mail: MailboxGrid::new(map.shard_count()),
            lookahead: cfg.link_model.min_transit_delay(),
            map,
            topology,
            cfg,
            shards,
            time: SimTime::ZERO,
            link_load: LinkLoad::new(),
            obs_published: SimStats::default(),
            obs_published_events: 0,
        }
    }

    // ---- node plumbing ---------------------------------------------------

    fn node(&self, id: NodeId) -> &SimNode {
        &self.shards[self.map.shard_of(id)].nodes[self.map.local_index(id)]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut SimNode {
        let Self { shards, map, .. } = self;
        &mut shards[map.shard_of(id)].nodes[map.local_index(id)]
    }

    /// Runs `f` over every node, in global id order.
    fn for_each_node(&mut self, mut f: impl FnMut(&mut SimNode)) {
        let Self { shards, map, .. } = self;
        for i in 0..map.node_count() {
            let id = NodeId(i as u16);
            f(&mut shards[map.shard_of(id)].nodes[map.local_index(id)]);
        }
    }

    /// Dispatches an agent callback from *outside* the event loop (install,
    /// NodeManager commands): the owning shard's clock is first advanced to
    /// the global reference time.
    fn dispatch_external(
        &mut self,
        node: NodeId,
        port: Port,
        f: impl FnOnce(&mut dyn Agent, &mut AgentCtx),
    ) {
        let time = self.time;
        let Self {
            shards,
            mail,
            cfg,
            routing,
            map,
            link_load,
            ..
        } = self;
        let ctx = SimCtx {
            cfg,
            routing,
            map,
            link_load,
        };
        let shard = &mut shards[map.shard_of(node)];
        shard.time = shard.time.max(time);
        shard.dispatch(&ctx, mail, node, port, f);
    }

    // ---- inspection -----------------------------------------------------

    /// Current reference time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The topology the simulator runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The routing table (paths resolved lazily per source, adjacency
    /// shared as `Arc<[NodeId]>`; the topology is static).
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Transport statistics so far (merged across shards).
    pub fn stats(&self) -> SimStats {
        let mut total = SimStats::default();
        for sh in &self.shards {
            total.merge(sh.stats);
        }
        total
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.topology.len()
    }

    /// Number of spatial shards this simulator executes with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The deterministic node → shard assignment.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Events executed per shard (diagnostics; deterministic for a fixed
    /// shard count).
    pub fn events_per_shard(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.events_executed).collect()
    }

    /// Total events that crossed a shard boundary through the mailbox grid.
    pub fn mailbox_crossings(&self) -> u64 {
        self.shards.iter().map(|s| s.crossings_out).sum()
    }

    /// The conservative lookahead window width (minimum cross-shard link
    /// delay).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The local clock of a node.
    pub fn clock(&self, node: NodeId) -> NodeClock {
        self.node(node).clock
    }

    /// Local clock reading of `node` at the current reference time.
    pub fn local_time(&self, node: NodeId) -> SimTime {
        self.clock(node).local_time(self.time)
    }

    // ---- agents ----------------------------------------------------------

    /// Installs an agent at `(node, port)` and invokes its `on_start`.
    /// Replaces any previous agent on that port.
    pub fn install_agent(&mut self, node: NodeId, port: Port, agent: Box<dyn Agent>) {
        self.node_mut(node).agents.insert(port, agent);
        self.dispatch_external(node, port, |agent, ctx| agent.on_start(ctx));
    }

    /// Removes the agent at `(node, port)`, returning it if present.
    pub fn remove_agent(&mut self, node: NodeId, port: Port) -> Option<Box<dyn Agent>> {
        self.node_mut(node).agents.remove(&port)
    }

    /// True if an agent is installed at `(node, port)`.
    pub fn has_agent(&self, node: NodeId, port: Port) -> bool {
        self.node(node).agents.contains_key(&port)
    }

    /// Runs `f` against the agent at `(node, port)` with a live context —
    /// the hook NodeManagers use to issue protocol commands (e.g. the SD
    /// actions of §V) from outside the event loop. Actions the agent
    /// requests (sends, timers, events) are applied as usual. Returns
    /// `None` if no agent is installed there.
    pub fn with_agent_mut<R>(
        &mut self,
        node: NodeId,
        port: Port,
        f: impl FnOnce(&mut dyn Agent, &mut AgentCtx) -> R,
    ) -> Option<R> {
        let mut out = None;
        let captured = &mut out;
        self.dispatch_external(node, port, |agent, ctx| {
            *captured = Some(f(agent, ctx));
        });
        out
    }

    // ---- filters & faults -------------------------------------------------

    /// Installs a fault-injection rule on a node.
    pub fn install_filter(&mut self, node: NodeId, rule: FilterRule) -> RuleId {
        self.node_mut(node).filters.install(rule)
    }

    /// Removes a fault-injection rule.
    pub fn remove_filter(&mut self, node: NodeId, id: RuleId) -> bool {
        self.node_mut(node).filters.remove(id)
    }

    /// Removes all rules from all nodes (run clean-up).
    pub fn clear_all_filters(&mut self) {
        self.for_each_node(|n| n.filters.clear());
    }

    /// Sets the *drop-all* environment manipulation on one node: the node
    /// stops receiving, sending and forwarding experiment packets (§IV-D2).
    pub fn set_drop_all(&mut self, node: NodeId, drop: bool) {
        self.node_mut(node).drop_all = drop;
    }

    /// Applies *drop-all* to every node.
    pub fn set_drop_all_everywhere(&mut self, drop: bool) {
        self.for_each_node(|n| n.drop_all = drop);
    }

    // ---- measurement ------------------------------------------------------

    /// Measures the clock offset of `node` against the reference clock,
    /// with a seeded measurement error (paper §IV-B3). The error is drawn
    /// from the node's own `sync` stream, so the result for a given
    /// (seed, node, draw count) does not depend on when other nodes are
    /// measured.
    pub fn measure_sync(&mut self, node: NodeId) -> SyncMeasurement {
        let time = self.time;
        let max_err = self.cfg.max_sync_error_ns;
        let n = self.node_mut(node);
        let err = if max_err > 0 {
            n.sync_rng.gen_range(-max_err..=max_err)
        } else {
            0
        };
        SyncMeasurement::measure(&n.clock, time, err)
    }

    /// Capture buffer of a node.
    pub fn captures(&self, node: NodeId) -> &[CaptureRecord] {
        self.node(node).captures.records()
    }

    /// Drains the capture buffer of a node (collection phase).
    pub fn drain_captures(&mut self, node: NodeId) -> Vec<CaptureRecord> {
        self.node_mut(node).captures.drain()
    }

    /// Clears all capture buffers (run preparation).
    pub fn clear_all_captures(&mut self) {
        self.for_each_node(|n| n.captures.clear());
    }

    /// Drains protocol events emitted by agents since the last call, in
    /// global `(time, origin key)` order — a total order over events that
    /// is identical for every shard count.
    pub fn drain_protocol_events(&mut self) -> Vec<ProtocolEvent> {
        let mut all: Vec<(SimTime, u64, ProtocolEvent)> = Vec::new();
        for sh in &mut self.shards {
            all.append(&mut sh.protocol_events);
        }
        all.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        all.into_iter().map(|(_, _, e)| e).collect()
    }

    /// Records a protocol event on behalf of `node` (stamped with that
    /// node's local clock) — used by NodeManagers for `event_flag` and
    /// fault start/stop events that originate outside any agent (§IV-B1).
    pub fn emit_external_event(
        &mut self,
        node: NodeId,
        name: impl Into<EventName>,
        params: impl Into<EventParams>,
    ) {
        let time = self.time;
        let Self { shards, map, .. } = self;
        let shard = &mut shards[map.shard_of(node)];
        let n = &mut shard.nodes[map.local_index(node)];
        let local_time = n.clock.local_time(time);
        let key = n.next_key();
        shard.protocol_events.push((
            time,
            key,
            ProtocolEvent {
                node,
                local_time,
                name: name.into(),
                params: params.into(),
            },
        ));
    }

    /// Hop count between two nodes (the paper's topology measurement).
    pub fn hop_count(&self, a: NodeId, b: NodeId) -> Option<u32> {
        self.topology.hop_count(a, b)
    }

    // ---- background load (traffic generator hook) --------------------------

    /// Adds background load to the link `a—b` (kbit/s).
    pub fn add_link_load(&mut self, a: NodeId, b: NodeId, kbps: f64) {
        self.link_load.add(a.0, b.0, kbps);
    }

    /// Removes background load from the link `a—b` (kbit/s).
    pub fn remove_link_load(&mut self, a: NodeId, b: NodeId, kbps: f64) {
        self.link_load.remove(a.0, b.0, kbps);
    }

    /// Current background load on the link `a—b` (kbit/s).
    pub fn link_load(&self, a: NodeId, b: NodeId) -> f64 {
        self.link_load.get(a.0, b.0)
    }

    /// Clears all background load.
    pub fn clear_link_load(&mut self) {
        self.link_load.clear();
    }

    // ---- sending ------------------------------------------------------------

    /// Sends a packet from `node` as if an agent on `port` had sent it.
    /// Useful for tests and environment processes.
    pub fn send_from(&mut self, node: NodeId, port: Port, dst: Destination, payload: Payload) {
        let time = self.time;
        let Self {
            shards,
            mail,
            cfg,
            routing,
            map,
            link_load,
            ..
        } = self;
        let ctx = SimCtx {
            cfg,
            routing,
            map,
            link_load,
        };
        let shard = &mut shards[map.shard_of(node)];
        shard.time = shard.time.max(time);
        shard.process_send(&ctx, mail, node, dst, port, payload);
    }

    // ---- execution -----------------------------------------------------------

    /// Moves every mailed event into its destination shard's queue.
    fn drain_mail(shards: &mut [Shard], mail: &MailboxGrid<Ev>) {
        for dst in 0..shards.len() {
            let shard = &mut shards[dst];
            let q = &mut shard.queue;
            let depth = mail.drain_to(dst, |o| q.schedule_with_key(o.due, o.key, o.payload));
            if depth > 0 {
                shard.note_mailbox_depth(depth);
            }
        }
    }

    /// Index of the shard holding the globally earliest `(time, key)`
    /// event, if any. Keys are globally unique, so the order is total.
    fn earliest(shards: &[Shard]) -> Option<usize> {
        let mut best: Option<((SimTime, u64), usize)> = None;
        for (i, sh) in shards.iter().enumerate() {
            if let Some(tk) = sh.queue.peek() {
                if best.map_or(true, |(b, _)| tk < b) {
                    best = Some((tk, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Serial-merged execution: one event at a time across all shard
    /// queues, in global `(time, key)` order — the reference semantics the
    /// parallel path must reproduce, and the fallback when the lookahead
    /// is zero. Returns the number of events executed.
    fn run_serial_merged(
        shards: &mut [Shard],
        mail: &MailboxGrid<Ev>,
        ctx: &SimCtx,
        deadline: Option<SimTime>,
        budget: u64,
    ) -> u64 {
        let mut executed = 0;
        while executed < budget {
            Self::drain_mail(shards, mail);
            let Some(s) = Self::earliest(shards) else {
                break;
            };
            if deadline.is_some_and(|d| {
                shards[s].queue.peek_time().expect("peeked above") > d
            }) {
                break;
            }
            shards[s].process_one(ctx, mail);
            executed += 1;
        }
        // Invariant on exit: mailboxes were drained after the last
        // processed event, so every pending event sits in a shard queue.
        executed
    }

    /// Parallel windowed execution (see [`crate::shard::run_windows`]).
    #[allow(clippy::too_many_arguments)]
    fn run_parallel(
        shards: &mut [Shard],
        mail: &MailboxGrid<Ev>,
        ctx: &SimCtx,
        lookahead: SimDuration,
        deadline: Option<SimTime>,
        budget: u64,
        obs: bool,
    ) -> u64 {
        let drain = |shard: &mut Shard| {
            let id = shard.id;
            let q = &mut shard.queue;
            let depth = mail.drain_to(id, |o| q.schedule_with_key(o.due, o.key, o.payload));
            if depth > 0 {
                shard.note_mailbox_depth(depth);
            }
        };
        let process = |shard: &mut Shard, end: SimTime, inclusive: bool| {
            shard.process_window(ctx, mail, end, inclusive)
        };
        run_windows(shards, lookahead, deadline, budget, obs, drain, process)
    }

    /// Executes the single globally earliest queued event. Returns `false`
    /// if no event is pending.
    pub fn step(&mut self) -> bool {
        let Self {
            shards,
            mail,
            cfg,
            routing,
            map,
            link_load,
            time,
            ..
        } = self;
        let ctx = SimCtx {
            cfg,
            routing,
            map,
            link_load,
        };
        Self::drain_mail(shards, mail);
        let Some(s) = Self::earliest(shards) else {
            return false;
        };
        shards[s].process_one(&ctx, mail);
        *time = (*time).max(shards[s].time);
        true
    }

    /// Runs until the queue is empty or `deadline` is reached; the clock
    /// always advances to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let obs = excovery_obs::enabled();
        let Self {
            shards,
            mail,
            cfg,
            routing,
            map,
            link_load,
            time,
            lookahead,
            ..
        } = self;
        let ctx = SimCtx {
            cfg,
            routing,
            map,
            link_load,
        };
        if shards.len() == 1 {
            // Single shard: every event is local; the mailbox can only hold
            // nothing (all destinations are shard 0), but drain defensively.
            Self::drain_mail(shards, mail);
            let shard = &mut shards[0];
            while shard.queue.peek_time().is_some_and(|t| t <= deadline) {
                shard.process_one(&ctx, mail);
            }
        } else if lookahead.as_nanos() == 0 {
            Self::run_serial_merged(shards, mail, &ctx, Some(deadline), u64::MAX);
        } else {
            Self::run_parallel(shards, mail, &ctx, *lookahead, Some(deadline), u64::MAX, obs);
        }
        for sh in shards.iter_mut() {
            sh.time = sh.time.max(deadline);
        }
        *time = (*time).max(deadline);
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.time + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain, up to roughly `max_events` (storm
    /// guard; with parallel shards the cap is enforced at window
    /// granularity, so slightly more events may execute). Returns the
    /// number of events executed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let obs = excovery_obs::enabled();
        let Self {
            shards,
            mail,
            cfg,
            routing,
            map,
            link_load,
            time,
            lookahead,
            ..
        } = self;
        let ctx = SimCtx {
            cfg,
            routing,
            map,
            link_load,
        };
        let executed = if shards.len() == 1 {
            Self::drain_mail(shards, mail);
            let shard = &mut shards[0];
            let mut n = 0;
            while n < max_events && shard.process_one(&ctx, mail) {
                n += 1;
            }
            n
        } else if lookahead.as_nanos() == 0 {
            Self::run_serial_merged(shards, mail, &ctx, None, max_events)
        } else {
            Self::run_parallel(shards, mail, &ctx, *lookahead, None, max_events, obs)
        };
        // Normalize shard clocks to the global frontier. Safe under a
        // budget stop: execution is conservative, so every still-pending
        // event is due at or after the last processed window/event.
        let frontier = shards
            .iter()
            .map(|s| s.time)
            .max()
            .unwrap_or(*time)
            .max(*time);
        for sh in shards.iter_mut() {
            sh.time = frontier;
        }
        *time = frontier;
        // Unless the event budget cut execution short, idleness means every
        // cross-shard mailbox has been drained — in-flight events would be
        // lost work, not pending work.
        debug_assert!(
            executed == max_events || mail.is_empty(),
            "idle simulator with undelivered cross-shard events"
        );
        executed
    }

    /// Number of pending events (diagnostics), including any still in
    /// cross-shard mailboxes.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum::<usize>() + self.mail.pending()
    }

    /// Total queued events executed since construction (diagnostics;
    /// invariant across shard counts).
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_executed).sum()
    }

    /// Deterministic digest of the externally observable platform state:
    /// reference time, executed-event count, transport counters and every
    /// node's complete capture buffer (timestamps, packet identity,
    /// addressing, payload bytes) in node-id order.
    ///
    /// This is the equivalence oracle of the sharded executor — the value
    /// must be bit-identical for every shard count (and with observability
    /// on or off), because per-node capture order only depends on that
    /// node's event order, never on which shard executed it.
    pub fn state_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(PRIME)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        h = fold(h, self.now().as_nanos());
        h = fold(h, self.events_executed());
        let stats = self.stats();
        for v in [
            stats.sent,
            stats.delivered,
            stats.dropped_filter,
            stats.dropped_loss,
            stats.duplicates,
            stats.forwarded,
        ] {
            h = fold(h, v);
        }
        for id in 0..self.map.node_count() {
            let node = self.node(NodeId(id as u16));
            h = fold(h, node.captures.len() as u64);
            for rec in node.captures.records() {
                h = fold(h, rec.local_time.as_nanos());
                h = fold(h, rec.packet_id.0);
                h = fold(h, u64::from(rec.tag));
                h = fold(h, u64::from(rec.src.0));
                h = fold(
                    h,
                    match rec.dst {
                        Destination::Unicast(n) => u64::from(n.0),
                        Destination::Multicast => 1 << 32,
                        Destination::Broadcast => 2 << 32,
                    },
                );
                h = fold(h, u64::from(rec.port));
                h = fold(h, rec.payload.as_bytes().len() as u64);
                for b in rec.payload.as_bytes() {
                    h = fold(h, u64::from(*b));
                }
                h = fold(
                    h,
                    match rec.kind {
                        crate::capture::CaptureKind::Sent => 0,
                        crate::capture::CaptureKind::Received => 1,
                        crate::capture::CaptureKind::Forwarded => 2,
                    },
                );
            }
        }
        h
    }

    /// Publishes transport counters, event-queue depth, per-link background
    /// load and per-shard sharding metrics (events, mailbox crossings,
    /// windows, barrier waits, mailbox depth histogram) into the global
    /// observability registry.
    ///
    /// Deliberately *batch*: callers invoke it at run boundaries (the
    /// engine after each run, the bench harness after each workload) and
    /// never from the packet hot path, so the simulation itself stays
    /// allocation-free and its outcome is bit-identical whether or not
    /// observability is enabled. Counters are published as deltas since
    /// the previous call, so repeated publishing stays monotone.
    pub fn publish_obs(&mut self) {
        if !excovery_obs::enabled() {
            return;
        }
        let reg = excovery_obs::global();
        let (cur, last) = (self.stats(), self.obs_published);
        let events = self.events_executed();
        reg.counter("netsim_events_executed_total", &[])
            .add(events - self.obs_published_events);
        reg.counter("netsim_packets_sent_total", &[])
            .add(cur.sent - last.sent);
        reg.counter("netsim_packets_delivered_total", &[])
            .add(cur.delivered - last.delivered);
        reg.counter("netsim_packets_forwarded_total", &[])
            .add(cur.forwarded - last.forwarded);
        reg.counter("netsim_packets_dropped_total", &[("reason", "filter")])
            .add(cur.dropped_filter - last.dropped_filter);
        reg.counter("netsim_packets_dropped_total", &[("reason", "loss")])
            .add(cur.dropped_loss - last.dropped_loss);
        reg.counter("netsim_flood_duplicates_total", &[])
            .add(cur.duplicates - last.duplicates);
        self.obs_published = cur;
        self.obs_published_events = events;
        // Per-shard sharding metrics, labelled by shard index.
        for sh in &mut self.shards {
            let sid = sh.id.to_string();
            let labels: [(&str, &str); 1] = [("shard", &sid)];
            reg.counter("netsim_shard_events_total", &labels)
                .add(sh.events_executed - sh.obs_events_published);
            sh.obs_events_published = sh.events_executed;
            reg.counter("netsim_mailbox_crossings_total", &labels)
                .add(sh.crossings_out - sh.obs_crossings_published);
            sh.obs_crossings_published = sh.crossings_out;
            reg.counter("netsim_shard_windows_total", &labels)
                .add(sh.windows - sh.obs_windows_published);
            sh.obs_windows_published = sh.windows;
            reg.counter("netsim_barrier_wait_ns_total", &labels)
                .add(sh.barrier_wait_ns - sh.obs_barrier_ns_published);
            sh.obs_barrier_ns_published = sh.barrier_wait_ns;
            for (b, (&cur, pub_)) in sh
                .mailbox_depth_hist
                .iter()
                .zip(sh.obs_depth_published.iter_mut())
                .enumerate()
            {
                if cur > *pub_ {
                    let bucket = b.to_string();
                    reg.counter(
                        "netsim_mailbox_depth_bucket_total",
                        &[("shard", &sid), ("le_pow2", &bucket)],
                    )
                    .add(cur - *pub_);
                    *pub_ = cur;
                }
            }
        }
        reg.gauge("netsim_pending_events", &[])
            .set(self.pending_events() as i64);
        let link_load = reg.histogram("netsim_link_load_kbps", &[]);
        for (_, kbps) in self.link_load.entries() {
            link_load.observe(kbps as u64);
        }
    }

    /// Spacing between per-run time epochs: each run starts at
    /// `run_id × 1 h` of simulated time, far beyond any sane run length.
    pub const RUN_EPOCH: SimDuration = SimDuration::from_nanos(3_600_000_000_000);

    /// Resets the platform to a defined initial working condition for the
    /// next experiment run (paper §IV-C1): pending events, timers, agents,
    /// filters, captures, background load and drop-all flags are cleared.
    ///
    /// The reset is *run-scoped*: every randomness stream is reseeded from
    /// `(seed, run_id)` and the reference clock jumps to the run's
    /// canonical epoch (`run_id ×` [`Self::RUN_EPOCH`]). Per-run platform
    /// state is therefore a pure function of the configuration and the run
    /// id — never of which runs executed before. This is what makes a
    /// crash-resumed experiment bit-identical to an uninterrupted one: a
    /// master resuming at run `k` replays exactly the platform that run
    /// `k` would have seen. Time still advances monotonically across runs
    /// (like a real testbed's wall clock) as long as no run outlives the
    /// epoch spacing.
    pub fn reset_for_run(&mut self, run_id: u64) {
        let run_seed = crate::rng::derive_seed_indexed(self.cfg.seed, "run", run_id);
        self.link_load.clear();
        self.mail.clear();
        let epoch = SimTime::ZERO + Self::RUN_EPOCH.saturating_mul(run_id);
        for sh in &mut self.shards {
            sh.queue.clear();
            // Release event-storm capacity: one pathological run must not
            // pin its peak allocation for the rest of a campaign.
            sh.queue.shrink_to_fit();
            sh.flood_seen.clear();
            sh.active_timers.clear();
            sh.protocol_events.clear();
            sh.time = sh.time.max(epoch);
            for n in &mut sh.nodes {
                let i = u64::from(n.id.0);
                n.filters.clear();
                n.captures.clear();
                n.drop_all = false;
                n.agents.clear();
                n.tagger = Tagger::new();
                n.rng = derive_rng_indexed(run_seed, "agent", i);
                n.sync_rng = derive_rng_indexed(run_seed, "sync", i);
                n.channel_rng = derive_rng_indexed(run_seed, "channel", i);
                n.next_seq = 0;
                n.next_packet_seq = 0;
                n.next_tid = 0;
            }
        }
        self.time = self.time.max(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Test agent that records everything it sees and can auto-reply.
    struct Probe {
        log: Arc<Mutex<Vec<String>>>,
        reply_to: Option<Port>,
    }

    impl Agent for Probe {
        fn on_start(&mut self, ctx: &mut AgentCtx) {
            self.log
                .lock()
                .unwrap()
                .push(format!("start@{}", ctx.node()));
        }
        fn on_packet(&mut self, ctx: &mut AgentCtx, pkt: &Packet) {
            self.log.lock().unwrap().push(format!(
                "pkt@{} from {} t={}",
                ctx.node(),
                pkt.src,
                ctx.now()
            ));
            if let Some(port) = self.reply_to {
                ctx.send(Destination::Unicast(pkt.src), port, Payload::from("reply"));
            }
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx, token: u64) {
            self.log
                .lock()
                .unwrap()
                .push(format!("timer@{} tok={token}", ctx.node()));
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn quiet_model() -> LinkModel {
        LinkModel {
            base_loss: 0.0,
            ..LinkModel::default()
        }
    }

    fn sim(n_chain: usize, seed: u64) -> Simulator {
        let cfg = SimulatorConfig {
            link_model: quiet_model(),
            ..SimulatorConfig::perfect_clocks(seed)
        };
        Simulator::new(Topology::chain(n_chain), cfg)
    }

    #[test]
    fn unicast_delivery_over_multiple_hops() {
        let mut s = sim(4, 1);
        let log = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(3),
            99,
            Box::new(Probe {
                log: Arc::clone(&log),
                reply_to: None,
            }),
        );
        s.send_from(
            NodeId(0),
            99,
            Destination::Unicast(NodeId(3)),
            Payload::from("hi"),
        );
        s.run_until_idle(1_000);
        let entries = log.lock().unwrap();
        assert!(
            entries.iter().any(|e| e.starts_with("pkt@n3 from n0")),
            "{entries:?}"
        );
        // Relays captured Forwarded records.
        assert_eq!(s.captures(NodeId(1)).len(), 1);
        assert_eq!(s.captures(NodeId(2)).len(), 1);
        assert_eq!(s.stats().delivered, 1);
        assert_eq!(s.stats().forwarded, 2);
    }

    #[test]
    fn multicast_floods_to_all_subscribed() {
        let mut s = sim(5, 2);
        let log = Arc::new(Mutex::new(vec![]));
        for n in [1u16, 2, 4] {
            s.install_agent(
                NodeId(n),
                5353,
                Box::new(Probe {
                    log: Arc::clone(&log),
                    reply_to: None,
                }),
            );
        }
        s.send_from(
            NodeId(0),
            5353,
            Destination::Multicast,
            Payload::from("query"),
        );
        s.run_until_idle(10_000);
        let pkts = log
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.starts_with("pkt@"))
            .count();
        assert_eq!(pkts, 3, "{:?}", log.lock().unwrap());
        assert_eq!(s.stats().delivered, 3);
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut s = sim(3, 3);
        let log_a = Arc::new(Mutex::new(vec![]));
        let log_b = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(0),
            7,
            Box::new(Probe {
                log: log_a.clone(),
                reply_to: None,
            }),
        );
        s.install_agent(
            NodeId(2),
            7,
            Box::new(Probe {
                log: log_b.clone(),
                reply_to: Some(7),
            }),
        );
        s.send_from(
            NodeId(0),
            7,
            Destination::Unicast(NodeId(2)),
            Payload::from("ping"),
        );
        s.run_until_idle(1_000);
        assert!(log_b.lock().unwrap().iter().any(|e| e.contains("from n0")));
        assert!(
            log_a.lock().unwrap().iter().any(|e| e.contains("from n2")),
            "{:?}",
            log_a.lock().unwrap()
        );
    }

    #[test]
    fn timer_fires_and_cancellation_suppresses() {
        struct T {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl Agent for T {
            fn on_start(&mut self, ctx: &mut AgentCtx) {
                ctx.set_timer(SimDuration::from_millis(5), 1);
                ctx.set_timer(SimDuration::from_millis(10), 2);
                ctx.cancel_timer(1);
            }
            fn on_timer(&mut self, _ctx: &mut AgentCtx, token: u64) {
                self.fired.lock().unwrap().push(token);
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut s = sim(1, 4);
        let fired = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(0),
            1,
            Box::new(T {
                fired: Arc::clone(&fired),
            }),
        );
        s.run_until_idle(100);
        assert_eq!(*fired.lock().unwrap(), vec![2]);
    }

    #[test]
    fn interface_fault_blocks_transmission() {
        let mut s = sim(2, 5);
        let log = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(1),
            9,
            Box::new(Probe {
                log: Arc::clone(&log),
                reply_to: None,
            }),
        );
        s.install_filter(
            NodeId(0),
            FilterRule::InterfaceDown {
                direction: Direction::Transmit,
            },
        );
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(1)),
            Payload::from("x"),
        );
        s.run_until_idle(100);
        assert!(log.lock().unwrap().iter().all(|e| !e.starts_with("pkt@")));
        assert_eq!(s.stats().dropped_filter, 1);
        // Sender still captured its own attempt.
        assert_eq!(s.captures(NodeId(0)).len(), 1);
    }

    #[test]
    fn interface_fault_blocks_relay() {
        let mut s = sim(3, 6);
        let log = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(2),
            9,
            Box::new(Probe {
                log: Arc::clone(&log),
                reply_to: None,
            }),
        );
        s.install_filter(
            NodeId(1),
            FilterRule::InterfaceDown {
                direction: Direction::Both,
            },
        );
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(2)),
            Payload::from("x"),
        );
        s.run_until_idle(100);
        assert!(log.lock().unwrap().iter().all(|e| !e.starts_with("pkt@")));
    }

    #[test]
    fn drop_all_partitions_everything() {
        let mut s = sim(3, 7);
        let log = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(2),
            9,
            Box::new(Probe {
                log: Arc::clone(&log),
                reply_to: None,
            }),
        );
        s.set_drop_all_everywhere(true);
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(2)),
            Payload::from("x"),
        );
        s.run_until_idle(100);
        assert!(log.lock().unwrap().iter().all(|e| !e.starts_with("pkt@")));
        s.set_drop_all_everywhere(false);
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(2)),
            Payload::from("y"),
        );
        s.run_until_idle(100);
        assert_eq!(
            log.lock()
                .unwrap()
                .iter()
                .filter(|e| e.starts_with("pkt@"))
                .count(),
            1
        );
    }

    #[test]
    fn message_delay_fault_defers_delivery() {
        let mut s = sim(2, 8);
        let log = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(1),
            9,
            Box::new(Probe {
                log: Arc::clone(&log),
                reply_to: None,
            }),
        );
        s.install_filter(
            NodeId(0),
            FilterRule::MessageDelay {
                delay: SimDuration::from_secs(1),
                direction: Direction::Transmit,
            },
        );
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(1)),
            Payload::from("x"),
        );
        s.run_until(SimTime::from_nanos(900_000_000));
        assert!(
            log.lock().unwrap().iter().all(|e| !e.starts_with("pkt@")),
            "not yet delivered"
        );
        s.run_until_idle(100);
        assert_eq!(
            log.lock()
                .unwrap()
                .iter()
                .filter(|e| e.starts_with("pkt@"))
                .count(),
            1
        );
        assert!(s.now().as_secs_f64() >= 1.0);
    }

    #[test]
    fn deterministic_repetition_is_bit_exact() {
        fn run(seed: u64) -> (SimStats, Vec<String>) {
            let cfg = SimulatorConfig::default().with_seed(seed);
            let mut s = Simulator::new(Topology::grid(3, 3), cfg);
            let log = Arc::new(Mutex::new(vec![]));
            for n in 0..9u16 {
                s.install_agent(
                    NodeId(n),
                    5353,
                    Box::new(Probe {
                        log: Arc::clone(&log),
                        reply_to: None,
                    }),
                );
            }
            s.send_from(NodeId(0), 5353, Destination::Multicast, Payload::from("q"));
            s.send_from(NodeId(4), 5353, Destination::Multicast, Payload::from("r"));
            s.run_until_idle(100_000);
            let log = log.lock().unwrap().clone();
            (s.stats(), log)
        }
        let (s1, l1) = run(42);
        let (s2, l2) = run(42);
        assert_eq!(s1, s2);
        assert_eq!(l1, l2);
        let (s3, _) = run(43);
        assert!(s1 != s3 || s1.sent == s3.sent, "different seed may differ");
    }

    /// The tentpole property in miniature: identical transport outcome for
    /// every shard count. (The full cross-preset matrix lives in
    /// `tests/shard_equivalence.rs` at the workspace root.)
    #[test]
    fn shard_count_does_not_change_outcome() {
        fn run(shards: usize) -> (SimStats, u64, Vec<usize>, Vec<String>) {
            let cfg = SimulatorConfig::default().with_seed(99).with_shards(shards);
            let mut s = Simulator::new(Topology::grid(4, 4), cfg);
            let log = Arc::new(Mutex::new(vec![]));
            for n in 0..16u16 {
                s.install_agent(
                    NodeId(n),
                    5353,
                    Box::new(Probe {
                        log: Arc::clone(&log),
                        reply_to: None,
                    }),
                );
            }
            s.send_from(NodeId(0), 5353, Destination::Multicast, Payload::from("q"));
            s.send_from(NodeId(5), 5353, Destination::Unicast(NodeId(15)), Payload::from("u"));
            s.send_from(NodeId(10), 5353, Destination::Multicast, Payload::from("r"));
            s.run_until_idle(1_000_000);
            let caps: Vec<usize> = (0..16u16).map(|n| s.captures(NodeId(n)).len()).collect();
            let mut log = log.lock().unwrap().clone();
            // Callback interleaving across nodes is shard-dependent (two
            // agents at the same instant may run on different threads);
            // per-node order is not. Sort for a shard-invariant view.
            log.sort();
            (s.stats(), s.events_executed(), caps, log)
        }
        let serial = run(1);
        for shards in [2, 4, 8] {
            assert_eq!(run(shards), serial, "diverged at {shards} shards");
        }
    }

    #[test]
    fn shard_queues_partition_events() {
        let cfg = SimulatorConfig {
            link_model: quiet_model(),
            ..SimulatorConfig::perfect_clocks(5)
        }
        .with_shards(4);
        let mut s = Simulator::new(Topology::grid(4, 4), cfg);
        assert_eq!(s.shard_count(), 4);
        s.send_from(NodeId(0), 9, Destination::Multicast, Payload::from("q"));
        s.run_until_idle(100_000);
        let per_shard = s.events_per_shard();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().sum::<u64>(), s.events_executed());
        // A flood over a connected 4×4 grid reaches every stripe.
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
        assert!(s.mailbox_crossings() > 0);
        assert_eq!(s.pending_events(), 0);
    }

    #[test]
    fn packet_ids_compose_source_and_sequence() {
        let mut s = sim(2, 16);
        for _ in 0..2 {
            s.send_from(
                NodeId(1),
                9,
                Destination::Unicast(NodeId(0)),
                Payload::from("x"),
            );
        }
        let ids: Vec<u64> = s.captures(NodeId(1)).iter().map(|c| c.packet_id.0).collect();
        assert_eq!(ids, vec![(1 << 32), (1 << 32) + 1]);
    }

    #[test]
    fn clock_sync_measurement_bounded_error() {
        let cfg = SimulatorConfig::default().with_seed(11);
        let mut s = Simulator::new(Topology::chain(4), cfg.clone());
        s.run_until(SimTime::from_nanos(1_000_000_000));
        for n in 0..4u16 {
            let m = s.measure_sync(NodeId(n));
            let true_off = s.clock(NodeId(n)).instantaneous_offset_ns(s.now());
            assert!(
                (m.estimated_offset_ns - true_off).abs() <= cfg.max_sync_error_ns,
                "measurement error exceeds configured bound"
            );
        }
    }

    #[test]
    fn local_timestamps_use_node_clock() {
        let cfg = SimulatorConfig::default().with_seed(12);
        let mut s = Simulator::new(Topology::chain(2), cfg);
        s.run_until(SimTime::from_nanos(500_000_000));
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(1)),
            Payload::from("x"),
        );
        let sent = &s.captures(NodeId(0))[0];
        let expected = s
            .clock(NodeId(0))
            .local_time(SimTime::from_nanos(500_000_000));
        assert_eq!(sent.local_time, expected);
        // And with ±5 ms offsets the local reading differs from reference.
        assert_ne!(
            sent.local_time,
            SimTime::from_nanos(500_000_000),
            "{sent:?}"
        );
    }

    #[test]
    fn unroutable_unicast_is_dropped() {
        let topo = Topology::from_positions(vec![(0.0, 0.0), (100.0, 0.0)], 1.0);
        let cfg = SimulatorConfig {
            link_model: quiet_model(),
            ..SimulatorConfig::perfect_clocks(1)
        };
        let mut s = Simulator::new(topo, cfg);
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(1)),
            Payload::from("x"),
        );
        s.run_until_idle(10);
        assert_eq!(s.stats().dropped_loss, 1);
        assert_eq!(s.stats().delivered, 0);
    }

    #[test]
    fn loopback_unicast_delivers_locally() {
        let mut s = sim(1, 13);
        let log = Arc::new(Mutex::new(vec![]));
        s.install_agent(
            NodeId(0),
            9,
            Box::new(Probe {
                log: Arc::clone(&log),
                reply_to: None,
            }),
        );
        s.send_from(
            NodeId(0),
            9,
            Destination::Unicast(NodeId(0)),
            Payload::from("self"),
        );
        s.run_until_idle(10);
        assert_eq!(
            log.lock()
                .unwrap()
                .iter()
                .filter(|e| e.starts_with("pkt@"))
                .count(),
            1
        );
    }

    #[test]
    fn background_load_increases_loss() {
        fn delivered_ratio(load_kbps: f64) -> f64 {
            let cfg = SimulatorConfig::perfect_clocks(77);
            let mut s = Simulator::new(Topology::chain(2), cfg);
            if load_kbps > 0.0 {
                s.add_link_load(NodeId(0), NodeId(1), load_kbps);
            }
            let n = 2_000;
            for _ in 0..n {
                s.send_from(
                    NodeId(0),
                    9,
                    Destination::Unicast(NodeId(1)),
                    Payload::from("x"),
                );
            }
            s.run_until_idle(100_000);
            s.captures(NodeId(1)).len() as f64 / n as f64
        }
        let idle = delivered_ratio(0.0);
        let loaded = delivered_ratio(5_000.0);
        assert!(idle > 0.97, "idle delivery {idle}");
        assert!(loaded < idle - 0.2, "loaded {loaded} vs idle {idle}");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut s = sim(1, 14);
        s.run_until(SimTime::from_nanos(123));
        assert_eq!(s.now(), SimTime::from_nanos(123));
        s.run_for(SimDuration::from_nanos(7));
        assert_eq!(s.now(), SimTime::from_nanos(130));
    }

    #[test]
    fn publish_obs_emits_monotone_deltas() {
        excovery_obs::set_enabled(true);
        let reg = excovery_obs::global();
        let sent = reg.counter("netsim_packets_sent_total", &[]);
        let before = sent.value();
        let mut s = sim(3, 21);
        for _ in 0..5 {
            s.send_from(
                NodeId(0),
                9,
                Destination::Unicast(NodeId(2)),
                Payload::from("x"),
            );
        }
        s.run_until_idle(1_000);
        assert!(s.events_executed() > 0);
        s.publish_obs();
        assert_eq!(sent.value() - before, s.stats().sent);
        // Publishing again without new activity adds nothing: the
        // published counters are deltas, not absolute re-adds.
        s.publish_obs();
        assert_eq!(sent.value() - before, s.stats().sent);
    }

    #[test]
    fn tagger_ids_increment_per_source_node() {
        let mut s = sim(2, 15);
        for _ in 0..3 {
            s.send_from(
                NodeId(0),
                9,
                Destination::Unicast(NodeId(1)),
                Payload::from("x"),
            );
        }
        let tags: Vec<u16> = s.captures(NodeId(0)).iter().map(|c| c.tag).collect();
        assert_eq!(tags, vec![0, 1, 2]);
    }
}
