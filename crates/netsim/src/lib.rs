//! # excovery-netsim
//!
//! A deterministic discrete-event network simulator that stands in for the
//! wireless DES testbed used by the ExCovery paper (§IV-A, §VI).
//!
//! The paper's platform requirements are all provided here:
//!
//! * **Experiment management** — the simulator is driven in-process, which is
//!   the "separate and reliable communication channel" of a simulator
//!   platform; experiment control never shares the simulated medium.
//! * **Connection control** — interfaces can be activated/deactivated per
//!   direction, and packets can be dropped, delayed or restricted per peer
//!   through [`filter`] rules (the paper's fault-injection mechanisms).
//! * **Measurement** — every node records packet [`capture`]s with local
//!   (drifting) timestamps, a 16-bit incrementing packet [`tagger`] mirrors
//!   the prototype's IP-option tagger, per-node [`clock`]s expose a
//!   quantifiable synchronization error, and hop counts are measured from
//!   the [`topology`].
//!
//! The wireless mesh is modelled as a unit-disk graph; unicast packets are
//! routed along shortest paths and multicast packets flood the mesh with
//! duplicate suppression, both with per-link loss and delay that grow with
//! background load (produced by the [`traffic`] generator). All randomness
//! comes from a single seeded PRNG, so a run is exactly repeatable — the
//! property ExCovery demands from its platforms (§IV-C1).

pub mod campaign;
pub mod capture;
pub mod cbr;
pub mod clock;
pub mod event;
pub mod fasthash;
pub mod filter;
pub mod link;
pub(crate) mod mailbox;
pub mod packet;
pub mod params;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod tagger;
pub mod time;
pub mod topology;
pub mod traffic;

pub use campaign::{
    run_indexed, run_replications, run_replications_serial, shards_from_env, workers_from_env,
    CampaignConfig,
};
pub use shard::ShardMap;
pub use capture::CaptureRecord;
pub use clock::NodeClock;
pub use filter::{Direction, FilterRule};
pub use packet::{Destination, Packet, PacketId, Payload, Port};
pub use params::{EventName, EventParams, EventStr};
pub use sim::{Agent, AgentCtx, NodeId, Simulator, SimulatorConfig};
pub use time::{SimDuration, SimTime};
pub use topology::{RoutingTable, Topology};
