//! Structured error model of the execution engine.
//!
//! The engine distinguishes *where* an experiment failed, because the
//! paper's recovery concept (§IV-E) reacts differently per class: a node
//! fault marks the run and moves on, a transport failure or timeout means
//! the platform itself is unhealthy, and config/storage errors abort
//! before any run is spent.

use excovery_rpc::RpcError;

/// Error produced by [`ExperiMaster`](crate::master::ExperiMaster).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The description or engine configuration is invalid.
    Config(String),
    /// A node's procedure failed (the control channel itself is healthy).
    Node {
        /// Platform id of the failing node.
        node: String,
        /// The node-side failure.
        detail: String,
    },
    /// The control channel to a node failed (disconnect, I/O, codec).
    Transport {
        /// Platform id of the unreachable node.
        node: String,
        /// The transport-level failure.
        detail: String,
    },
    /// A call to a node exceeded its deadline.
    Timeout {
        /// Platform id of the unresponsive node.
        node: String,
        /// Method that was in flight.
        method: String,
        /// Deadline that elapsed, in milliseconds.
        after_ms: u64,
    },
    /// Level-2/level-3 storage failed.
    Storage(String),
    /// Anything else that fails mid-run (process resolution, plugins).
    Run(String),
}

impl EngineError {
    /// Classifies a per-node RPC failure: server-side faults become
    /// [`EngineError::Node`], elapsed deadlines [`EngineError::Timeout`],
    /// everything else [`EngineError::Transport`].
    pub fn from_rpc(node: impl Into<String>, err: RpcError) -> Self {
        let node = node.into();
        match err {
            RpcError::Timeout { method, after_ms } => EngineError::Timeout {
                node,
                method,
                after_ms,
            },
            e if e.is_server_side() => EngineError::Node {
                node,
                detail: e.to_string(),
            },
            e => EngineError::Transport {
                node,
                detail: e.to_string(),
            },
        }
    }

    /// The platform id involved, if the error is attributable to one node.
    pub fn node(&self) -> Option<&str> {
        match self {
            EngineError::Node { node, .. }
            | EngineError::Transport { node, .. }
            | EngineError::Timeout { node, .. } => Some(node),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Config(m) => write!(f, "configuration error: {m}"),
            EngineError::Node { node, detail } => {
                write!(f, "node '{node}' failed: {detail}")
            }
            EngineError::Transport { node, detail } => {
                write!(f, "control channel to '{node}' failed: {detail}")
            }
            EngineError::Timeout {
                node,
                method,
                after_ms,
            } => {
                write!(
                    f,
                    "node '{node}' did not answer '{method}' within {after_ms} ms"
                )
            }
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Run(m) => write!(f, "run error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Downstream code (CLI, examples, harnesses) runs in `Result<_, String>`
/// contexts; keep `?` working there.
impl From<EngineError> for String {
    fn from(e: EngineError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_rpc::Fault;

    #[test]
    fn rpc_classification() {
        let e = EngineError::from_rpc("n1", RpcError::Fault(Fault::new(5, "boom")));
        assert!(matches!(e, EngineError::Node { .. }), "{e:?}");
        assert_eq!(e.node(), Some("n1"));

        let e = EngineError::from_rpc(
            "n2",
            RpcError::Timeout {
                method: "run_init".into(),
                after_ms: 250,
            },
        );
        assert!(
            matches!(&e, EngineError::Timeout { method, .. } if method == "run_init"),
            "{e:?}"
        );

        let e = EngineError::from_rpc("n3", RpcError::Disconnected("gone".into()));
        assert!(matches!(e, EngineError::Transport { .. }), "{e:?}");
    }

    #[test]
    fn string_conversion_keeps_question_mark_working() {
        fn stringy() -> Result<(), String> {
            Err(EngineError::Config("bad".into()))?;
            Ok(())
        }
        assert_eq!(stringy().unwrap_err(), "configuration error: bad");
    }
}
