//! The process interpreter (paper §IV-C2).
//!
//! Every process of the description — experiment processes on actor nodes,
//! manipulation (fault) processes, and environment processes — is a
//! sequence of actions executed step by step. Processes run concurrently;
//! the master advances each of them cooperatively between simulator steps,
//! which replaces the prototype's per-process Python threads with a
//! deterministic schedule while preserving the paper's flow-control
//! semantics:
//!
//! * `wait_for_time` — fixed delay,
//! * `wait_for_event` — blocks until the event log satisfies the selector
//!   (only events after the last `wait_marker`), optional timeout after
//!   which the process simply continues,
//! * `wait_marker` — stamps the position in the event stream,
//! * `event_flag` — emits a local event for other processes to depend on.

use crate::faults::{parse_fault_invoke, FaultInvoke, ParsedFault};
use excovery_desc::factors::LevelValue;
use excovery_desc::process::{EventSelector, ProcessAction, ValueRef};
use excovery_netsim::{SimDuration, SimTime};
use excovery_rpc::Value;
use std::collections::HashMap;

/// Execution state of one process.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcState {
    /// The next action can execute.
    Ready,
    /// Sleeping until an absolute instant (`wait_for_time`).
    WaitingTime {
        /// Wake-up instant.
        until: SimTime,
    },
    /// Blocked on an event selector (`wait_for_event`).
    WaitingEvent {
        /// The awaited condition.
        selector: EventSelector,
        /// Event-log position the wait considers events from.
        since: u64,
        /// Absolute deadline, if a timeout was given.
        deadline: Option<SimTime>,
    },
    /// All actions executed.
    Done,
    /// Aborted with an error.
    Failed(String),
}

/// One executable process instance.
#[derive(Debug, Clone)]
pub struct ProcessInstance {
    /// Display label, e.g. `actor1[0]@t9-105` or `env#0`.
    pub label: String,
    /// Platform node the process runs on; `None` for environment processes.
    pub platform_id: Option<String>,
    /// Role string (`SM`, `SU`, `SCM`) for `sd_init`, from the actor name.
    pub role: Option<String>,
    /// The action sequence.
    pub actions: Vec<ProcessAction>,
    /// Program counter.
    pub pc: usize,
    /// Current state.
    pub state: ProcState,
    /// Event-log marker set by the last `wait_marker` (0 = run start).
    pub marker: u64,
    /// Open fault handles by kind (for `fault_<kind>_stop`).
    pub fault_handles: HashMap<String, Vec<i32>>,
}

impl ProcessInstance {
    /// Creates a ready process.
    pub fn new(
        label: impl Into<String>,
        platform_id: Option<String>,
        role: Option<String>,
        actions: Vec<ProcessAction>,
    ) -> Self {
        Self {
            label: label.into(),
            platform_id,
            role,
            actions,
            pc: 0,
            state: ProcState::Ready,
            marker: 0,
            fault_handles: HashMap::new(),
        }
    }

    /// True once the process finished or failed.
    pub fn finished(&self) -> bool {
        matches!(self.state, ProcState::Done | ProcState::Failed(_))
    }
}

/// The environment the interpreter executes against — implemented by the
/// ExperiMaster (and by a mock in tests).
pub trait ExecCtx {
    /// Current reference time.
    fn now(&self) -> SimTime;
    /// Current event-log position (for `wait_marker`).
    fn marker(&self) -> u64;
    /// Resolves a value reference against the current treatment.
    fn resolve(&self, v: &ValueRef) -> Option<LevelValue>;
    /// True if the selector is satisfied by events at/after `since`.
    fn satisfied(&self, selector: &EventSelector, since: u64) -> bool;
    /// Calls a NodeManager procedure.
    fn call_node(
        &mut self,
        platform_id: &str,
        method: &str,
        params: Vec<Value>,
    ) -> Result<Value, String>;
    /// Executes an environment action (traffic, drop-all, plugins).
    fn env_invoke(
        &mut self,
        name: &str,
        params: &HashMap<String, LevelValue>,
    ) -> Result<(), String>;
    /// Emits a master-side event (environment `event_flag`).
    fn emit_master_event(&mut self, name: &str);
    /// Schedules a windowed fault (duration/rate envelope) on a node.
    fn schedule_fault(
        &mut self,
        platform_id: &str,
        fault: &ParsedFault,
        window: (SimTime, SimTime),
    ) -> Result<(), String>;
}

/// Default service type used by SD actions without an explicit `stype`.
pub const DEFAULT_STYPE: &str = "_exp._tcp";

/// Advances `proc` as far as possible without blocking. Returns `true` if
/// any action was executed (progress was made).
pub fn step(proc: &mut ProcessInstance, ctx: &mut dyn ExecCtx) -> bool {
    let mut progressed = false;
    loop {
        // Re-evaluate blocked states first.
        match &proc.state {
            ProcState::Done | ProcState::Failed(_) => return progressed,
            ProcState::WaitingTime { until } => {
                if ctx.now() >= *until {
                    proc.state = ProcState::Ready;
                } else {
                    return progressed;
                }
            }
            ProcState::WaitingEvent {
                selector,
                since,
                deadline,
            } => {
                let satisfied = ctx.satisfied(selector, *since);
                let timed_out = deadline.is_some_and(|d| ctx.now() >= d);
                if satisfied || timed_out {
                    // A timeout is not an error: the paper's SU proceeds to
                    // flag `done` either way (Fig. 10).
                    proc.state = ProcState::Ready;
                } else {
                    return progressed;
                }
            }
            ProcState::Ready => {}
        }
        if proc.pc >= proc.actions.len() {
            proc.state = ProcState::Done;
            return progressed;
        }
        let action = proc.actions[proc.pc].clone();
        proc.pc += 1;
        progressed = true;
        if let Err(e) = execute(proc, &action, ctx) {
            proc.state = ProcState::Failed(format!("{}: action {}: {e}", proc.label, proc.pc - 1));
            return progressed;
        }
    }
}

fn resolve_params(
    params: &[(String, ValueRef)],
    ctx: &dyn ExecCtx,
) -> Result<HashMap<String, LevelValue>, String> {
    let mut out = HashMap::new();
    for (k, v) in params {
        let resolved = ctx
            .resolve(v)
            .ok_or_else(|| format!("parameter '{k}': unresolvable reference {v}"))?;
        out.insert(k.clone(), resolved);
    }
    Ok(out)
}

fn execute(
    proc: &mut ProcessInstance,
    action: &ProcessAction,
    ctx: &mut dyn ExecCtx,
) -> Result<(), String> {
    match action {
        ProcessAction::WaitForTime { seconds } => {
            let secs = ctx
                .resolve(seconds)
                .and_then(|v| v.as_float())
                .ok_or("wait_for_time without numeric duration")?;
            proc.state = ProcState::WaitingTime {
                until: ctx.now() + SimDuration::from_secs_f64(secs),
            };
            Ok(())
        }
        ProcessAction::WaitMarker => {
            proc.marker = ctx.marker();
            Ok(())
        }
        ProcessAction::WaitForEvent(selector) => {
            let deadline = match &selector.timeout_s {
                None => None,
                Some(t) => {
                    let secs = ctx
                        .resolve(t)
                        .and_then(|v| v.as_float())
                        .ok_or("wait_for_event timeout is not numeric")?;
                    Some(ctx.now() + SimDuration::from_secs_f64(secs))
                }
            };
            proc.state = ProcState::WaitingEvent {
                selector: selector.clone(),
                since: proc.marker,
                deadline,
            };
            Ok(())
        }
        ProcessAction::EventFlag { value } => match &proc.platform_id {
            Some(pid) => {
                ctx.call_node(pid, "event_flag", vec![Value::str(value.clone())])?;
                Ok(())
            }
            None => {
                ctx.emit_master_event(value);
                Ok(())
            }
        },
        ProcessAction::Invoke { name, params } => {
            let resolved = resolve_params(params, ctx)?;
            // Fault actions first: they exist on node processes only.
            if let Some(parsed) = parse_fault_invoke(name, &resolved) {
                let pid = proc
                    .platform_id
                    .clone()
                    .ok_or("fault actions require a node-bound process")?;
                return match parsed? {
                    FaultInvoke::Start(fault) => {
                        match fault.envelope.activation_window(ctx.now()) {
                            Some(window) => ctx.schedule_fault(&pid, &fault, window),
                            None => {
                                let handle = ctx
                                    .call_node(&pid, "fault_start", vec![fault.spec.clone()])?
                                    .as_int()
                                    .ok_or("fault_start returned no handle")?;
                                proc.fault_handles
                                    .entry(fault.kind.clone())
                                    .or_default()
                                    .push(handle);
                                Ok(())
                            }
                        }
                    }
                    FaultInvoke::Stop(kind) => {
                        let handle = proc
                            .fault_handles
                            .get_mut(&kind)
                            .and_then(Vec::pop)
                            .ok_or_else(|| format!("no active '{kind}' fault to stop"))?;
                        ctx.call_node(
                            proc.platform_id.as_deref().unwrap(),
                            "fault_stop",
                            vec![Value::Int(handle)],
                        )?;
                        Ok(())
                    }
                };
            }
            match &proc.platform_id {
                Some(pid) => {
                    let pid = pid.clone();
                    invoke_node_action(proc, &pid, name, &resolved, ctx)
                }
                None => ctx.env_invoke(name, &resolved),
            }
        }
    }
}

fn invoke_node_action(
    proc: &ProcessInstance,
    pid: &str,
    name: &str,
    params: &HashMap<String, LevelValue>,
    ctx: &mut dyn ExecCtx,
) -> Result<(), String> {
    let stype = params
        .get("stype")
        .and_then(|v| v.as_text().map(str::to_string))
        .unwrap_or_else(|| DEFAULT_STYPE.to_string());
    match name {
        "sd_init" => {
            let role = params
                .get("role")
                .and_then(|v| v.as_text().map(str::to_string))
                .or_else(|| proc.role.clone())
                .ok_or("sd_init: no role (set the actor's name to SM/SU/SCM)")?;
            ctx.call_node(pid, "sd_init", vec![Value::str(role)])?;
        }
        "sd_exit" => {
            ctx.call_node(pid, "sd_exit", vec![])?;
        }
        "sd_start_search" => {
            ctx.call_node(pid, "sd_start_search", vec![Value::str(stype)])?;
        }
        "sd_stop_search" => {
            ctx.call_node(pid, "sd_stop_search", vec![Value::str(stype)])?;
        }
        "sd_start_publish" => {
            ctx.call_node(pid, "sd_start_publish", vec![Value::str(stype)])?;
        }
        "sd_stop_publish" => {
            ctx.call_node(pid, "sd_stop_publish", vec![Value::str(stype)])?;
        }
        "sd_update_publication" => {
            let port = params
                .get("port")
                .and_then(LevelValue::as_int)
                .unwrap_or(80);
            ctx.call_node(
                pid,
                "sd_update_publication",
                vec![Value::str(stype), Value::Int(port as i32)],
            )?;
        }
        "drop_all_start" => {
            ctx.call_node(pid, "drop_all", vec![Value::Bool(true)])?;
        }
        "drop_all_stop" => {
            ctx.call_node(pid, "drop_all", vec![Value::Bool(false)])?;
        }
        // Unknown node actions go to the node as generic calls — the
        // paper's generic function / plugin hook.
        other => {
            let args: Vec<Value> = params
                .iter()
                .map(|(k, v)| {
                    Value::Struct(vec![
                        ("name".into(), Value::str(k.clone())),
                        ("value".into(), Value::str(v.to_string())),
                    ])
                })
                .collect();
            ctx.call_node(pid, other, args)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mock context recording calls and scripting event satisfaction.
    struct Mock {
        now: SimTime,
        calls: Vec<String>,
        satisfied_events: Vec<String>,
        marker: u64,
        fail_call: bool,
    }

    impl Mock {
        fn new() -> Self {
            Self {
                now: SimTime::ZERO,
                calls: vec![],
                satisfied_events: vec![],
                marker: 0,
                fail_call: false,
            }
        }
    }

    impl ExecCtx for Mock {
        fn now(&self) -> SimTime {
            self.now
        }
        fn marker(&self) -> u64 {
            self.marker
        }
        fn resolve(&self, v: &ValueRef) -> Option<LevelValue> {
            match v {
                ValueRef::Lit(l) => Some(l.clone()),
                ValueRef::FactorRef(id) if id == "fact_known" => Some(LevelValue::Int(42)),
                ValueRef::FactorRef(_) => None,
            }
        }
        fn satisfied(&self, selector: &EventSelector, _since: u64) -> bool {
            self.satisfied_events.contains(&selector.event)
        }
        fn call_node(
            &mut self,
            platform_id: &str,
            method: &str,
            params: Vec<Value>,
        ) -> Result<Value, String> {
            if self.fail_call {
                return Err("injected failure".into());
            }
            self.calls
                .push(format!("{platform_id}:{method}({})", params.len()));
            Ok(Value::Int(7)) // doubles as a fault handle
        }
        fn env_invoke(
            &mut self,
            name: &str,
            params: &HashMap<String, LevelValue>,
        ) -> Result<(), String> {
            self.calls.push(format!("env:{name}({})", params.len()));
            Ok(())
        }
        fn emit_master_event(&mut self, name: &str) {
            self.calls.push(format!("flag:{name}"));
        }
        fn schedule_fault(
            &mut self,
            platform_id: &str,
            fault: &ParsedFault,
            window: (SimTime, SimTime),
        ) -> Result<(), String> {
            self.calls.push(format!(
                "window:{platform_id}:{}:{}..{}",
                fault.kind,
                window.0.as_nanos(),
                window.1.as_nanos()
            ));
            Ok(())
        }
    }

    fn node_proc(actions: Vec<ProcessAction>) -> ProcessInstance {
        ProcessInstance::new("p", Some("t9-157".into()), Some("SM".into()), actions)
    }

    #[test]
    fn sm_process_runs_to_wait() {
        // Fig. 9: init, publish, wait for done, stop, exit.
        let mut p = node_proc(vec![
            ProcessAction::invoke("sd_init"),
            ProcessAction::invoke("sd_start_publish"),
            ProcessAction::WaitForEvent(EventSelector::named("done")),
            ProcessAction::invoke("sd_stop_publish"),
            ProcessAction::invoke("sd_exit"),
        ]);
        let mut ctx = Mock::new();
        assert!(step(&mut p, &mut ctx));
        assert_eq!(
            ctx.calls,
            vec!["t9-157:sd_init(1)", "t9-157:sd_start_publish(1)"]
        );
        assert!(matches!(p.state, ProcState::WaitingEvent { .. }));
        // "done" appears → process completes.
        ctx.satisfied_events.push("done".into());
        assert!(step(&mut p, &mut ctx));
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls.len(), 4);
        assert!(ctx.calls[3].contains("sd_exit"));
    }

    #[test]
    fn wait_for_time_blocks_until_deadline() {
        let mut p = node_proc(vec![
            ProcessAction::WaitForTime {
                seconds: ValueRef::int(2),
            },
            ProcessAction::invoke("sd_init"),
        ]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert!(matches!(p.state, ProcState::WaitingTime { .. }));
        assert!(ctx.calls.is_empty());
        ctx.now = SimTime::from_nanos(1_999_999_999);
        assert!(!step(&mut p, &mut ctx), "not yet");
        ctx.now = SimTime::from_nanos(2_000_000_000);
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls.len(), 1);
    }

    #[test]
    fn wait_for_event_timeout_proceeds() {
        let mut p = node_proc(vec![
            ProcessAction::WaitForEvent(
                EventSelector::named("never").with_timeout(ValueRef::int(30)),
            ),
            ProcessAction::EventFlag {
                value: "done".into(),
            },
        ]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert!(matches!(
            p.state,
            ProcState::WaitingEvent {
                deadline: Some(_),
                ..
            }
        ));
        ctx.now = SimTime::from_nanos(30_000_000_000);
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls, vec!["t9-157:event_flag(1)"]);
    }

    #[test]
    fn wait_marker_updates_marker() {
        let mut p = node_proc(vec![
            ProcessAction::WaitMarker,
            ProcessAction::WaitForEvent(EventSelector::named("e")),
        ]);
        let mut ctx = Mock::new();
        ctx.marker = 17;
        step(&mut p, &mut ctx);
        assert_eq!(p.marker, 17);
        match &p.state {
            ProcState::WaitingEvent { since, .. } => assert_eq!(*since, 17),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn env_process_dispatches_env_actions_and_flags() {
        let mut p = ProcessInstance::new(
            "env#0",
            None,
            None,
            vec![
                ProcessAction::EventFlag {
                    value: "ready_to_init".into(),
                },
                ProcessAction::invoke_with(
                    "env_traffic_start",
                    [("bw".to_string(), ValueRef::factor("fact_known"))],
                ),
                ProcessAction::WaitForEvent(EventSelector::named("done")),
                ProcessAction::invoke("env_traffic_stop"),
            ],
        );
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert_eq!(
            ctx.calls,
            vec!["flag:ready_to_init", "env:env_traffic_start(1)"]
        );
        ctx.satisfied_events.push("done".into());
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls[2], "env:env_traffic_stop(0)");
    }

    #[test]
    fn unresolvable_factor_fails_process() {
        let mut p = node_proc(vec![ProcessAction::invoke_with(
            "sd_start_search",
            [("stype".to_string(), ValueRef::factor("missing"))],
        )]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert!(matches!(p.state, ProcState::Failed(_)), "{:?}", p.state);
    }

    #[test]
    fn rpc_failure_fails_process() {
        let mut p = node_proc(vec![ProcessAction::invoke("sd_init")]);
        let mut ctx = Mock::new();
        ctx.fail_call = true;
        step(&mut p, &mut ctx);
        match &p.state {
            ProcState::Failed(msg) => assert!(msg.contains("injected failure")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbounded_fault_start_and_stop() {
        let mut p = node_proc(vec![
            ProcessAction::invoke_with(
                "fault_message_loss_start",
                [(
                    "probability".to_string(),
                    ValueRef::Lit(LevelValue::Float(0.3)),
                )],
            ),
            ProcessAction::invoke("fault_message_loss_stop"),
        ]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(
            ctx.calls,
            vec!["t9-157:fault_start(1)", "t9-157:fault_stop(1)"]
        );
        assert!(p.fault_handles["message_loss"].is_empty());
    }

    #[test]
    fn stopping_inactive_fault_fails() {
        let mut p = node_proc(vec![ProcessAction::invoke("fault_interface_stop")]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert!(matches!(p.state, ProcState::Failed(_)));
    }

    #[test]
    fn windowed_fault_is_scheduled_not_started() {
        let mut p = node_proc(vec![ProcessAction::invoke_with(
            "fault_interface_start",
            [
                ("duration".to_string(), ValueRef::int(10)),
                ("rate".to_string(), ValueRef::Lit(LevelValue::Float(0.5))),
                ("randomseed".to_string(), ValueRef::int(3)),
            ],
        )]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls.len(), 1);
        assert!(
            ctx.calls[0].starts_with("window:t9-157:interface:"),
            "{:?}",
            ctx.calls
        );
    }

    #[test]
    fn sd_init_uses_role_param_override() {
        let mut p = node_proc(vec![ProcessAction::invoke_with(
            "sd_init",
            [("role".to_string(), ValueRef::text("SCM"))],
        )]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls, vec!["t9-157:sd_init(1)"]);
    }

    #[test]
    fn unknown_node_action_is_forwarded_generically() {
        let mut p = node_proc(vec![ProcessAction::invoke_with(
            "my_plugin_measure",
            [("gain".to_string(), ValueRef::int(3))],
        )]);
        let mut ctx = Mock::new();
        step(&mut p, &mut ctx);
        assert_eq!(p.state, ProcState::Done);
        assert_eq!(ctx.calls, vec!["t9-157:my_plugin_measure(1)"]);
    }
}
