//! Binding of abstract nodes to platform nodes to simulator nodes.
//!
//! Three naming layers exist in an ExCovery experiment (paper §IV-E):
//! *abstract nodes* (`A`, `B`) referenced by the description, *platform
//! nodes* (`t9-157`, identified by host name and address) and — on our
//! simulated platform — the simulator's [`NodeId`]s. [`PlatformBinding`]
//! fixes the platform↔simulator mapping for a whole experiment;
//! [`ResolvedActors`] resolves actor roles to concrete nodes per treatment
//! (the actor-node-map factor can change between blocks).

use excovery_desc::factors::LevelValue;
use excovery_desc::plan::Treatment;
use excovery_desc::platform::PlatformSpec;
use excovery_desc::process::{InstanceSelector, NodeSelector};
use excovery_desc::ExperimentDescription;
use excovery_netsim::NodeId;
use std::collections::HashMap;

/// Fixed mapping between platform node ids and simulator nodes.
#[derive(Debug, Clone)]
pub struct PlatformBinding {
    by_platform_id: HashMap<String, NodeId>,
    by_sim_node: HashMap<NodeId, String>,
    by_abstract: HashMap<String, String>,
    env_platform_ids: Vec<String>,
}

impl PlatformBinding {
    /// Binds the platform spec onto simulator nodes `0..n` in `all_nodes`
    /// order (actors first, then environment nodes). The simulator may
    /// have more nodes than the platform lists; the surplus are unmanaged
    /// relays.
    pub fn new(spec: &PlatformSpec, sim_node_count: usize) -> Result<Self, String> {
        if spec.len() > sim_node_count {
            return Err(format!(
                "platform lists {} nodes but the simulator has only {sim_node_count}",
                spec.len()
            ));
        }
        let mut by_platform_id = HashMap::new();
        let mut by_sim_node = HashMap::new();
        let mut by_abstract = HashMap::new();
        let mut env_platform_ids = Vec::new();
        for (i, node) in spec.all_nodes().enumerate() {
            let sim = NodeId(i as u16);
            if by_platform_id.insert(node.id.clone(), sim).is_some() {
                return Err(format!("duplicate platform node id '{}'", node.id));
            }
            by_sim_node.insert(sim, node.id.clone());
            if let Some(a) = &node.abstract_id {
                by_abstract.insert(a.clone(), node.id.clone());
            } else {
                env_platform_ids.push(node.id.clone());
            }
        }
        Ok(Self {
            by_platform_id,
            by_sim_node,
            by_abstract,
            env_platform_ids,
        })
    }

    /// Simulator node of a platform node id.
    pub fn sim_node(&self, platform_id: &str) -> Option<NodeId> {
        self.by_platform_id.get(platform_id).copied()
    }

    /// Platform id of a simulator node (unmanaged nodes have none).
    pub fn platform_id(&self, node: NodeId) -> Option<&str> {
        self.by_sim_node.get(&node).map(String::as_str)
    }

    /// Platform id realizing an abstract node.
    pub fn platform_of_abstract(&self, abstract_id: &str) -> Option<&str> {
        self.by_abstract.get(abstract_id).map(String::as_str)
    }

    /// Simulator node realizing an abstract node.
    pub fn sim_of_abstract(&self, abstract_id: &str) -> Option<NodeId> {
        self.platform_of_abstract(abstract_id)
            .and_then(|p| self.sim_node(p))
    }

    /// All managed platform ids (actors then environment nodes).
    pub fn managed_platform_ids(&self) -> Vec<&str> {
        let mut ids: Vec<(&NodeId, &String)> = self.by_sim_node.iter().collect();
        ids.sort_by_key(|(n, _)| n.0);
        ids.into_iter().map(|(_, s)| s.as_str()).collect()
    }

    /// All managed simulator nodes, ascending.
    pub fn managed_sim_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.by_sim_node.keys().copied().collect();
        nodes.sort();
        nodes
    }

    /// Environment (non-actor) platform ids.
    pub fn env_platform_ids(&self) -> &[String] {
        &self.env_platform_ids
    }
}

/// Per-treatment resolution of actor roles to nodes.
#[derive(Debug, Clone, Default)]
pub struct ResolvedActors {
    // actor id -> instances in order -> (abstract id, platform id, sim node)
    map: HashMap<String, Vec<(String, String, NodeId)>>,
}

impl ResolvedActors {
    /// Resolves the actor map of a treatment.
    ///
    /// For every actor process of `desc`, its `nodes_factor` is looked up
    /// in the treatment; the actor-map level assigns abstract nodes to the
    /// role, which the binding maps through to simulator nodes.
    pub fn resolve(
        desc: &ExperimentDescription,
        treatment: &Treatment,
        binding: &PlatformBinding,
    ) -> Result<Self, String> {
        let mut map: HashMap<String, Vec<(String, String, NodeId)>> = HashMap::new();
        for p in &desc.node_processes {
            let Some(factor_id) = &p.nodes_factor else {
                continue; // process without node mapping: resolved empty
            };
            let level = treatment
                .level(factor_id)
                .or_else(|| {
                    // Blocking single-level factors may be outside the
                    // treatment only if they have no levels at all.
                    desc.factors
                        .factor(factor_id)
                        .and_then(|f| f.levels.first())
                })
                .ok_or_else(|| format!("treatment lacks factor '{factor_id}'"))?;
            let LevelValue::ActorMap(assignments) = level else {
                return Err(format!("factor '{factor_id}' is not an actor map"));
            };
            let Some(assignment) = assignments.iter().find(|a| a.actor_id == p.actor_id) else {
                return Err(format!("actor map does not assign '{}'", p.actor_id));
            };
            let mut instances = Vec::new();
            for abstract_id in &assignment.instances {
                let platform = binding
                    .platform_of_abstract(abstract_id)
                    .ok_or_else(|| format!("abstract node '{abstract_id}' unmapped"))?;
                let sim = binding
                    .sim_node(platform)
                    .ok_or_else(|| format!("platform node '{platform}' unbound"))?;
                instances.push((abstract_id.clone(), platform.to_string(), sim));
            }
            map.insert(p.actor_id.clone(), instances);
        }
        Ok(Self { map })
    }

    /// Instances of an actor role: `(abstract_id, platform_id, sim_node)`.
    pub fn instances(&self, actor_id: &str) -> &[(String, String, NodeId)] {
        self.map.get(actor_id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Platform ids selected by a [`NodeSelector`].
    pub fn select_platform_ids(&self, sel: &NodeSelector) -> Vec<String> {
        let instances = self.instances(&sel.actor);
        match &sel.instance {
            InstanceSelector::All => instances.iter().map(|(_, p, _)| p.clone()).collect(),
            InstanceSelector::Index(i) => instances
                .get(*i as usize)
                .map(|(_, p, _)| vec![p.clone()])
                .unwrap_or_default(),
        }
    }

    /// All acting simulator nodes across roles (for traffic `choice`).
    pub fn acting_sim_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.map.values().flatten().map(|(_, _, n)| *n).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_desc::ExperimentDescription;

    fn setup() -> (ExperimentDescription, PlatformBinding) {
        let desc = ExperimentDescription::paper_two_party_sd(1);
        let binding = PlatformBinding::new(&desc.platform, 9).unwrap();
        (desc, binding)
    }

    #[test]
    fn binding_assigns_sequential_sim_nodes() {
        let (_, b) = setup();
        assert_eq!(b.sim_node("t9-157"), Some(NodeId(0)));
        assert_eq!(b.sim_node("t9-105"), Some(NodeId(1)));
        assert_eq!(b.sim_node("t9-004"), Some(NodeId(2)));
        assert_eq!(b.platform_id(NodeId(0)), Some("t9-157"));
        assert_eq!(b.platform_id(NodeId(8)), None, "unmanaged surplus node");
        assert_eq!(b.sim_node("nope"), None);
    }

    #[test]
    fn abstract_mapping_chains_through() {
        let (_, b) = setup();
        assert_eq!(b.platform_of_abstract("A"), Some("t9-157"));
        assert_eq!(b.sim_of_abstract("B"), Some(NodeId(1)));
        assert_eq!(b.sim_of_abstract("Z"), None);
    }

    #[test]
    fn too_small_simulator_is_rejected() {
        let (desc, _) = setup();
        assert!(PlatformBinding::new(&desc.platform, 3).is_err());
    }

    #[test]
    fn managed_lists() {
        let (_, b) = setup();
        assert_eq!(b.managed_sim_nodes().len(), 6);
        assert_eq!(b.managed_platform_ids()[0], "t9-157");
        assert_eq!(b.env_platform_ids().len(), 4);
    }

    #[test]
    fn resolve_actors_for_paper_description() {
        let (desc, b) = setup();
        let plan = desc.plan();
        let resolved = ResolvedActors::resolve(&desc, &plan.runs[0].treatment, &b).unwrap();
        let sm = resolved.instances("actor0");
        assert_eq!(sm.len(), 1);
        assert_eq!(sm[0], ("A".to_string(), "t9-157".to_string(), NodeId(0)));
        let su = resolved.instances("actor1");
        assert_eq!(su[0].2, NodeId(1));
        assert_eq!(resolved.acting_sim_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn selector_resolution() {
        let (desc, b) = setup();
        let plan = desc.plan();
        let resolved = ResolvedActors::resolve(&desc, &plan.runs[0].treatment, &b).unwrap();
        assert_eq!(
            resolved.select_platform_ids(&NodeSelector::all("actor0")),
            vec!["t9-157"]
        );
        assert_eq!(
            resolved.select_platform_ids(&NodeSelector::instance("actor1", 0)),
            vec!["t9-105"]
        );
        assert!(resolved
            .select_platform_ids(&NodeSelector::instance("actor1", 5))
            .is_empty());
        assert!(resolved
            .select_platform_ids(&NodeSelector::all("ghost"))
            .is_empty());
    }

    #[test]
    fn missing_platform_mapping_errors() {
        let (mut desc, _) = setup();
        desc.platform
            .actor_nodes
            .retain(|n| n.abstract_id.as_deref() != Some("B"));
        let binding = PlatformBinding::new(&desc.platform, 9).unwrap();
        let plan = desc.plan();
        assert!(ResolvedActors::resolve(&desc, &plan.runs[0].treatment, &binding).is_err());
    }
}
