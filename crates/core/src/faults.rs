//! Fault-injection envelopes and action parsing (paper §IV-D).
//!
//! "Fault injection processes can have common parameters describing their
//! temporal behavior: *duration*, *rate* and *randomseed*. The duration
//! specifies the amount of time a fault should be applied to the target.
//! The rate specifies a percentage of a given duration in which a fault is
//! active. The fault is active in one continuous block, its activation
//! time is chosen randomly using the randomseed."

use excovery_desc::factors::LevelValue;
use excovery_netsim::rng::derive_rng;
use excovery_netsim::{SimDuration, SimTime};
use excovery_rpc::Value;
use rand::Rng;
use std::collections::HashMap;

/// The temporal envelope of a fault action.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEnvelope {
    /// Total span the fault is associated with; `None` = until stopped.
    pub duration: Option<SimDuration>,
    /// Fraction of `duration` the fault is active, in `(0, 1]`.
    pub rate: f64,
    /// Seed choosing the position of the active block.
    pub randomseed: u64,
}

impl Default for FaultEnvelope {
    fn default() -> Self {
        Self {
            duration: None,
            rate: 1.0,
            randomseed: 0,
        }
    }
}

impl FaultEnvelope {
    /// Computes the activation window relative to `now`.
    ///
    /// Returns `None` for unbounded faults (explicit stop required).
    /// With `rate < 1`, the active block of length `rate × duration`
    /// starts at a seeded-random offset within the duration.
    ///
    /// All arithmetic is checked: a window that would wrap past the end of
    /// representable simulated time (~584 years) is rejected as `None`
    /// rather than silently wrapping to the experiment epoch.
    pub fn activation_window(&self, now: SimTime) -> Option<(SimTime, SimTime)> {
        let duration = self.duration?;
        let rate = self.rate.clamp(0.0, 1.0);
        let active = duration.mul_f64(rate);
        let slack = duration.saturating_sub(active);
        let offset = if slack > SimDuration::ZERO {
            let mut rng = derive_rng(self.randomseed, "fault_window");
            SimDuration::from_nanos(rng.gen_range(0..=slack.as_nanos()))
        } else {
            SimDuration::ZERO
        };
        let start_ns = now.as_nanos().checked_add(offset.as_nanos())?;
        let stop_ns = start_ns.checked_add(active.as_nanos())?;
        Some((SimTime::from_nanos(start_ns), SimTime::from_nanos(stop_ns)))
    }
}

/// A parsed fault action, ready for the `fault_start` RPC.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFault {
    /// Fault kind as understood by the NodeManager
    /// (`interface`, `message_loss`, `message_delay`, `path_loss`,
    /// `path_delay`).
    pub kind: String,
    /// The wire spec for `fault_start`.
    pub spec: Value,
    /// Temporal envelope.
    pub envelope: FaultEnvelope,
}

/// What a fault-named invoke means.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultInvoke {
    /// Start a fault.
    Start(ParsedFault),
    /// Stop the most recent fault of the given kind.
    Stop(String),
}

/// Recognizes and parses `fault_<kind>_start` / `fault_<kind>_stop` invoke
/// actions. `params` are the already-resolved action parameters.
///
/// Returns `None` if the action name is not a fault action.
pub fn parse_fault_invoke(
    name: &str,
    params: &HashMap<String, LevelValue>,
) -> Option<Result<FaultInvoke, String>> {
    let body = name.strip_prefix("fault_")?;
    let (kind, is_start) = if let Some(k) = body.strip_suffix("_start") {
        (k, true)
    } else if let Some(k) = body.strip_suffix("_stop") {
        (k, false)
    } else {
        return None;
    };
    const KINDS: [&str; 5] = [
        "interface",
        "message_loss",
        "message_delay",
        "path_loss",
        "path_delay",
    ];
    if !KINDS.contains(&kind) {
        return Some(Err(format!("unknown fault kind '{kind}'")));
    }
    if !is_start {
        return Some(Ok(FaultInvoke::Stop(kind.to_string())));
    }

    let get_f64 = |key: &str| params.get(key).and_then(LevelValue::as_float);
    let get_text = |key: &str| params.get(key).and_then(LevelValue::as_text);

    let mut spec = vec![("kind".to_string(), Value::str(kind))];
    if let Some(d) = get_text("direction") {
        spec.push(("direction".into(), Value::str(d)));
    }
    if let Some(p) = get_f64("probability") {
        spec.push(("probability".into(), Value::Double(p)));
    }
    if let Some(d) = get_f64("delay_ms") {
        spec.push(("delay_ms".into(), Value::Int(d as i32)));
    }
    if let Some(peer) = get_text("peer") {
        spec.push(("peer".into(), Value::str(peer)));
    }
    let envelope = FaultEnvelope {
        duration: get_f64("duration").map(SimDuration::from_secs_f64),
        rate: get_f64("rate").unwrap_or(1.0),
        randomseed: get_f64("randomseed").map(|v| v as u64).unwrap_or(0),
    };
    if envelope.rate <= 0.0 || envelope.rate > 1.0 {
        return Some(Err(format!("fault rate {} outside (0, 1]", envelope.rate)));
    }
    Some(Ok(FaultInvoke::Start(ParsedFault {
        kind: kind.to_string(),
        spec: Value::Struct(spec),
        envelope,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, LevelValue)]) -> HashMap<String, LevelValue> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn non_fault_names_pass_through() {
        assert!(parse_fault_invoke("sd_init", &HashMap::new()).is_none());
        assert!(parse_fault_invoke("env_traffic_start", &HashMap::new()).is_none());
        assert!(parse_fault_invoke("fault_message_loss", &HashMap::new()).is_none());
    }

    #[test]
    fn unknown_kind_is_error() {
        let r = parse_fault_invoke("fault_gremlin_start", &HashMap::new()).unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn stop_actions_parse() {
        match parse_fault_invoke("fault_interface_stop", &HashMap::new())
            .unwrap()
            .unwrap()
        {
            FaultInvoke::Stop(kind) => assert_eq!(kind, "interface"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn message_loss_start_builds_spec() {
        let p = params(&[
            ("probability", LevelValue::Float(0.25)),
            ("direction", LevelValue::Text("receive".into())),
        ]);
        match parse_fault_invoke("fault_message_loss_start", &p)
            .unwrap()
            .unwrap()
        {
            FaultInvoke::Start(f) => {
                assert_eq!(f.kind, "message_loss");
                assert_eq!(f.spec.member("probability"), Some(&Value::Double(0.25)));
                assert_eq!(f.spec.member("direction"), Some(&Value::str("receive")));
                assert_eq!(f.envelope, FaultEnvelope::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn envelope_parsing() {
        let p = params(&[
            ("duration", LevelValue::Int(10)),
            ("rate", LevelValue::Float(0.5)),
            ("randomseed", LevelValue::Int(7)),
        ]);
        match parse_fault_invoke("fault_interface_start", &p)
            .unwrap()
            .unwrap()
        {
            FaultInvoke::Start(f) => {
                assert_eq!(f.envelope.duration, Some(SimDuration::from_secs(10)));
                assert_eq!(f.envelope.rate, 0.5);
                assert_eq!(f.envelope.randomseed, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn invalid_rate_rejected() {
        let p = params(&[
            ("duration", LevelValue::Int(10)),
            ("rate", LevelValue::Float(1.5)),
        ]);
        assert!(parse_fault_invoke("fault_interface_start", &p)
            .unwrap()
            .is_err());
        let p = params(&[
            ("duration", LevelValue::Int(10)),
            ("rate", LevelValue::Float(0.0)),
        ]);
        assert!(parse_fault_invoke("fault_interface_start", &p)
            .unwrap()
            .is_err());
    }

    #[test]
    fn unbounded_envelope_has_no_window() {
        assert_eq!(
            FaultEnvelope::default().activation_window(SimTime::ZERO),
            None
        );
    }

    #[test]
    fn full_rate_window_starts_immediately() {
        let e = FaultEnvelope {
            duration: Some(SimDuration::from_secs(10)),
            rate: 1.0,
            randomseed: 3,
        };
        let now = SimTime::from_nanos(5_000);
        let (start, stop) = e.activation_window(now).unwrap();
        assert_eq!(start, now);
        assert_eq!(stop, now + SimDuration::from_secs(10));
    }

    #[test]
    fn partial_rate_window_fits_inside_duration() {
        let e = FaultEnvelope {
            duration: Some(SimDuration::from_secs(10)),
            rate: 0.3,
            randomseed: 11,
        };
        let now = SimTime::from_nanos(1_000_000);
        let (start, stop) = e.activation_window(now).unwrap();
        assert!(start >= now);
        assert_eq!(stop - start, SimDuration::from_secs(3));
        assert!(stop <= now + SimDuration::from_secs(10));
        // Deterministic in the seed.
        assert_eq!(e.activation_window(now), e.activation_window(now));
        let other = FaultEnvelope {
            randomseed: 12,
            ..e
        };
        assert_ne!(e.activation_window(now), other.activation_window(now));
    }
}
