//! The ExperiMaster — the controlling entity of an experiment (paper §IV,
//! §VI-A).
//!
//! "The experiment is executed by the experiment master, a program that
//! executes experiment runs as specified in the description. Each run is a
//! sequence of actions performed on the participating nodes [...]. The
//! master and all nodes monitor and record dedicated parameters during each
//! run [...]. After experiment execution, the collected data are collected
//! and conditioned so that a common time base [...] is established.
//! Finally, data are stored into a single results database."
//!
//! Lifecycle: `experiment_init` → (`run_init` → preparation / execution /
//! clean-up → `run_exit`)* → `experiment_exit`, with crash recovery by
//! resuming at the first run without a level-2 completion marker.

use crate::binding::{PlatformBinding, ResolvedActors};
use crate::error::EngineError;
use crate::event_log::{EventLog, RecordedEvent};
use crate::faults::ParsedFault;
use crate::interp::{self, ExecCtx, ProcState, ProcessInstance};
use crate::nodemanager::{NodeManager, SharedSim};
use excovery_desc::factors::LevelValue;
use excovery_desc::plan::{RunSpec, Treatment};
use excovery_desc::process::{EventSelector, ValueRef};
use excovery_desc::validate::validate_strict;
use excovery_desc::ExperimentDescription;
use excovery_netsim::capture::CaptureKind;
use excovery_netsim::rng::derive_seed;
use excovery_netsim::sim::SimulatorConfig;
use excovery_netsim::topology::Topology;
use excovery_netsim::traffic::{PairChoice, TrafficGenerator, TrafficSpec};
use excovery_netsim::{NodeId, SimDuration, SimTime, Simulator};
use excovery_rpc::{
    relay_registry, Channel, ChaosOptions, ChaosTransport, NodeCall, NodeProxy, Reactor,
    ReactorEndpoint, RetryConfig, RpcError, ServerRegistry, TcpOptions, TcpRpcServer, TcpTransport,
    Transport, Value,
};
use excovery_sd::{Architecture, SdConfig};
use excovery_store::level2::Level2Store;
use excovery_store::records::{EventRow, ExperimentInfo, PacketRow, RunInfoRow};
use excovery_store::schema::{create_level3_database, EE_VERSION};
use excovery_store::{Database, JsonValue, SqlValue};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Context handed to plugins: platform access plus the custom-measurement
/// channel (paper §IV-B: "ExCovery has a plugin concept to extend these
/// data with custom measurements on demand"; "Plugins have a separate
/// storage location", §IV-B5). Recorded measurements end up in the
/// `ExtraRunMeasurements` table of the level-3 package.
pub struct PluginCtx<'a> {
    /// The simulated platform.
    pub sim: &'a mut Simulator,
    /// Current run id.
    pub run_id: u64,
    measurements: &'a mut Vec<(String, String, Vec<u8>)>,
}

impl PluginCtx<'_> {
    /// Records a named custom measurement for the current run, attributed
    /// to `node_id` (a platform id, or a plugin-specific label).
    pub fn record_measurement(
        &mut self,
        node_id: impl Into<String>,
        name: impl Into<String>,
        content: impl Into<Vec<u8>>,
    ) {
        self.measurements
            .push((node_id.into(), name.into(), content.into()));
    }
}

/// A plugin: a custom environment action.
pub type PluginFn =
    Box<dyn FnMut(&HashMap<String, LevelValue>, &mut PluginCtx) -> Result<(), String> + Send>;

/// Control-channel backend the master uses to reach its NodeManagers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum TransportKind {
    /// The dedicated in-memory channel (still full XML-RPC on the wire).
    #[default]
    Memory,
    /// Length-prefixed XML-RPC frames over loopback TCP sockets — the
    /// real-socket path a distributed deployment would use.
    Tcp,
}

impl TransportKind {
    /// Parses a CLI-style name (`memory` or `tcp`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "memory" => Some(TransportKind::Memory),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Memory => write!(f, "memory"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

/// Control-plane dispatch model for the per-phase lifecycle fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum DispatcherKind {
    /// One scoped thread per node per phase (the original model; simple
    /// and fine at small node counts).
    #[default]
    Threaded,
    /// Every NodeManager link multiplexed on the calling thread by a
    /// non-blocking readiness loop ([`excovery_rpc::Reactor`]), with
    /// batched frames through sub-master relays when
    /// [`EngineConfig::fanout_tree`] is set — the testbed-scale path.
    Reactor,
}

impl DispatcherKind {
    /// Parses a CLI-style name (`threaded` or `reactor`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threaded" => Some(DispatcherKind::Threaded),
            "reactor" => Some(DispatcherKind::Reactor),
            _ => None,
        }
    }
}

impl std::fmt::Display for DispatcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatcherKind::Threaded => write!(f, "threaded"),
            DispatcherKind::Reactor => write!(f, "reactor"),
        }
    }
}

/// Bounded retry policy for control-channel calls.
///
/// Every lifecycle call the master issues carries an idempotency key and
/// is retried up to `max_attempts` times on failures that
/// [`RpcError::is_retryable`] classifies as transient (timeouts,
/// disconnects, I/O) with exponential backoff. Server faults and codec
/// errors are never retried — repeating a call the node *rejected* cannot
/// succeed and would only mask the bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (first try included); minimum 1.
    pub max_attempts: u32,
    /// Wall-clock delay before the first retry.
    pub backoff_initial: Duration,
    /// Backoff ceiling; doubling stops here.
    pub backoff_max: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_initial: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A policy sized to outlast a chaos schedule: enough attempts to ride
    /// out `worst_window` consecutive failing calls, with fast backoff.
    pub fn for_chaos(worst_window: u64) -> Self {
        Self {
            max_attempts: (worst_window as u32).saturating_add(6),
            backoff_initial: Duration::from_micros(100),
            backoff_max: Duration::from_millis(2),
        }
    }
}

/// Engine configuration: the platform the description is instantiated on.
///
/// Construct via [`EngineConfig::builder`] (or start from a preset and
/// adjust fields directly — they stay public):
///
/// ```
/// use excovery_core::master::{EngineConfig, TransportKind};
/// use excovery_netsim::topology::Topology;
///
/// let cfg = EngineConfig::builder()
///     .topology(Topology::chain(4))
///     .transport(TransportKind::Tcp)
///     .max_runs(2)
///     .build();
/// assert_eq!(cfg.topology.len(), 4);
/// ```
pub struct EngineConfig {
    /// Mesh topology of the simulated testbed.
    pub topology: Topology,
    /// Simulator parameters; the seed is derived from the description seed.
    pub sim: SimulatorConfig,
    /// SD protocol configuration; `None` derives the architecture from the
    /// description's `sd_architecture` parameter.
    pub sd_config: Option<SdConfig>,
    /// Hard per-run wall limit in simulated time.
    pub run_timeout: SimDuration,
    /// Master reaction quantum while waiting on events.
    pub quantum: SimDuration,
    /// Level-2 storage root; `None` uses a unique temp directory.
    pub l2_root: Option<PathBuf>,
    /// Keep the level-2 hierarchy after packaging (default: remove).
    pub keep_l2: bool,
    /// Resume an aborted experiment from its level-2 completion markers.
    pub resume: bool,
    /// Execute only the first `n` runs of the plan (tests, examples).
    pub max_runs: Option<u64>,
    /// Control-channel backend between master and NodeManagers.
    pub transport: TransportKind,
    /// Control-plane dispatch model for the per-phase lifecycle fan-out.
    pub dispatcher: DispatcherKind,
    /// Width of the hierarchical fan-out tree: `Some(w)` groups the
    /// NodeManagers under sub-master relays of at most `w` members each
    /// and sends one batched lifecycle frame per relay and phase.
    /// Requires [`DispatcherKind::Reactor`]; `None` keeps the flat
    /// per-node fan-out.
    pub fanout_tree: Option<usize>,
    /// Socket options for the TCP backend (ignored by the memory channel).
    pub tcp: TcpOptions,
    /// Bounded retry with backoff for every control-channel call.
    pub retry: RetryPolicy,
    /// Seeded fault schedule injected into every node's control channel;
    /// `None` runs fault-free. Each node derives its own schedule seed
    /// from this seed and its platform id.
    pub chaos: Option<ChaosOptions>,
    /// Master incarnation number, part of every idempotency key. A
    /// resuming master must use a fresh epoch so its keys can never
    /// collide with replies recorded for its predecessor.
    pub epoch: u64,
}

/// Builder for [`EngineConfig`]. Starts from the grid default; the
/// platform presets ([`wired_lan`](Self::wired_lan),
/// [`lossy_mesh`](Self::lossy_mesh)) can be applied at any point and
/// individual knobs adjusted after.
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Applies the 3×3 wireless grid platform preset (the default starting
    /// point). Only the simulator parameters change; everything else set
    /// on the builder is preserved.
    pub fn grid_default(mut self) -> Self {
        self.cfg.sim = EngineConfig::grid_default().sim;
        self
    }

    /// Applies the wired-LAN platform preset (see
    /// [`EngineConfig::wired_lan`]).
    pub fn wired_lan(mut self) -> Self {
        self.cfg.sim = EngineConfig::wired_lan().sim;
        self
    }

    /// Applies the degraded wireless-mesh preset (see
    /// [`EngineConfig::lossy_mesh`]).
    pub fn lossy_mesh(mut self) -> Self {
        self.cfg.sim = EngineConfig::lossy_mesh().sim;
        self
    }

    /// Sets the testbed topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.cfg.topology = t;
        self
    }

    /// Sets the simulator parameters.
    pub fn sim(mut self, sim: SimulatorConfig) -> Self {
        self.cfg.sim = sim;
        self
    }

    /// Sets an explicit SD protocol configuration.
    pub fn sd_config(mut self, sd: SdConfig) -> Self {
        self.cfg.sd_config = Some(sd);
        self
    }

    /// Sets the hard per-run limit in simulated time.
    pub fn run_timeout(mut self, t: SimDuration) -> Self {
        self.cfg.run_timeout = t;
        self
    }

    /// Sets the master reaction quantum.
    pub fn quantum(mut self, q: SimDuration) -> Self {
        self.cfg.quantum = q;
        self
    }

    /// Sets the level-2 storage root.
    pub fn l2_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.cfg.l2_root = Some(root.into());
        self
    }

    /// Keeps the level-2 hierarchy after packaging.
    pub fn keep_l2(mut self, keep: bool) -> Self {
        self.cfg.keep_l2 = keep;
        self
    }

    /// Resumes an aborted experiment from its completion markers.
    pub fn resume(mut self, resume: bool) -> Self {
        self.cfg.resume = resume;
        self
    }

    /// Caps execution at the first `n` runs of the plan.
    pub fn max_runs(mut self, n: u64) -> Self {
        self.cfg.max_runs = Some(n);
        self
    }

    /// Selects the control-channel backend.
    pub fn transport(mut self, t: TransportKind) -> Self {
        self.cfg.transport = t;
        self
    }

    /// Selects the control-plane dispatch model.
    pub fn dispatcher(mut self, d: DispatcherKind) -> Self {
        self.cfg.dispatcher = d;
        self
    }

    /// Enables the hierarchical fan-out tree with relays of at most
    /// `width` members (requires the reactor dispatcher).
    pub fn fanout_tree(mut self, width: usize) -> Self {
        self.cfg.fanout_tree = Some(width);
        self
    }

    /// Sets the socket options of the TCP backend.
    pub fn tcp(mut self, opts: TcpOptions) -> Self {
        self.cfg.tcp = opts;
        self
    }

    /// Sets the control-channel retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.retry = policy;
        self
    }

    /// Injects a seeded fault schedule into every control channel.
    pub fn chaos(mut self, opts: ChaosOptions) -> Self {
        self.cfg.chaos = Some(opts);
        self
    }

    /// Sets the master incarnation number for idempotency keys.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.cfg.epoch = epoch;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

impl EngineConfig {
    /// Starts a builder from the grid default.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: Self::grid_default(),
        }
    }

    /// A sensible default platform: a 3×3 grid mesh with the wireless
    /// link model and loosely synchronized clocks.
    pub fn grid_default() -> Self {
        Self {
            topology: Topology::grid(3, 3),
            sim: SimulatorConfig::default(),
            sd_config: None,
            run_timeout: SimDuration::from_secs(120),
            quantum: SimDuration::from_millis(20),
            l2_root: None,
            keep_l2: false,
            resume: false,
            max_runs: None,
            transport: TransportKind::default(),
            dispatcher: DispatcherKind::default(),
            fanout_tree: None,
            tcp: TcpOptions::default(),
            retry: RetryPolicy::default(),
            chaos: None,
            epoch: 0,
        }
    }

    /// A wired-LAN platform preset: near-lossless links, microsecond
    /// delays, high capacity, NTP-grade clocks. Running the *same*
    /// description on multiple platform presets is the diversity the paper
    /// recommends for external validity (§II-C1).
    pub fn wired_lan() -> Self {
        use excovery_netsim::link::LinkModel;
        let mut cfg = Self::grid_default();
        cfg.sim.link_model = LinkModel {
            base_loss: 0.0001,
            load_loss_factor: 0.5,
            base_delay: SimDuration::from_micros(50),
            jitter_frac: 0.05,
            capacity_kbps: 1_000_000.0,
            max_utilization: 0.95,
        };
        cfg.sim.max_clock_offset_ns = 500_000; // ±0.5 ms
        cfg.sim.max_drift_ppm = 5.0;
        cfg.sim.max_sync_error_ns = 10_000;
        cfg
    }

    /// A degraded wireless mesh preset: high base loss and delay, the
    /// regime of the weakest DES-testbed links.
    pub fn lossy_mesh() -> Self {
        use excovery_netsim::link::LinkModel;
        let mut cfg = Self::grid_default();
        cfg.sim.link_model = LinkModel {
            base_loss: 0.15,
            load_loss_factor: 3.0,
            base_delay: SimDuration::from_millis(3),
            jitter_frac: 0.5,
            capacity_kbps: 2_000.0,
            max_utilization: 0.95,
        };
        cfg
    }
}

/// Result of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Run id from the plan.
    pub run_id: u64,
    /// Replicate index within the treatment.
    pub replicate: u64,
    /// Treatment key (`factor=level|...`).
    pub treatment_key: String,
    /// True if every process completed; false on failure or timeout.
    pub completed: bool,
    /// Failure messages of processes that did not complete.
    pub failures: Vec<String>,
    /// Events recorded in this run.
    pub events: usize,
    /// Packet captures recorded in this run.
    pub packets: usize,
    /// Simulated duration of the run.
    pub duration: SimDuration,
}

/// Result of a whole experiment.
pub struct ExperimentOutcome {
    /// The level-3 database (Table I schema) with all conditioned data.
    pub database: Database,
    /// Per-run outcomes in execution order. On a resumed execution this
    /// includes the outcomes of runs completed by earlier incarnations,
    /// restored from the level-2 journal — so the vector (and hence
    /// [`Self::digest`]) is identical to an uninterrupted execution.
    pub runs: Vec<RunOutcome>,
    /// How many leading entries of [`Self::runs`] were restored from the
    /// journal rather than executed by this incarnation. Provenance
    /// metadata like [`Self::control_retries`]: excluded from
    /// [`Self::digest`].
    pub restored_runs: u64,
    /// Level-2 root used (removed unless `keep_l2`).
    pub l2_root: PathBuf,
    /// Control-channel retries the master performed. Chaos leaves its
    /// trace here — and **only** here: the experiment data must not
    /// depend on it (see [`Self::digest`]).
    pub control_retries: u64,
    /// Dispatch model the control plane ran on. Metadata like
    /// [`Self::control_retries`]: deliberately excluded from
    /// [`Self::digest`], because the dispatcher must not influence what
    /// the experiment recorded.
    pub dispatcher: DispatcherKind,
}

impl ExperimentOutcome {
    /// Order-sensitive digest of everything the experiment *recorded*: all
    /// level-3 tables (events, packets, run infos, logs, measurements, the
    /// description) plus the per-run outcome summary.
    ///
    /// Two executions with equal digests produced byte-identical
    /// measurement data in identical order. The chaos-equivalence contract
    /// is exactly this: for every eventually-clearing fault schedule, the
    /// digest equals the fault-free execution's. Control-plane noise
    /// ([`Self::control_retries`], the level-2 root) is deliberately
    /// excluded.
    pub fn digest(&self) -> u64 {
        // FNV-1a, 64-bit: stable across platforms, no dependencies.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for name in self.database.table_names() {
            eat(b"table:");
            eat(name.as_bytes());
            let table = self.database.table(name).expect("listed table exists");
            for row in table.rows() {
                for value in row {
                    match value {
                        SqlValue::Null => eat(b"\x00"),
                        SqlValue::Int(i) => {
                            eat(b"\x01");
                            eat(&i.to_le_bytes());
                        }
                        SqlValue::Real(f) => {
                            eat(b"\x02");
                            eat(&f.to_bits().to_le_bytes());
                        }
                        SqlValue::Text(s) => {
                            eat(b"\x03");
                            eat(&(s.len() as u64).to_le_bytes());
                            eat(s.as_bytes());
                        }
                        SqlValue::Blob(b) => {
                            eat(b"\x04");
                            eat(&(b.len() as u64).to_le_bytes());
                            eat(b);
                        }
                    }
                }
                eat(b"\x1e");
            }
        }
        for run in &self.runs {
            eat(b"run:");
            eat(&run.run_id.to_le_bytes());
            eat(&run.replicate.to_le_bytes());
            eat(run.treatment_key.as_bytes());
            eat(&[u8::from(run.completed)]);
            for failure in &run.failures {
                eat(failure.as_bytes());
            }
            eat(&(run.events as u64).to_le_bytes());
            eat(&(run.packets as u64).to_le_bytes());
            eat(&run.duration.as_nanos().to_le_bytes());
        }
        hash
    }
}

/// Per-node packet capture as stored on level 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CaptureSer {
    local_time_ns: u64,
    src: String,
    port: u16,
    kind: String,
    /// 16-bit tagger id stamped by the sending node (§VI-A).
    tag: u16,
    data: Vec<u8>,
}

// ---- level-2 JSON codecs -------------------------------------------------
//
// Intermediate level-2 artifacts are written and re-read through the
// self-contained `excovery_store::JsonValue` codec so packaging (and
// crash-resume, which replays packaging over a prior tree) has no
// dependency on an external serializer.

fn events_to_json(events: &[RecordedEvent]) -> JsonValue {
    JsonValue::Array(
        events
            .iter()
            .map(|e| {
                JsonValue::Object(vec![
                    ("seq".into(), JsonValue::Int(e.seq as i64)),
                    ("run_id".into(), JsonValue::Int(e.run_id as i64)),
                    ("node".into(), JsonValue::str(&e.node)),
                    (
                        "local_time_ns".into(),
                        JsonValue::Int(e.local_time_ns as i64),
                    ),
                    ("name".into(), JsonValue::str(&e.name)),
                    (
                        "params".into(),
                        JsonValue::Array(
                            e.params
                                .iter()
                                .map(|(k, v)| {
                                    JsonValue::Array(vec![JsonValue::str(k), JsonValue::str(v)])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn events_from_json(v: &JsonValue) -> Option<Vec<RecordedEvent>> {
    v.as_array()?
        .iter()
        .map(|e| {
            Some(RecordedEvent {
                seq: e.get("seq")?.as_u64()?,
                run_id: e.get("run_id")?.as_u64()?,
                node: e.get("node")?.as_str()?.to_string(),
                local_time_ns: e.get("local_time_ns")?.as_u64()?,
                name: e.get("name")?.as_str()?.to_string(),
                params: e
                    .get("params")?
                    .as_array()?
                    .iter()
                    .map(|p| {
                        let pair = p.as_array()?;
                        Some((
                            pair.first()?.as_str()?.to_string(),
                            pair.get(1)?.as_str()?.to_string(),
                        ))
                    })
                    .collect::<Option<Vec<_>>>()?,
            })
        })
        .collect()
}

fn sync_to_json(offsets: &HashMap<String, i64>) -> JsonValue {
    let mut pairs: Vec<(String, JsonValue)> = offsets
        .iter()
        .map(|(pid, off)| (pid.clone(), JsonValue::Int(*off)))
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    JsonValue::Object(pairs)
}

fn sync_from_json(v: &JsonValue) -> Option<HashMap<String, i64>> {
    v.as_object()?
        .iter()
        .map(|(pid, off)| Some((pid.clone(), off.as_i64()?)))
        .collect()
}

fn measurements_to_json(ms: &[(String, String, Vec<u8>)]) -> JsonValue {
    JsonValue::Array(
        ms.iter()
            .map(|(node, name, content)| {
                JsonValue::Array(vec![
                    JsonValue::str(node),
                    JsonValue::str(name),
                    JsonValue::bytes(content),
                ])
            })
            .collect(),
    )
}

fn measurements_from_json(v: &JsonValue) -> Option<Vec<(String, String, Vec<u8>)>> {
    v.as_array()?
        .iter()
        .map(|m| {
            let triple = m.as_array()?;
            Some((
                triple.first()?.as_str()?.to_string(),
                triple.get(1)?.as_str()?.to_string(),
                triple.get(2)?.to_bytes()?,
            ))
        })
        .collect()
}

/// Serialized form of a [`RunOutcome`] as journalled to level 2
/// (`runs/<id>/_master/outcome.json`), written before the run's completion
/// marker so a resumed master can restore the summaries of runs it never
/// executed and [`ExperimentOutcome::digest`] stays crash-invariant.
fn outcome_to_json(o: &RunOutcome) -> JsonValue {
    JsonValue::Object(vec![
        ("run_id".into(), JsonValue::Int(o.run_id as i64)),
        ("replicate".into(), JsonValue::Int(o.replicate as i64)),
        ("treatment_key".into(), JsonValue::str(&o.treatment_key)),
        ("completed".into(), JsonValue::Bool(o.completed)),
        (
            "failures".into(),
            JsonValue::Array(o.failures.iter().map(JsonValue::str).collect()),
        ),
        ("events".into(), JsonValue::Int(o.events as i64)),
        ("packets".into(), JsonValue::Int(o.packets as i64)),
        (
            "duration_ns".into(),
            JsonValue::Int(o.duration.as_nanos() as i64),
        ),
    ])
}

fn outcome_from_json(v: &JsonValue) -> Option<RunOutcome> {
    Some(RunOutcome {
        run_id: v.get("run_id")?.as_u64()?,
        replicate: v.get("replicate")?.as_u64()?,
        treatment_key: v.get("treatment_key")?.as_str()?.to_string(),
        completed: v.get("completed")?.as_bool()?,
        failures: v
            .get("failures")?
            .as_array()?
            .iter()
            .map(|f| Some(f.as_str()?.to_string()))
            .collect::<Option<Vec<_>>>()?,
        events: v.get("events")?.as_u64()? as usize,
        packets: v.get("packets")?.as_u64()? as usize,
        duration: SimDuration::from_nanos(v.get("duration_ns")?.as_u64()?),
    })
}

fn captures_to_json(captures: &[CaptureSer]) -> JsonValue {
    JsonValue::Array(
        captures
            .iter()
            .map(|c| {
                JsonValue::Object(vec![
                    (
                        "local_time_ns".into(),
                        JsonValue::Int(c.local_time_ns as i64),
                    ),
                    ("src".into(), JsonValue::str(&c.src)),
                    ("port".into(), JsonValue::Int(c.port as i64)),
                    ("kind".into(), JsonValue::str(&c.kind)),
                    ("tag".into(), JsonValue::Int(c.tag as i64)),
                    ("data".into(), JsonValue::bytes(&c.data)),
                ])
            })
            .collect(),
    )
}

fn captures_from_json(v: &JsonValue) -> Option<Vec<CaptureSer>> {
    v.as_array()?
        .iter()
        .map(|c| {
            Some(CaptureSer {
                local_time_ns: c.get("local_time_ns")?.as_u64()?,
                src: c.get("src")?.as_str()?.to_string(),
                port: u16::try_from(c.get("port")?.as_i64()?).ok()?,
                kind: c.get("kind")?.as_str()?.to_string(),
                tag: u16::try_from(c.get("tag")?.as_i64()?).ok()?,
                data: c.get("data")?.to_bytes()?,
            })
        })
        .collect()
}

/// One logical control-channel call against a single node: idempotency key,
/// bounded retry with exponential backoff on transient failures.
///
/// The key is reused across every retry of this call, so a retry of a call
/// that already executed (only its response was lost) replays the node's
/// recorded response instead of executing the handler twice. Only errors
/// [`RpcError::is_retryable`] classifies as transient are retried; a node
/// *rejecting* the call (fault, codec error) fails immediately — repeating
/// it could not succeed and would only mask the bug.
fn retry_call_on(
    proxy: &NodeProxy,
    policy: RetryPolicy,
    key: &str,
    retries: &AtomicU64,
    method: &str,
    params: Vec<Value>,
) -> Result<Value, RpcError> {
    let mut backoff = policy.backoff_initial;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match proxy.call_idempotent(method, params.clone(), key) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() && attempt < policy.max_attempts.max(1) => {
                retries.fetch_add(1, Ordering::Relaxed);
                // Control-plane rate: one registry lookup per retry (not per
                // call) is cheap enough to skip pre-resolved handles.
                if excovery_obs::enabled() {
                    excovery_obs::global()
                        .counter("rpc_client_retries_total", &[("method", method)])
                        .inc();
                }
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(policy.backoff_max);
            }
            Err(e) => return Err(e),
        }
    }
}

struct FaultWindow {
    platform_id: String,
    spec: Value,
    start: SimTime,
    stop: SimTime,
    handle: Option<i32>,
}

/// The controlling entity executing experiments.
///
/// ```
/// use excovery_core::{EngineConfig, ExperiMaster};
/// use excovery_desc::ExperimentDescription;
///
/// let desc = ExperimentDescription::paper_two_party_sd(1);
/// let mut cfg = EngineConfig::grid_default();
/// cfg.max_runs = Some(1);
/// let mut master = ExperiMaster::new(desc, cfg)?;
/// let outcome = master.execute()?;
/// assert!(outcome.runs[0].completed);
/// assert!(!outcome.database.table("Events").unwrap().is_empty());
/// # Ok::<(), excovery_core::EngineError>(())
/// ```
pub struct ExperiMaster {
    desc: ExperimentDescription,
    cfg: EngineConfig,
    sim: SharedSim,
    binding: Arc<PlatformBinding>,
    proxies: HashMap<String, NodeProxy>,
    /// Running TCP servers when `cfg.transport` is [`TransportKind::Tcp`]
    /// (one per node; dropping them stops the accept loops).
    tcp_servers: HashMap<String, TcpRpcServer>,
    /// Bound address of each node's TCP server (for reviving a halted one
    /// on the same port).
    tcp_addrs: HashMap<String, std::net::SocketAddr>,
    /// The registry behind each TCP server, shared so a halted node can be
    /// revived with its state (including the idempotency cache) intact.
    tcp_registries: HashMap<String, Arc<Mutex<ServerRegistry>>>,
    /// The multiplexed dispatcher when `cfg.dispatcher` is
    /// [`DispatcherKind::Reactor`] (behind a lock only because the
    /// lifecycle fan-out takes `&self`; dispatches never overlap).
    reactor: Option<Mutex<Reactor>>,
    /// Running sub-master relay servers for a TCP fan-out tree (dropping
    /// them stops the accept loops).
    #[allow(dead_code)]
    relay_servers: Vec<TcpRpcServer>,
    /// Idempotency-key sequence; each logical call draws one number.
    call_seq: AtomicU64,
    /// Control-channel retries performed (reported in the outcome).
    control_retries: AtomicU64,
    /// Wall clock anchoring the master's observability spans (phases and
    /// runs share one time base within an execution).
    obs_clock: excovery_obs::span::WallClock,
    log: EventLog,
    plugins: HashMap<String, PluginFn>,
    // per-run state
    run_id: u64,
    replicate: u64,
    treatment: Treatment,
    actors: ResolvedActors,
    traffic: Option<TrafficGenerator>,
    cbr_flows: Vec<(NodeId, u16)>,
    fault_windows: Vec<FaultWindow>,
    run_events_offset: usize,
    run_measurements: Vec<(String, String, Vec<u8>)>,
}

impl ExperiMaster {
    /// Builds a master for a validated description on the given platform.
    pub fn new(desc: ExperimentDescription, cfg: EngineConfig) -> Result<Self, EngineError> {
        validate_strict(&desc).map_err(|e| EngineError::Config(e.to_string()))?;
        if let Some(width) = cfg.fanout_tree {
            if width == 0 {
                return Err(EngineError::Config(
                    "fanout_tree width must be at least 1".into(),
                ));
            }
            if cfg.dispatcher != DispatcherKind::Reactor {
                return Err(EngineError::Config(
                    "fanout_tree requires the reactor dispatcher".into(),
                ));
            }
        }
        let binding = Arc::new(
            PlatformBinding::new(&desc.platform, cfg.topology.len())
                .map_err(EngineError::Config)?,
        );
        let mut sim_cfg = cfg.sim.clone();
        sim_cfg.seed = derive_seed(desc.seed, "platform");
        let sim: SharedSim = Arc::new(Mutex::new(Simulator::new(cfg.topology.clone(), sim_cfg)));
        let sd_cfg = cfg.sd_config.clone().unwrap_or_else(|| {
            match desc.param("sd_architecture").and_then(Architecture::parse) {
                Some(Architecture::ThreeParty) => SdConfig::three_party(),
                Some(Architecture::Hybrid) => SdConfig::hybrid(),
                _ => SdConfig::two_party(),
            }
        });
        let mut proxies = HashMap::new();
        let mut tcp_servers = HashMap::new();
        let mut tcp_addrs = HashMap::new();
        let mut tcp_registries = HashMap::new();
        let mut mem_registries: HashMap<String, Arc<Mutex<ServerRegistry>>> = HashMap::new();
        // Each node's control channel draws its own fault schedule, seeded
        // from the campaign chaos seed and the platform id — replaying the
        // campaign seed replays every node's schedule.
        let node_chaos = |pid: &str| {
            cfg.chaos.as_ref().map(|opts| ChaosOptions {
                seed: derive_seed(opts.seed, pid),
                ..opts.clone()
            })
        };
        fn wrap(pid: &str, t: impl Transport + 'static, chaos: Option<ChaosOptions>) -> NodeProxy {
            match chaos {
                Some(opts) => NodeProxy::new(pid, ChaosTransport::new(t, opts)),
                None => NodeProxy::new(pid, t),
            }
        }
        for node in binding.managed_sim_nodes() {
            let pid = binding.platform_id(node).unwrap().to_string();
            let registry = NodeManager::registry(
                node,
                &pid,
                Arc::clone(&sim),
                Arc::clone(&binding),
                sd_cfg.clone(),
            );
            let proxy =
                match cfg.transport {
                    TransportKind::Tcp => {
                        // Each NodeManager gets its own loopback server on an
                        // ephemeral port; the master connects the framed
                        // client transport to it.
                        let registry = Arc::new(Mutex::new(registry));
                        let server = TcpRpcServer::bind("127.0.0.1:0", Arc::clone(&registry))
                            .map_err(|e| EngineError::Transport {
                                node: pid.clone(),
                                detail: format!("bind: {e}"),
                            })?;
                        let addr = server.local_addr();
                        let transport = TcpTransport::connect(addr, cfg.tcp.clone())
                            .map_err(|e| EngineError::from_rpc(pid.clone(), e))?;
                        tcp_servers.insert(pid.clone(), server);
                        tcp_addrs.insert(pid.clone(), addr);
                        tcp_registries.insert(pid.clone(), registry);
                        wrap(&pid, transport, node_chaos(&pid))
                    }
                    _ => {
                        let channel = Channel::new(registry);
                        mem_registries.insert(pid.clone(), channel.server());
                        wrap(&pid, channel, node_chaos(&pid))
                    }
                };
            proxies.insert(pid, proxy);
        }
        // The reactor reuses the per-node registries (memory) or server
        // addresses (TCP) the proxies were built on, so dedup caches and
        // kill/revive semantics are shared between both dispatchers.
        let mut relay_servers = Vec::new();
        let reactor = match cfg.dispatcher {
            DispatcherKind::Reactor => {
                let node_registry = |pid: &String| match cfg.transport {
                    TransportKind::Tcp => Arc::clone(&tcp_registries[pid]),
                    _ => Arc::clone(&mem_registries[pid]),
                };
                let mut reactor = Reactor::new();
                let mut pids: Vec<String> = proxies.keys().cloned().collect();
                pids.sort();
                match cfg.fanout_tree {
                    Some(width) => {
                        for group in pids.chunks(width) {
                            let children: Vec<(String, Arc<Mutex<ServerRegistry>>)> = group
                                .iter()
                                .map(|pid| (pid.clone(), node_registry(pid)))
                                .collect();
                            let members: Vec<(String, Option<ChaosOptions>)> = group
                                .iter()
                                .map(|pid| (pid.clone(), node_chaos(pid)))
                                .collect();
                            let relay = Arc::new(Mutex::new(relay_registry(children)));
                            let endpoint = match cfg.transport {
                                // A TCP tree binds one loopback server per
                                // relay, so the batch frames travel a real
                                // socket like any other lifecycle call.
                                TransportKind::Tcp => {
                                    let server =
                                        TcpRpcServer::bind("127.0.0.1:0", Arc::clone(&relay))
                                            .map_err(|e| EngineError::Transport {
                                                node: group[0].clone(),
                                                detail: format!("relay bind: {e}"),
                                            })?;
                                    let addr = server.local_addr();
                                    relay_servers.push(server);
                                    ReactorEndpoint::Tcp {
                                        addr,
                                        opts: cfg.tcp.clone(),
                                    }
                                }
                                _ => ReactorEndpoint::Memory(relay),
                            };
                            reactor.add_relay(endpoint, members);
                        }
                    }
                    None => {
                        for pid in &pids {
                            let endpoint = match cfg.transport {
                                TransportKind::Tcp => ReactorEndpoint::Tcp {
                                    addr: tcp_addrs[pid],
                                    opts: cfg.tcp.clone(),
                                },
                                _ => ReactorEndpoint::Memory(node_registry(pid)),
                            };
                            reactor.add_node(pid.clone(), endpoint, node_chaos(pid));
                        }
                    }
                }
                Some(Mutex::new(reactor))
            }
            _ => None,
        };
        Ok(Self {
            desc,
            cfg,
            sim,
            binding,
            proxies,
            tcp_servers,
            tcp_addrs,
            tcp_registries,
            reactor,
            relay_servers,
            call_seq: AtomicU64::new(0),
            control_retries: AtomicU64::new(0),
            obs_clock: excovery_obs::span::WallClock::new(),
            log: EventLog::new(),
            plugins: HashMap::new(),
            run_id: 0,
            replicate: 0,
            treatment: Treatment::from_assignments(std::iter::empty()),
            actors: ResolvedActors::default(),
            traffic: None,
            cbr_flows: Vec::new(),
            fault_windows: Vec::new(),
            run_events_offset: 0,
            run_measurements: Vec::new(),
        })
    }

    /// Registers a plugin callable as an environment action.
    pub fn register_plugin(&mut self, name: impl Into<String>, f: PluginFn) {
        self.plugins.insert(name.into(), f);
    }

    /// The simulated platform (for inspection in tests and benches).
    pub fn simulator(&self) -> SharedSim {
        Arc::clone(&self.sim)
    }

    /// Control-channel endpoint of every managed node (platform id →
    /// endpoint description, e.g. `memory` or `tcp://127.0.0.1:41234`).
    pub fn endpoints(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = self
            .proxies
            .iter()
            .map(|(pid, p)| (pid.clone(), p.endpoint()))
            .collect();
        v.sort();
        v
    }

    /// One logical control-channel call: idempotency key, bounded retry
    /// with exponential backoff on transient failures.
    ///
    /// The key (`run:epoch:seq`) is drawn once and reused across every
    /// retry of this call, so a retry of a call that already executed
    /// (its response was lost) replays the recorded response instead of
    /// executing twice. Only errors [`RpcError::is_retryable`] classifies
    /// as transient are retried; a node rejecting the call (fault, codec)
    /// fails immediately.
    fn retry_call(&self, pid: &str, method: &str, params: Vec<Value>) -> Result<Value, RpcError> {
        let proxy = self
            .proxies
            .get(pid)
            .ok_or_else(|| RpcError::Io(format!("no NodeManager for '{pid}'")))?;
        let key = format!(
            "{}:{}:{}",
            self.run_id,
            self.cfg.epoch,
            self.call_seq.fetch_add(1, Ordering::Relaxed)
        );
        retry_call_on(
            proxy,
            self.cfg.retry,
            &key,
            &self.control_retries,
            method,
            params,
        )
    }

    /// Dispatches one lifecycle procedure to every node in `nodes` and
    /// waits for all of them (the per-phase barrier). Every per-node call
    /// is idempotent (key `run:epoch:seq`, drawn in `nodes` order) and
    /// retried under the engine [`RetryPolicy`] by the dispatcher
    /// [`EngineConfig::dispatcher`] selects:
    ///
    /// * [`DispatcherKind::Threaded`] — [`Self::dispatch_threaded`], one
    ///   scoped thread per node per phase;
    /// * [`DispatcherKind::Reactor`] — [`Self::dispatch_reactor`], every
    ///   link multiplexed on this thread, batched through relays when a
    ///   fan-out tree is configured.
    ///
    /// Results come back in `nodes` order; so does error reporting — the
    /// first failing node in that deterministic order wins, regardless of
    /// scheduling, keeping engine behaviour reproducible across both
    /// dispatchers.
    fn fan_out(
        &self,
        nodes: &[String],
        method: &str,
        params: &[Value],
    ) -> Result<Vec<Value>, EngineError> {
        let phase_timer = excovery_obs::enabled().then(|| {
            excovery_obs::span::SpanTimer::start(&self.obs_clock, format!("fan_out:{method}"))
        });
        let results = match self.cfg.dispatcher {
            DispatcherKind::Reactor => self.dispatch_reactor(nodes, method, params),
            _ => self.dispatch_threaded(nodes, method, params),
        };
        if let Some(timer) = phase_timer {
            let dur = timer.finish(&self.obs_clock, excovery_obs::global_tracer());
            excovery_obs::global()
                .histogram("master_phase_duration_ns", &[("phase", method)])
                .observe(dur);
        }
        nodes
            .iter()
            .zip(results)
            .map(|(pid, r)| {
                r.map_err(|e| match EngineError::from_rpc(pid.clone(), e) {
                    EngineError::Node { node, detail } => EngineError::Node {
                        node,
                        detail: format!("{method}: {detail}"),
                    },
                    EngineError::Transport { node, detail } => EngineError::Transport {
                        node,
                        detail: format!("{method}: {detail}"),
                    },
                    other => other,
                })
            })
            .collect()
    }

    /// The original dispatcher: one scoped thread per node, joined as the
    /// phase barrier.
    fn dispatch_threaded(
        &self,
        nodes: &[String],
        method: &str,
        params: &[Value],
    ) -> Vec<Result<Value, RpcError>> {
        // Borrow only the thread-shareable pieces: plugin closures (in
        // `self`) are not `Sync`, so the spawned threads must not capture
        // the master itself. Keys are drawn in `nodes` order *before*
        // spawning, keeping the key sequence deterministic.
        let policy = self.cfg.retry;
        let run_id = self.run_id;
        let epoch = self.cfg.epoch;
        let retries = &self.control_retries;
        let proxies = &self.proxies;
        std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .iter()
                .map(|pid| {
                    let key = format!(
                        "{run_id}:{epoch}:{}",
                        self.call_seq.fetch_add(1, Ordering::Relaxed)
                    );
                    let params = params.to_vec();
                    let proxy = &proxies[pid];
                    scope.spawn(move || {
                        let started = excovery_obs::enabled().then(std::time::Instant::now);
                        let r = retry_call_on(proxy, policy, &key, retries, method, params);
                        if let Some(t0) = started {
                            excovery_obs::global()
                                .histogram("master_node_call_duration_ns", &[("node", pid)])
                                .observe(t0.elapsed().as_nanos() as u64);
                        }
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(RpcError::Io("dispatch thread panicked".into())))
                })
                .collect()
        })
    }

    /// The multiplexed dispatcher: one [`NodeCall`] per node with its key
    /// drawn from the shared sequence, the whole fan-out driven by the
    /// [`Reactor`] on this thread. Retries the reactor absorbed are
    /// folded into `control_retries` exactly like the threaded path's.
    fn dispatch_reactor(
        &self,
        nodes: &[String],
        method: &str,
        params: &[Value],
    ) -> Vec<Result<Value, RpcError>> {
        let calls: Vec<NodeCall> = nodes
            .iter()
            .map(|pid| NodeCall {
                node_id: pid.clone(),
                method: method.to_string(),
                params: params.to_vec(),
                idem_key: format!(
                    "{}:{}:{}",
                    self.run_id,
                    self.cfg.epoch,
                    self.call_seq.fetch_add(1, Ordering::Relaxed)
                ),
            })
            .collect();
        let retry = RetryConfig {
            max_attempts: self.cfg.retry.max_attempts,
            backoff_initial: self.cfg.retry.backoff_initial,
            backoff_max: self.cfg.retry.backoff_max,
        };
        let outcomes = self
            .reactor
            .as_ref()
            .expect("reactor built for this dispatcher")
            .lock()
            .dispatch(calls, &retry);
        outcomes
            .into_iter()
            .map(|o| {
                self.control_retries.fetch_add(o.retries, Ordering::Relaxed);
                if excovery_obs::enabled() {
                    excovery_obs::global()
                        .histogram(
                            "master_node_call_duration_ns",
                            &[("node", o.node_id.as_str())],
                        )
                        .observe(o.duration_ns);
                }
                o.result
            })
            .collect()
    }

    /// Test hook: platform ids of all connected NodeManagers, sorted.
    #[doc(hidden)]
    pub fn node_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.proxies.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Test hook: shuts down a node's live TCP server, simulating a node
    /// crash mid-experiment. Returns false when the node has no running
    /// server (memory transport, or already halted).
    #[doc(hidden)]
    pub fn halt_node_server(&mut self, pid: &str) -> bool {
        match self.tcp_servers.remove(pid) {
            Some(server) => {
                server.shutdown();
                drop(server);
                true
            }
            None => false,
        }
    }

    /// Test hook: restarts a halted node's TCP server on its original
    /// port, with the registry (and idempotency cache) it had before the
    /// crash. The client transport reconnects on its next call.
    #[doc(hidden)]
    pub fn revive_node_server(&mut self, pid: &str) -> Result<(), EngineError> {
        let addr = *self
            .tcp_addrs
            .get(pid)
            .ok_or_else(|| EngineError::Config(format!("'{pid}' never had a TCP server")))?;
        let registry = Arc::clone(self.tcp_registries.get(pid).expect("registry kept"));
        // The OS may hold the port briefly after shutdown; rebinding the
        // same address is bounded-retried.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match TcpRpcServer::bind(addr, Arc::clone(&registry)) {
                Ok(server) => {
                    self.tcp_servers.insert(pid.to_string(), server);
                    return Ok(());
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    return Err(EngineError::Transport {
                        node: pid.to_string(),
                        detail: format!("revive bind {addr}: {e}"),
                    })
                }
            }
        }
    }

    /// Executes the complete experiment and packages the results.
    pub fn execute(&mut self) -> Result<ExperimentOutcome, EngineError> {
        // The default level-2 root must be unique per execution: concurrent
        // experiments (parallel sweeps) would otherwise interleave their
        // intermediate files.
        static L2_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let l2_root = self.cfg.l2_root.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "excovery-{}-{:x}-p{}-{}",
                self.desc.name,
                derive_seed(self.desc.seed, &self.desc.name),
                std::process::id(),
                L2_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            ))
        });
        if !self.cfg.resume && l2_root.exists() {
            std::fs::remove_dir_all(&l2_root).map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        let l2 = Level2Store::open(&l2_root).map_err(|e| EngineError::Storage(e.to_string()))?;

        // ---- experiment_init -------------------------------------------------
        let participants = self.binding.managed_sim_nodes();
        let topo_before = self.topology_measurement(&participants);
        l2.put_experiment("master", "topology_before.json", topo_before.as_bytes())
            .map_err(|e| EngineError::Storage(e.to_string()))?;

        let plan = self.desc.plan();
        let total = plan.runs.len() as u64;
        let first = if self.cfg.resume {
            l2.first_incomplete_run(total)
        } else {
            0
        };
        let last = self
            .cfg
            .max_runs
            .map(|m| (first + m).min(total))
            .unwrap_or(total);

        // Restore the summaries of runs completed by earlier incarnations:
        // the outcome vector of a resumed campaign must equal the
        // uninterrupted one (the digest covers it). Trees written before
        // the outcome journal existed lack the file; those runs stay
        // restored-but-unsummarised rather than failing the resume.
        let mut outcomes = Vec::new();
        let mut restored_runs = 0u64;
        for run_id in 0..first {
            let Ok(raw) = l2.get_run(run_id, "_master", "outcome.json") else {
                continue;
            };
            let outcome = JsonValue::parse_bytes(&raw)
                .ok()
                .as_ref()
                .and_then(outcome_from_json)
                .ok_or_else(|| EngineError::Storage(format!("run {run_id}: bad outcome.json")))?;
            outcomes.push(outcome);
            restored_runs += 1;
        }
        for run in &plan.runs[first as usize..last as usize] {
            let outcome = self.execute_run(run, &l2)?;
            outcomes.push(outcome);
        }

        // ---- experiment_exit -------------------------------------------------
        let topo_after = self.topology_measurement(&participants);
        l2.put_experiment("master", "topology_after.json", topo_after.as_bytes())
            .map_err(|e| EngineError::Storage(e.to_string()))?;

        let database = self.package(&l2)?;
        // Tear the node side down everywhere (concurrently, like the other
        // lifecycle phases).
        let managed: Vec<String> = self
            .binding
            .managed_platform_ids()
            .iter()
            .map(|s| s.to_string())
            .collect();
        self.fan_out(&managed, "experiment_exit", &[])?;
        // End-of-experiment observability snapshot, persisted alongside the
        // run journal. `package` reads experiment entries by exact name
        // (`master/topology_*.json`), so a `_obs` entry is digest-safe.
        if excovery_obs::enabled() {
            let spans = excovery_obs::global_tracer().drain();
            let snapshot = excovery_obs::jsonl::render(&excovery_obs::global().snapshot(), &spans);
            l2.put_experiment("_obs", "snapshot.jsonl", snapshot.as_bytes())
                .map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        if !self.cfg.keep_l2 {
            l2.destroy().ok();
        }
        Ok(ExperimentOutcome {
            database,
            runs: outcomes,
            restored_runs,
            l2_root,
            control_retries: self.control_retries.load(Ordering::Relaxed),
            dispatcher: self.cfg.dispatcher,
        })
    }

    fn topology_measurement(&self, participants: &[NodeId]) -> String {
        let sim = self.sim.lock();
        let matrix = sim.topology().hop_matrix(participants);
        let named: Vec<JsonValue> = participants
            .iter()
            .zip(&matrix)
            .map(|(n, row)| {
                JsonValue::Array(vec![
                    JsonValue::str(self.binding.platform_id(*n).unwrap_or("?")),
                    JsonValue::Array(
                        row.iter()
                            .map(|h| match h {
                                Some(hops) => JsonValue::Int(*hops as i64),
                                None => JsonValue::Null,
                            })
                            .collect(),
                    ),
                ])
            })
            .collect();
        JsonValue::Array(named).to_string()
    }

    /// Instantiates the process set of one run.
    fn instantiate_processes(&self) -> Vec<ProcessInstance> {
        let mut procs = Vec::new();
        for p in &self.desc.node_processes {
            for (i, (_, platform, _)) in self.actors.instances(&p.actor_id).iter().enumerate() {
                procs.push(ProcessInstance::new(
                    format!("{}[{}]@{}", p.actor_id, i, platform),
                    Some(platform.clone()),
                    p.name.clone(),
                    p.actions.clone(),
                ));
            }
        }
        for (i, env) in self.desc.env_processes.iter().enumerate() {
            procs.push(ProcessInstance::new(
                format!("env#{i}"),
                None,
                None,
                env.actions.clone(),
            ));
        }
        procs
    }

    fn drain_events(&mut self) {
        let drained = self.sim.lock().drain_protocol_events();
        for e in drained {
            let pid = self
                .binding
                .platform_id(e.node)
                .map(str::to_string)
                .unwrap_or_else(|| e.node.to_string());
            self.log.record(
                self.run_id,
                pid,
                e.local_time,
                e.name,
                e.params.into_string_pairs(),
            );
        }
    }

    /// Applies fault-window boundaries up to the current instant.
    fn apply_fault_windows(&mut self) -> Result<(), EngineError> {
        let now = self.sim.lock().now();
        let mut windows = std::mem::take(&mut self.fault_windows);
        for w in &mut windows {
            if w.handle.is_none() && now >= w.start && now < w.stop {
                let v = self
                    .retry_call(&w.platform_id, "fault_start", vec![w.spec.clone()])
                    .map_err(|e| EngineError::from_rpc(w.platform_id.clone(), e))?;
                w.handle = v.as_int();
            }
        }
        let mut keep = Vec::new();
        for w in windows {
            if now >= w.stop {
                if let Some(h) = w.handle {
                    self.retry_call(&w.platform_id, "fault_stop", vec![Value::Int(h)])
                        .map_err(|e| EngineError::from_rpc(w.platform_id.clone(), e))?;
                }
                // Windows fully in the past are dropped.
            } else {
                keep.push(w);
            }
        }
        self.fault_windows = keep;
        Ok(())
    }

    fn next_fault_boundary(&self, now: SimTime) -> Option<SimTime> {
        self.fault_windows
            .iter()
            .flat_map(|w| [w.start, w.stop])
            .filter(|t| *t > now)
            .min()
    }

    fn execute_run(&mut self, run: &RunSpec, l2: &Level2Store) -> Result<RunOutcome, EngineError> {
        // ---- preparation (run_init) ------------------------------------------
        self.run_id = run.run_id;
        self.replicate = run.replicate;
        self.treatment = run.treatment.clone();
        self.actors = ResolvedActors::resolve(&self.desc, &run.treatment, &self.binding)
            .map_err(EngineError::Run)?;
        self.traffic = None;
        self.cbr_flows.clear();
        self.fault_windows.clear();
        self.run_measurements.clear();
        self.sim.lock().reset_for_run(run.run_id);
        self.log.align_for_run(run.run_id);
        self.run_events_offset = self.log.len();
        let run_start = self.sim.lock().now();

        // Each preparation procedure fans out to all nodes concurrently,
        // with a barrier between the phases: no node enters
        // `experiment_init` before every node finished `run_init`.
        let managed: Vec<String> = self
            .binding
            .managed_platform_ids()
            .iter()
            .map(|s| s.to_string())
            .collect();
        self.fan_out(&managed, "run_init", &[])?;
        self.fan_out(&managed, "experiment_init", &[])?;
        // Preliminary measurement: clock offset against the reference
        // (paper §IV-B3, stored as RunInfos.TimeDiff).
        let measured = self.fan_out(&managed, "measure_sync", &[])?;
        let mut sync_offsets: HashMap<String, i64> = HashMap::new();
        for (pid, m) in managed.iter().zip(measured) {
            let offset: i64 = m
                .member("offset_ns")
                .and_then(Value::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| EngineError::Node {
                    node: pid.clone(),
                    detail: "measure_sync returned no offset".into(),
                })?;
            sync_offsets.insert(pid.clone(), offset);
        }
        let master_now = self.sim.lock().now();
        self.log.record(
            run.run_id,
            "master",
            master_now,
            "run_init",
            vec![("run".into(), run.run_id.to_string())],
        );

        // ---- execution ---------------------------------------------------------
        let mut procs = self.instantiate_processes();
        // Flow control must only consider events of *this* run: stamp every
        // process's initial marker at the current log position (run_init
        // resets the environment, §IV-C1).
        let run_marker = self.log.marker();
        for p in &mut procs {
            p.marker = run_marker;
        }
        let deadline = run_start + self.cfg.run_timeout;
        loop {
            // Step processes until quiescent.
            loop {
                let mut any = false;
                let mut taken = std::mem::take(&mut procs);
                for p in &mut taken {
                    let mut ctx = MasterCtx { master: self };
                    any |= interp::step(p, &mut ctx);
                }
                procs = taken;
                self.drain_events();
                if !any {
                    break;
                }
            }
            if procs.iter().all(ProcessInstance::finished) {
                break;
            }
            // Advance the platform.
            let now = self.sim.lock().now();
            if now >= deadline {
                for p in &mut procs {
                    if !p.finished() {
                        p.state = ProcState::Failed(format!("{}: run timeout", p.label));
                    }
                }
                break;
            }
            let mut next = now + self.cfg.quantum;
            for p in &procs {
                match &p.state {
                    ProcState::WaitingTime { until } if *until > now => next = next.min(*until),
                    ProcState::WaitingEvent {
                        deadline: Some(d), ..
                    } if *d > now => next = next.min(*d),
                    _ => {}
                }
            }
            if let Some(b) = self.next_fault_boundary(now) {
                next = next.min(b);
            }
            let next = next.min(deadline);
            self.sim.lock().run_until(next);
            self.apply_fault_windows()?;
            self.drain_events();
        }

        // ---- clean-up (run_exit) -----------------------------------------------
        if let Some(mut t) = self.traffic.take() {
            t.stop(&mut self.sim.lock());
        }
        let flows = std::mem::take(&mut self.cbr_flows);
        if !flows.is_empty() {
            excovery_netsim::cbr::remove_cbr_flows(&mut self.sim.lock(), &flows);
        }
        // Stop any still-active windowed faults.
        let leftover = std::mem::take(&mut self.fault_windows);
        for w in leftover {
            if let Some(h) = w.handle {
                self.retry_call(&w.platform_id, "fault_stop", vec![Value::Int(h)])
                    .map_err(|e| EngineError::from_rpc(w.platform_id.clone(), e))?;
            }
        }
        self.fan_out(&managed, "run_exit", &[])?;
        self.drain_events();
        let run_end = self.sim.lock().now();
        self.log.record(
            run.run_id,
            "master",
            run_end,
            "run_exit",
            vec![("run".into(), run.run_id.to_string())],
        );

        // ---- collection into level 2 ---------------------------------------------
        let run_events: Vec<RecordedEvent> = self.log.events()[self.run_events_offset..].to_vec();
        l2.put_run(
            run.run_id,
            "_master",
            "events.json",
            events_to_json(&run_events).to_string().as_bytes(),
        )
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        l2.put_run(
            run.run_id,
            "_master",
            "sync.json",
            sync_to_json(&sync_offsets).to_string().as_bytes(),
        )
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        l2.put_run(
            run.run_id,
            "_master",
            "start.json",
            JsonValue::Int(run_start.as_nanos() as i64)
                .to_string()
                .as_bytes(),
        )
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        // Plugin measurements get their separate storage location (§IV-B5).
        if !self.run_measurements.is_empty() {
            l2.put_run(
                run.run_id,
                "_plugins",
                "measurements.json",
                measurements_to_json(&self.run_measurements)
                    .to_string()
                    .as_bytes(),
            )
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        }

        let mut packets_total = 0;
        {
            let mut sim = self.sim.lock();
            for pid in &managed {
                let node = self.binding.sim_node(pid).unwrap();
                let captures = sim.drain_captures(node);
                packets_total += captures.len();
                let ser: Vec<CaptureSer> = captures
                    .into_iter()
                    .map(|c| CaptureSer {
                        local_time_ns: c.local_time.as_nanos(),
                        src: self
                            .binding
                            .platform_id(c.src)
                            .map(str::to_string)
                            .unwrap_or_else(|| c.src.to_string()),
                        port: c.port,
                        kind: match c.kind {
                            CaptureKind::Sent => "sent".into(),
                            CaptureKind::Received => "received".into(),
                            CaptureKind::Forwarded => "forwarded".into(),
                        },
                        tag: c.tag,
                        data: c.payload.to_vec(),
                    })
                    .collect();
                l2.put_run(
                    run.run_id,
                    pid,
                    "captures.json",
                    captures_to_json(&ser).to_string().as_bytes(),
                )
                .map_err(|e| EngineError::Storage(e.to_string()))?;
            }
        }
        // Drain each node's action-log segment for this run into level 2
        // (a fan-out like the other lifecycle phases, so it rides the
        // configured dispatcher). Draining per run — rather than reading
        // the cumulative log at packaging time — makes the Logs table
        // crash-durable: a master killed after this run's completion
        // marker lands can be resumed by a fresh incarnation — with
        // fresh, empty NodeManagers — and the packaged Logs still cover
        // every run, byte-identically.
        let segments = self.fan_out(&managed, "collect_log", &[Value::Bool(true)])?;
        for (pid, segment) in managed.iter().zip(segments) {
            let segment = segment.as_str().map(str::to_string).unwrap_or_default();
            l2.put_run(run.run_id, pid, "node_log.txt", segment.as_bytes())
                .map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        // Per-run observability summary: flush the data plane's batched
        // counters, then persist the registry snapshot plus the spans of
        // this run under the reserved `_obs` node. `package` only ingests
        // `captures.json` run entries, so these files can never reach the
        // level-3 database (the digest stays obs-independent).
        self.sim.lock().publish_obs();
        if excovery_obs::enabled() {
            let reg = excovery_obs::global();
            reg.counter("master_runs_executed_total", &[]).inc();
            reg.histogram("master_run_sim_duration_ns", &[])
                .observe(run_end.saturating_since(run_start).as_nanos());
            let spans = excovery_obs::global_tracer().drain();
            let summary = excovery_obs::jsonl::render(&reg.snapshot(), &spans);
            l2.put_run(run.run_id, "_obs", "summary.jsonl", summary.as_bytes())
                .map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        let failures: Vec<String> = procs
            .iter()
            .filter_map(|p| match &p.state {
                ProcState::Failed(m) => Some(m.clone()),
                _ => None,
            })
            .collect();
        let outcome = RunOutcome {
            run_id: run.run_id,
            replicate: run.replicate,
            treatment_key: run.treatment.key(),
            completed: failures.is_empty(),
            failures,
            events: run_events.len(),
            packets: packets_total,
            duration: run_end.saturating_since(run_start),
        };
        // The summary journal must land before the completion marker: a
        // run is only "complete" once a resumed master can restore its
        // outcome without re-executing it.
        l2.put_run(
            run.run_id,
            "_master",
            "outcome.json",
            outcome_to_json(&outcome).to_string().as_bytes(),
        )
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        l2.mark_run_complete(run.run_id)
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        Ok(outcome)
    }

    /// Conditions level-2 data onto the common time base and packages the
    /// level-3 database (paper §IV-F).
    fn package(&self, l2: &Level2Store) -> Result<Database, EngineError> {
        let mut db = create_level3_database();
        let xml = excovery_desc::xmlio::to_xml(&self.desc);
        ExperimentInfo {
            exp_xml: xml.clone(),
            ee_version: EE_VERSION.into(),
            name: self.desc.name.clone(),
            comment: self.desc.comment.clone().unwrap_or_default(),
        }
        .insert(&mut db)
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        db.insert(
            "EEFiles",
            vec!["description.xml".into(), xml.into_bytes().into()],
        )
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        db.insert(
            "EEFiles",
            vec!["ee_version".into(), EE_VERSION.as_bytes().to_vec().into()],
        )
        .map_err(|e| EngineError::Storage(e.to_string()))?;
        for (i, name) in ["topology_before.json", "topology_after.json"]
            .iter()
            .enumerate()
        {
            if let Ok(data) = l2.get_experiment("master", name) {
                db.insert(
                    "ExperimentMeasurements",
                    vec![
                        (i as i64).into(),
                        "master".into(),
                        (*name).into(),
                        data.into(),
                    ],
                )
                .map_err(|e| EngineError::Storage(e.to_string()))?;
            }
        }

        for run_id in l2
            .run_ids()
            .map_err(|e| EngineError::Storage(e.to_string()))?
        {
            let sync: HashMap<String, i64> = l2
                .get_run(run_id, "_master", "sync.json")
                .ok()
                .and_then(|d| JsonValue::parse_bytes(&d).ok())
                .and_then(|v| sync_from_json(&v))
                .unwrap_or_default();
            let start_ns: u64 = l2
                .get_run(run_id, "_master", "start.json")
                .ok()
                .and_then(|d| JsonValue::parse_bytes(&d).ok())
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            // Sorted node order: map iteration order must never leak into
            // the packaged database (digest stability).
            let mut sync_sorted: Vec<(&String, &i64)> = sync.iter().collect();
            sync_sorted.sort();
            for (pid, offset) in sync_sorted {
                RunInfoRow {
                    run_id,
                    node_id: pid.clone(),
                    start_time_ns: start_ns as i64,
                    time_diff_ns: *offset,
                }
                .insert(&mut db)
                .map_err(|e| EngineError::Storage(e.to_string()))?;
            }
            // Events: condition local node stamps to the common base.
            if let Ok(raw) = l2.get_run(run_id, "_master", "events.json") {
                let events: Vec<RecordedEvent> = JsonValue::parse_bytes(&raw)
                    .ok()
                    .as_ref()
                    .and_then(events_from_json)
                    .ok_or_else(|| {
                        EngineError::Storage(format!("run {run_id}: bad events.json"))
                    })?;
                for e in events {
                    let offset = sync.get(&e.node).copied().unwrap_or(0);
                    EventRow {
                        run_id,
                        node_id: e.node,
                        common_time_ns: e.local_time_ns as i64 - offset,
                        event_type: e.name,
                        parameter: EventRow::encode_params(&e.params),
                    }
                    .insert(&mut db)
                    .map_err(|er| EngineError::Storage(er.to_string()))?;
                }
            }
            // Custom (plugin) measurements -> ExtraRunMeasurements.
            if let Ok(raw) = l2.get_run(run_id, "_plugins", "measurements.json") {
                let ms: Vec<(String, String, Vec<u8>)> = JsonValue::parse_bytes(&raw)
                    .ok()
                    .as_ref()
                    .and_then(measurements_from_json)
                    .ok_or_else(|| {
                        EngineError::Storage(format!("run {run_id}: bad measurements.json"))
                    })?;
                for (node_id, name, content) in ms {
                    db.insert(
                        "ExtraRunMeasurements",
                        vec![
                            SqlValue::Int(run_id as i64),
                            node_id.into(),
                            name.into(),
                            content.into(),
                        ],
                    )
                    .map_err(|e| EngineError::Storage(e.to_string()))?;
                }
            }
            // Packets likewise.
            for (node, file) in l2
                .run_entries(run_id)
                .map_err(|e| EngineError::Storage(e.to_string()))?
            {
                if file != "captures.json" {
                    continue;
                }
                let raw = l2
                    .get_run(run_id, &node, &file)
                    .map_err(|e| EngineError::Storage(e.to_string()))?;
                let captures: Vec<CaptureSer> = JsonValue::parse_bytes(&raw)
                    .ok()
                    .as_ref()
                    .and_then(captures_from_json)
                    .ok_or_else(|| {
                        EngineError::Storage(format!("run {run_id}: bad captures.json"))
                    })?;
                let offset = sync.get(&node).copied().unwrap_or(0);
                for c in captures {
                    // Raw packet data as on the wire: the 2-byte tagger id
                    // precedes the payload (the prototype writes the tag
                    // into an IP header option; analysis::packetstats
                    // splits it back off).
                    let mut data = Vec::with_capacity(2 + c.data.len());
                    data.extend_from_slice(&c.tag.to_be_bytes());
                    data.extend_from_slice(&c.data);
                    PacketRow {
                        run_id,
                        node_id: node.clone(),
                        common_time_ns: c.local_time_ns as i64 - offset,
                        src_node_id: c.src,
                        data,
                    }
                    .insert(&mut db)
                    .map_err(|e| EngineError::Storage(e.to_string()))?;
                }
            }
        }

        // Logs: the raw per-node action log (one row per node, §IV-F),
        // reassembled from the per-run segments each run drained into
        // level 2. Reading level 2 instead of the NodeManagers' live
        // memory makes the table identical whether the campaign ran in
        // one master incarnation or was killed and resumed: the in-memory
        // log dies with a crashed master, the journalled segments do not.
        let run_ids = l2
            .run_ids()
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        for pid in self.binding.managed_platform_ids() {
            let mut content = format!(
                "node {pid}: experiment '{}' executed by {EE_VERSION}\n",
                self.desc.name
            );
            for &run_id in &run_ids {
                if let Ok(segment) = l2.get_run(run_id, pid, "node_log.txt") {
                    content.push_str(&String::from_utf8_lossy(&segment));
                }
            }
            db.insert("Logs", vec![pid.into(), content.into_bytes().into()])
                .map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        Ok(db)
    }
}

impl Drop for ExperiMaster {
    fn drop(&mut self) {
        for p in self.proxies.values() {
            p.close();
        }
        for s in self.tcp_servers.values() {
            s.shutdown();
        }
    }
}

/// [`ExecCtx`] implementation delegating to the master.
struct MasterCtx<'a> {
    master: &'a mut ExperiMaster,
}

impl ExecCtx for MasterCtx<'_> {
    fn now(&self) -> SimTime {
        self.master.sim.lock().now()
    }

    fn marker(&self) -> u64 {
        self.master.log.marker()
    }

    fn resolve(&self, v: &ValueRef) -> Option<LevelValue> {
        v.resolve(
            &self.master.treatment,
            &self.master.desc.factors.replication.id,
            self.master.replicate,
        )
    }

    fn satisfied(&self, selector: &EventSelector, since: u64) -> bool {
        self.master
            .log
            .satisfied(selector, since, &self.master.actors)
    }

    fn call_node(
        &mut self,
        platform_id: &str,
        method: &str,
        params: Vec<Value>,
    ) -> Result<Value, String> {
        if !self.master.proxies.contains_key(platform_id) {
            return Err(format!("no NodeManager for '{platform_id}'"));
        }
        self.master
            .retry_call(platform_id, method, params)
            .map_err(|e| e.to_string())
    }

    fn env_invoke(
        &mut self,
        name: &str,
        params: &HashMap<String, LevelValue>,
    ) -> Result<(), String> {
        let get_i = |key: &str| params.get(key).and_then(LevelValue::as_int);
        match name {
            "env_traffic_start" => {
                let spec = TrafficSpec {
                    pairs: get_i("random_pairs").unwrap_or(1).max(0) as usize,
                    rate_kbps: params
                        .get("bw")
                        .and_then(LevelValue::as_float)
                        .unwrap_or(100.0),
                    choice: match get_i("choice").unwrap_or(0) {
                        1 => PairChoice::ActingNodes,
                        2 => PairChoice::NonActingNodes,
                        _ => PairChoice::AllNodes,
                    },
                    switch_amount: get_i("random_switch_amount").unwrap_or(1).max(0) as usize,
                    seed: get_i("random_seed").unwrap_or(0) as u64,
                    switch_seed: get_i("random_switch_seed").unwrap_or(0) as u64,
                };
                let switch_idx = get_i("random_switch_seed").unwrap_or(0) as u64;
                let inject_packets = get_i("inject").unwrap_or(0) != 0;
                let packet_size = get_i("packet_size").unwrap_or(500).clamp(8, 60_000) as usize;
                let rate = spec.rate_kbps;
                let mut sim = self.master.sim.lock();
                let acting = self.master.actors.acting_sim_nodes();
                let mut gen = TrafficGenerator::new(spec, &sim, acting);
                // Pairs vary from run to run as determined by the switch
                // amount (paper §IV-D2); the switch index is the resolved
                // switch seed (the replicate number in Fig. 7).
                gen.switch_pairs(&sim, switch_idx);
                gen.start(&mut sim);
                if inject_packets {
                    // Real CBR packets in addition to the offered-load
                    // model: their captures make tag-gap loss analysis
                    // possible (§VI-A).
                    self.master.cbr_flows = excovery_netsim::cbr::install_cbr_flows(
                        &mut sim,
                        gen.pairs(),
                        rate,
                        packet_size,
                    );
                }
                drop(sim);
                self.master.traffic = Some(gen);
                self.emit_master_event("env_traffic_started");
                Ok(())
            }
            "env_traffic_stop" => {
                if let Some(mut t) = self.master.traffic.take() {
                    t.stop(&mut self.master.sim.lock());
                }
                let flows = std::mem::take(&mut self.master.cbr_flows);
                if !flows.is_empty() {
                    excovery_netsim::cbr::remove_cbr_flows(&mut self.master.sim.lock(), &flows);
                }
                self.emit_master_event("env_traffic_stopped");
                Ok(())
            }
            "env_drop_all_start" => {
                self.master.sim.lock().set_drop_all_everywhere(true);
                self.emit_master_event("env_drop_all_started");
                Ok(())
            }
            "env_drop_all_stop" => {
                self.master.sim.lock().set_drop_all_everywhere(false);
                self.emit_master_event("env_drop_all_stopped");
                Ok(())
            }
            other => match self.master.plugins.get_mut(other) {
                Some(plugin) => {
                    let mut sim = self.master.sim.lock();
                    let mut ctx = PluginCtx {
                        sim: &mut sim,
                        run_id: self.master.run_id,
                        measurements: &mut self.master.run_measurements,
                    };
                    plugin(params, &mut ctx)
                }
                None => Err(format!("unknown environment action '{other}'")),
            },
        }
    }

    fn emit_master_event(&mut self, name: &str) {
        let now = self.master.sim.lock().now();
        self.master
            .log
            .record(self.master.run_id, "master", now, name, vec![]);
    }

    fn schedule_fault(
        &mut self,
        platform_id: &str,
        fault: &ParsedFault,
        window: (SimTime, SimTime),
    ) -> Result<(), String> {
        self.master.fault_windows.push(FaultWindow {
            platform_id: platform_id.to_string(),
            spec: fault.spec.clone(),
            start: window.0,
            stop: window.1,
            handle: None,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_desc::ExperimentDescription;
    use excovery_netsim::link::LinkModel;

    fn small_config() -> EngineConfig {
        EngineConfig {
            topology: Topology::grid(3, 2),
            sim: SimulatorConfig {
                link_model: LinkModel {
                    base_loss: 0.0,
                    ..LinkModel::default()
                },
                ..SimulatorConfig::default()
            },
            run_timeout: SimDuration::from_secs(60),
            l2_root: Some(std::env::temp_dir().join(format!(
                "excovery-master-test-{}-{}",
                std::process::id(),
                rand::random::<u32>()
            ))),
            ..EngineConfig::grid_default()
        }
    }

    fn paper_desc(reps: u64) -> ExperimentDescription {
        use excovery_desc::process::{EventSelector, ProcessAction};
        let mut d = ExperimentDescription::paper_two_party_sd(reps);
        // Keep the load practical for unit tests: drop the traffic factors
        // and replace the traffic process with its synchronization skeleton.
        d.factors
            .factors
            .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
        d.env_processes[0].actions = vec![
            ProcessAction::EventFlag {
                value: "ready_to_init".into(),
            },
            ProcessAction::WaitForEvent(EventSelector::named("done")),
        ];
        d
    }

    #[test]
    fn one_shot_discovery_experiment_completes() {
        let desc = paper_desc(2);
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        assert_eq!(outcome.runs.len(), 2);
        for run in &outcome.runs {
            assert!(run.completed, "failures: {:?}", run.failures);
            assert!(run.events > 0);
            assert!(run.packets > 0);
            // The discovery itself is fast; the run ends promptly after.
            assert!(
                run.duration < SimDuration::from_secs(40),
                "{:?}",
                run.duration
            );
        }
        // Events of the paper's Fig. 11 sequence are present per run.
        let events = EventRow::read_run(&outcome.database, 0).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.event_type.as_str()).collect();
        for expected in [
            "run_init",
            "sd_init_done",
            "sd_start_publish",
            "ready_to_init",
            "sd_start_search",
            "sd_service_add",
            "done",
            "sd_stop_publish",
            "sd_exit_done",
            "run_exit",
        ] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn discovery_event_identifies_the_sm_node() {
        let desc = paper_desc(1);
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        let events = EventRow::read_run(&outcome.database, 0).unwrap();
        let add = events
            .iter()
            .find(|e| e.event_type == "sd_service_add" && e.node_id == "t9-105")
            .expect("SU discovered the service");
        let params = EventRow::decode_params(&add.parameter);
        assert!(
            params.iter().any(|(k, v)| k == "service" && v == "t9-157"),
            "{params:?}"
        );
    }

    #[test]
    fn packets_table_is_populated_and_conditioned() {
        let desc = paper_desc(1);
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        let packets = PacketRow::read_run(&outcome.database, 0).unwrap();
        assert!(!packets.is_empty());
        // Common times must be ordered and roughly within the run span.
        let infos = RunInfoRow::read_all(&outcome.database).unwrap();
        assert!(!infos.is_empty());
        for w in packets.windows(2) {
            assert!(w[0].common_time_ns <= w[1].common_time_ns);
        }
    }

    #[test]
    fn logs_table_holds_real_action_logs() {
        let desc = paper_desc(1);
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        let logs = outcome.database.table("Logs").unwrap();
        assert_eq!(logs.len(), 6, "one log per managed node");
        let sm_log = logs
            .rows()
            .iter()
            .find(|r| r[0].as_text() == Some("t9-157"))
            .map(|r| String::from_utf8_lossy(r[1].as_blob().unwrap()).into_owned())
            .expect("SM log present");
        for needle in ["run_init", "sd_init", "sd_start_publish", "run_exit"] {
            assert!(sm_log.contains(needle), "missing {needle} in\n{sm_log}");
        }
    }

    #[test]
    fn experiment_info_contains_description_xml() {
        let desc = paper_desc(1);
        let name = desc.name.clone();
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        let info = ExperimentInfo::read(&outcome.database).unwrap();
        assert_eq!(info.name, name);
        assert!(info.exp_xml.contains("<experiment"));
        assert!(info.ee_version.contains("excovery-rs"));
        // The stored XML parses back into the same description.
        let reparsed = excovery_desc::xmlio::from_xml(&info.exp_xml).unwrap();
        assert_eq!(reparsed.name, name);
    }

    #[test]
    fn max_runs_caps_execution() {
        let desc = paper_desc(10);
        let mut cfg = small_config();
        cfg.max_runs = Some(3);
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let outcome = master.execute().unwrap();
        assert_eq!(outcome.runs.len(), 3);
    }

    #[test]
    fn resume_skips_completed_runs() {
        let desc = paper_desc(4);
        let l2_root = std::env::temp_dir().join(format!(
            "excovery-resume-test-{}-{}",
            std::process::id(),
            rand::random::<u32>()
        ));
        // First pass: 2 of 4 runs, keeping level 2.
        let mut cfg = small_config();
        cfg.l2_root = Some(l2_root.clone());
        cfg.max_runs = Some(2);
        cfg.keep_l2 = true;
        let mut master = ExperiMaster::new(desc.clone(), cfg).unwrap();
        let first = master.execute().unwrap();
        assert_eq!(first.runs.len(), 2);
        // Second pass resumes at run 2.
        let mut cfg = small_config();
        cfg.l2_root = Some(l2_root.clone());
        cfg.resume = true;
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let second = master.execute().unwrap();
        // The outcome vector covers all four runs — the first two restored
        // from the level-2 journal, the last two freshly executed.
        assert_eq!(second.runs.len(), 4);
        assert_eq!(second.restored_runs, 2);
        assert_eq!(&second.runs[..2], &first.runs[..]);
        assert_eq!(second.runs[2].run_id, 2);
        // The packaged database now holds all four runs (levels merged).
        assert_eq!(
            RunInfoRow::run_ids(&second.database).unwrap(),
            vec![0, 1, 2, 3]
        );
        std::fs::remove_dir_all(&l2_root).ok();
    }

    #[test]
    fn traffic_factors_drive_the_generator() {
        // Full paper description including load factors, one replicate.
        let desc = ExperimentDescription::paper_two_party_sd(1);
        let mut cfg = small_config();
        cfg.max_runs = Some(1);
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let outcome = master.execute().unwrap();
        assert!(outcome.runs[0].completed, "{:?}", outcome.runs[0].failures);
        let events = EventRow::read_run(&outcome.database, 0).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.event_type.as_str()).collect();
        assert!(names.contains(&"env_traffic_started"), "{names:?}");
        assert!(names.contains(&"env_traffic_stopped"));
    }

    #[test]
    fn plugin_actions_are_invocable() {
        use excovery_desc::process::ProcessAction;
        let mut desc = paper_desc(1);
        desc.env_processes[0]
            .actions
            .insert(0, ProcessAction::invoke("my_custom_probe"));
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let hits = Arc::new(Mutex::new(0));
        let h2 = Arc::clone(&hits);
        master.register_plugin(
            "my_custom_probe",
            Box::new(move |_params, ctx| {
                *h2.lock() += 1;
                let pending = ctx.sim.pending_events() as u32;
                ctx.record_measurement(
                    "master",
                    "pending_events",
                    pending.to_string().into_bytes(),
                );
                Ok(())
            }),
        );
        let outcome = master.execute().unwrap();
        assert!(outcome.runs[0].completed);
        assert_eq!(*hits.lock(), 1);
        // The measurement landed in ExtraRunMeasurements.
        let table = outcome.database.table("ExtraRunMeasurements").unwrap();
        assert_eq!(table.len(), 1);
        let row = &table.rows()[0];
        assert_eq!(row[2].as_text(), Some("pending_events"));
    }

    #[test]
    fn unknown_env_action_fails_the_run_not_the_experiment() {
        use excovery_desc::process::ProcessAction;
        let mut desc = paper_desc(1);
        desc.env_processes[0]
            .actions
            .insert(0, ProcessAction::invoke("no_such_plugin"));
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        assert!(!outcome.runs[0].completed);
        assert!(
            outcome.runs[0]
                .failures
                .iter()
                .any(|f| f.contains("no_such_plugin")),
            "{:?}",
            outcome.runs[0].failures
        );
    }

    #[test]
    fn determinism_same_seed_same_database() {
        fn run_once() -> Vec<(u64, String, i64)> {
            let desc = paper_desc(2);
            let mut master = ExperiMaster::new(desc, small_config()).unwrap();
            let outcome = master.execute().unwrap();
            EventRow::read_all(&outcome.database)
                .unwrap()
                .into_iter()
                .map(|e| (e.run_id, e.event_type, e.common_time_ns))
                .collect()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn interface_fault_process_blocks_discovery() {
        use excovery_desc::process::{ActorProcess, ProcessAction};
        let mut desc = paper_desc(1);
        // A manipulation process on the SM: interface down for the whole
        // run (started, never stopped; run_exit cleans up).
        let mut fault = ActorProcess::new("fault_sm");
        fault.is_manipulation = true;
        fault.nodes_factor = Some("fact_nodes".into());
        fault.actions = vec![ProcessAction::invoke("fault_interface_start")];
        // Bind the fault process to actor0's node by adding it to the map.
        // Reuse actor0's assignment: give the fault process the same actor id.
        fault.actor_id = "actor0".into();
        // Rename to avoid duplicate actor ids (validation): append actions
        // to the SM process instead — simpler and equivalent.
        let sm = desc
            .node_processes
            .iter_mut()
            .find(|p| p.actor_id == "actor0")
            .unwrap();
        sm.actions
            .insert(0, ProcessAction::invoke("fault_interface_start"));
        let mut cfg = small_config();
        cfg.run_timeout = SimDuration::from_secs(45);
        let mut master = ExperiMaster::new(desc, cfg).unwrap();
        let outcome = master.execute().unwrap();
        let events = EventRow::read_run(&outcome.database, 0).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.event_type.as_str()).collect();
        assert!(names.contains(&"fault_interface_started"));
        assert!(
            !names.contains(&"sd_service_add"),
            "fault must prevent discovery: {names:?}"
        );
        // The SU's 30 s deadline fired and the run still completed.
        assert!(names.contains(&"done"));
        assert!(outcome.runs[0].completed, "{:?}", outcome.runs[0].failures);
    }

    #[test]
    fn windowed_fault_applies_and_clears() {
        use excovery_desc::process::ProcessAction;
        let mut desc = paper_desc(1);
        let sm = desc
            .node_processes
            .iter_mut()
            .find(|p| p.actor_id == "actor0")
            .unwrap();
        // Interface down for the first 3 seconds of the run only.
        sm.actions.insert(
            0,
            ProcessAction::invoke_with(
                "fault_interface_start",
                [
                    ("duration".to_string(), ValueRef::int(3)),
                    ("rate".to_string(), ValueRef::Lit(LevelValue::Float(1.0))),
                ],
            ),
        );
        let mut master = ExperiMaster::new(desc, small_config()).unwrap();
        let outcome = master.execute().unwrap();
        assert!(outcome.runs[0].completed, "{:?}", outcome.runs[0].failures);
        let events = EventRow::read_run(&outcome.database, 0).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.event_type.as_str()).collect();
        assert!(names.contains(&"fault_interface_started"), "{names:?}");
        assert!(names.contains(&"fault_stopped"));
        // Discovery succeeds after the window clears (SU retries queries).
        assert!(names.contains(&"sd_service_add"), "{names:?}");
    }
}
