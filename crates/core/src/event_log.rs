//! The master's event list and `wait_for_event` matching (paper §IV-B1,
//! §IV-C2).
//!
//! Events are recorded with the *local* timestamp of the node they occur on
//! plus a master-assigned sequence number that provides the causal order
//! the flow-control functions operate on (`wait_marker` stamps a sequence
//! position; the next `wait_for_event` considers only later events).

use crate::binding::ResolvedActors;
use excovery_desc::process::EventSelector;
use excovery_netsim::SimTime;
use serde::{Deserialize, Serialize};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedEvent {
    /// Master-assigned, strictly increasing sequence number.
    pub seq: u64,
    /// Run the event belongs to.
    pub run_id: u64,
    /// Platform id of the node the event occurred on (`master` for
    /// master-originated lifecycle events).
    pub node: String,
    /// Local clock reading at the node, nanoseconds.
    pub local_time_ns: u64,
    /// Event name.
    pub name: String,
    /// Event parameters.
    pub params: Vec<(String, String)>,
}

/// Append-only event list for one run.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<RecordedEvent>,
    next_seq: u64,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, assigning its sequence number.
    pub fn record(
        &mut self,
        run_id: u64,
        node: impl Into<String>,
        local_time: SimTime,
        name: impl Into<String>,
        params: Vec<(String, String)>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(RecordedEvent {
            seq,
            run_id,
            node: node.into(),
            local_time_ns: local_time.as_nanos(),
            name: name.into(),
            params,
        });
        seq
    }

    /// All events so far.
    pub fn events(&self) -> &[RecordedEvent] {
        &self.events
    }

    /// Sequence position a `wait_marker` stamps right now.
    pub fn marker(&self) -> u64 {
        self.next_seq
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears the log (new run).
    pub fn clear(&mut self) {
        self.events.clear();
        // seq keeps counting: markers from a previous run can never match.
    }

    /// Sequence numbers reserved per run: no run records anywhere near this
    /// many events, so `run_id * RUN_SEQ_STRIDE` is always ahead of every
    /// earlier run's events.
    pub const RUN_SEQ_STRIDE: u64 = 1 << 20;

    /// Jumps the counter to the canonical base for `run_id`.
    ///
    /// Within one master lifetime this only ever moves the counter forward
    /// (monotonicity keeps stale markers unmatchable), but it also makes the
    /// sequence numbers of a run a pure function of the run itself rather
    /// than of how many runs this master executed before it — a resumed
    /// master must journal byte-identical events for the runs it picks up.
    pub fn align_for_run(&mut self, run_id: u64) {
        self.next_seq = self
            .next_seq
            .max(run_id.saturating_mul(Self::RUN_SEQ_STRIDE));
    }

    /// Evaluates an [`EventSelector`] against events with `seq >= marker`.
    ///
    /// Semantics (paper Figs. 9/10):
    /// * `from` restricts the originating node; with `instance="all"` the
    ///   event must have been seen from **every** selected node.
    /// * `param` restricts a parameter value to the platform id of the
    ///   selected node(s); with `instance="all"` **every** selected node
    ///   must appear as a parameter of some matching event ("finish when
    ///   all SMs have been discovered").
    /// * With both present, the requirements combine: for each required
    ///   parameter node there must be a matching event from an allowed
    ///   origin.
    pub fn satisfied(
        &self,
        selector: &EventSelector,
        marker: u64,
        actors: &ResolvedActors,
    ) -> bool {
        let candidates: Vec<&RecordedEvent> = self
            .events
            .iter()
            .filter(|e| e.seq >= marker && e.name == selector.event)
            .collect();
        if candidates.is_empty() {
            return false;
        }

        let from_ids: Option<Vec<String>> = selector
            .from
            .as_ref()
            .map(|sel| actors.select_platform_ids(sel));
        let param_ids: Option<Vec<String>> = selector
            .param
            .as_ref()
            .map(|sel| actors.select_platform_ids(sel));

        let origin_ok =
            |e: &RecordedEvent, allowed: &[String]| allowed.iter().any(|a| a == &e.node);
        let param_matches =
            |e: &RecordedEvent, node_id: &str| e.params.iter().any(|(_, v)| v == node_id);

        match (&from_ids, &param_ids) {
            (None, None) => true,
            (Some(from), None) => {
                if from.is_empty() {
                    return false;
                }
                if selector.require_all {
                    from.iter().all(|f| candidates.iter().any(|e| &e.node == f))
                } else {
                    candidates.iter().any(|e| origin_ok(e, from))
                }
            }
            (None, Some(params)) => {
                if params.is_empty() {
                    return false;
                }
                if selector.require_all {
                    params
                        .iter()
                        .all(|p| candidates.iter().any(|e| param_matches(e, p)))
                } else {
                    candidates
                        .iter()
                        .any(|e| params.iter().any(|p| param_matches(e, p)))
                }
            }
            (Some(from), Some(params)) => {
                if from.is_empty() || params.is_empty() {
                    return false;
                }
                let from_candidates: Vec<&&RecordedEvent> =
                    candidates.iter().filter(|e| origin_ok(e, from)).collect();
                if selector.require_all {
                    params
                        .iter()
                        .all(|p| from_candidates.iter().any(|e| param_matches(e, p)))
                } else {
                    from_candidates
                        .iter()
                        .any(|e| params.iter().any(|p| param_matches(e, p)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::PlatformBinding;
    use excovery_desc::process::NodeSelector;
    use excovery_desc::ExperimentDescription;

    fn actors() -> ResolvedActors {
        let desc = ExperimentDescription::paper_two_party_sd(1);
        let binding = PlatformBinding::new(&desc.platform, 6).unwrap();
        let plan = desc.plan();
        ResolvedActors::resolve(&desc, &plan.runs[0].treatment, &binding).unwrap()
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn record_assigns_increasing_seq() {
        let mut log = EventLog::new();
        let s0 = log.record(0, "n0", t(5), "a", vec![]);
        let s1 = log.record(0, "n0", t(3), "b", vec![]);
        assert!(s1 > s0);
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].name, "a");
    }

    #[test]
    fn plain_name_match() {
        let mut log = EventLog::new();
        let actors = actors();
        let sel = EventSelector::named("ready_to_init");
        assert!(!log.satisfied(&sel, 0, &actors));
        log.record(0, "master", t(1), "ready_to_init", vec![]);
        assert!(log.satisfied(&sel, 0, &actors));
    }

    #[test]
    fn marker_hides_earlier_events() {
        let mut log = EventLog::new();
        let actors = actors();
        log.record(0, "master", t(1), "done", vec![]);
        let marker = log.marker();
        let sel = EventSelector::named("done");
        assert!(log.satisfied(&sel, 0, &actors));
        assert!(!log.satisfied(&sel, marker, &actors));
        log.record(0, "master", t(2), "done", vec![]);
        assert!(log.satisfied(&sel, marker, &actors));
    }

    #[test]
    fn from_dependency_restricts_origin() {
        let mut log = EventLog::new();
        let actors = actors();
        // actor0 instance -> platform id t9-157
        let sel = EventSelector::named("sd_start_publish").from_nodes(NodeSelector::all("actor0"));
        log.record(0, "t9-105", t(1), "sd_start_publish", vec![]);
        assert!(!log.satisfied(&sel, 0, &actors), "wrong origin");
        log.record(0, "t9-157", t(2), "sd_start_publish", vec![]);
        assert!(log.satisfied(&sel, 0, &actors));
    }

    #[test]
    fn param_dependency_requires_all_instances() {
        let mut log = EventLog::new();
        let actors = actors();
        // Fig. 10: sd_service_add from actor1 nodes with params covering
        // all actor0 nodes (the SMs).
        let sel = EventSelector::named("sd_service_add")
            .from_nodes(NodeSelector::all("actor1"))
            .with_param(NodeSelector::all("actor0"));
        log.record(
            0,
            "t9-105",
            t(1),
            "sd_service_add",
            vec![("service".into(), "someone-else".into())],
        );
        assert!(
            !log.satisfied(&sel, 0, &actors),
            "param names wrong service"
        );
        log.record(
            0,
            "t9-105",
            t(2),
            "sd_service_add",
            vec![("service".into(), "t9-157".into())],
        );
        assert!(log.satisfied(&sel, 0, &actors));
    }

    #[test]
    fn param_event_from_wrong_origin_does_not_satisfy() {
        let mut log = EventLog::new();
        let actors = actors();
        let sel = EventSelector::named("sd_service_add")
            .from_nodes(NodeSelector::all("actor1"))
            .with_param(NodeSelector::all("actor0"));
        // Right params but emitted by the SM itself, not the SU.
        log.record(
            0,
            "t9-157",
            t(1),
            "sd_service_add",
            vec![("service".into(), "t9-157".into())],
        );
        assert!(!log.satisfied(&sel, 0, &actors));
    }

    #[test]
    fn unknown_actor_selector_never_satisfies() {
        let mut log = EventLog::new();
        let actors = actors();
        log.record(0, "t9-157", t(1), "x", vec![]);
        let sel = EventSelector::named("x").from_nodes(NodeSelector::all("ghost"));
        assert!(!log.satisfied(&sel, 0, &actors));
    }

    #[test]
    fn align_for_run_is_position_independent() {
        // Two logs with different histories agree on the seq numbers of a
        // given run once aligned — the property crash-resume relies on.
        let mut veteran = EventLog::new();
        for r in 0..2 {
            veteran.align_for_run(r);
            veteran.record(r, "n", t(1), "e", vec![]);
        }
        veteran.align_for_run(2);
        let mut fresh = EventLog::new();
        fresh.align_for_run(2);
        assert_eq!(
            veteran.record(2, "n", t(2), "e", vec![]),
            fresh.record(2, "n", t(2), "e", vec![]),
        );
        // Alignment never moves the counter backwards.
        let mut log = EventLog::new();
        log.align_for_run(3);
        let high = log.marker();
        log.align_for_run(1);
        assert_eq!(log.marker(), high);
    }

    #[test]
    fn clear_keeps_seq_monotone() {
        let mut log = EventLog::new();
        let actors = actors();
        log.record(0, "n", t(1), "e", vec![]);
        let marker = log.marker();
        log.clear();
        assert!(log.is_empty());
        let s = log.record(1, "n", t(2), "e", vec![]);
        assert!(s >= marker, "sequence must not restart");
        assert!(log.satisfied(&EventSelector::named("e"), marker, &actors));
    }
}
