//! Ready-made experiment descriptions for the case-study experiments.
//!
//! Each builder returns a complete, valid [`ExperimentDescription`] that
//! the benchmark harnesses (and examples) instantiate. They are variations
//! of the paper's two-party SD experiment (Figs. 4–10), extended with the
//! fault-injection and environment-manipulation constructs of §IV-D.

use excovery_desc::factors::{ActorAssignment, Factor, FactorList, FactorUsage, LevelValue};
use excovery_desc::platform::PlatformSpec;
use excovery_desc::process::{
    ActorProcess, EnvProcess, EventSelector, NodeSelector, ProcessAction, ValueRef,
};
use excovery_desc::ExperimentDescription;
use excovery_netsim::rng::derive_seed_indexed;
use excovery_netsim::topology::Topology;

/// A chain topology where simulator nodes 0 and 1 (the two actor nodes of
/// [`hop_distance`]) sit `hops` links apart, with unmanaged relays between
/// them: node 0 at position 0, node 1 at position `hops`, relays filling
/// positions 1..hops.
pub fn chain_between_actors(hops: usize) -> Topology {
    assert!(hops >= 1, "need at least one hop");
    let mut positions = vec![(0.0, 0.0), (hops as f64, 0.0)];
    for k in 1..hops {
        positions.push((k as f64, 0.0));
    }
    Topology::from_positions(positions, 1.01)
}

/// The SM role process of Fig. 9.
pub fn sm_process(actor_id: &str, nodes_factor: &str) -> ActorProcess {
    let mut p = ActorProcess::new(actor_id);
    p.name = Some("SM".into());
    p.nodes_factor = Some(nodes_factor.into());
    p.actions = vec![
        ProcessAction::invoke("sd_init"),
        ProcessAction::invoke("sd_start_publish"),
        ProcessAction::WaitForEvent(EventSelector::named("done")),
        ProcessAction::invoke("sd_stop_publish"),
        ProcessAction::invoke("sd_exit"),
    ];
    p
}

/// The SU role process of Fig. 10, waiting for all instances of
/// `sm_actor` within `deadline_s` seconds.
pub fn su_process(
    actor_id: &str,
    nodes_factor: &str,
    sm_actor: &str,
    deadline_s: i64,
) -> ActorProcess {
    let mut p = ActorProcess::new(actor_id);
    p.name = Some("SU".into());
    p.nodes_factor = Some(nodes_factor.into());
    p.actions = vec![
        ProcessAction::WaitForEvent(
            EventSelector::named("sd_start_publish").from_nodes(NodeSelector::all(sm_actor)),
        ),
        ProcessAction::WaitForEvent(EventSelector::named("ready_to_init")),
        ProcessAction::invoke("sd_init"),
        ProcessAction::WaitMarker,
        ProcessAction::invoke("sd_start_search"),
        ProcessAction::WaitForEvent(
            EventSelector::named("sd_service_add")
                .from_nodes(NodeSelector::all(actor_id))
                .with_param(NodeSelector::all(sm_actor))
                .with_timeout(ValueRef::int(deadline_s)),
        ),
        ProcessAction::EventFlag {
            value: "done".into(),
        },
        ProcessAction::invoke("sd_stop_search"),
        ProcessAction::invoke("sd_exit"),
    ];
    p
}

/// Minimal environment process: release `ready_to_init`, wait for `done`.
pub fn env_sync_process() -> EnvProcess {
    EnvProcess {
        actions: vec![
            ProcessAction::EventFlag {
                value: "ready_to_init".into(),
            },
            ProcessAction::WaitForEvent(EventSelector::named("done")),
        ],
    }
}

/// A linear platform: `A` and `B` at the ends of an `n`-node chain
/// (`hops = n - 1`), all intermediate nodes unmanaged relays.
fn chain_platform() -> PlatformSpec {
    PlatformSpec::new()
        .with_actor_node("t9-157", "10.0.0.157", "A")
        .with_actor_node("t9-105", "10.0.0.105", "B")
}

fn base_two_actor_description(name: &str, replications: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::new(name);
    d.abstract_nodes = vec!["A".into(), "B".into()];
    d.params = vec![
        ("sd_architecture".into(), "two-party".into()),
        ("sd_protocol".into(), "zeroconf".into()),
        ("sd_scheme".into(), "active".into()),
    ];
    d.factors = FactorList::new()
        .with_factor(Factor::actor_map(
            "fact_nodes",
            vec![
                ActorAssignment {
                    actor_id: "actor0".into(),
                    instances: vec!["A".into()],
                },
                ActorAssignment {
                    actor_id: "actor1".into(),
                    instances: vec!["B".into()],
                },
                // The fault process runs on the SM node.
                ActorAssignment {
                    actor_id: "fault0".into(),
                    instances: vec!["A".into()],
                },
            ],
        ))
        .with_replication("fact_replication_id", replications);
    d.node_processes = vec![
        sm_process("actor0", "fact_nodes"),
        su_process("actor1", "fact_nodes", "actor0", 30),
    ];
    d.env_processes = vec![env_sync_process()];
    d.platform = chain_platform();
    d
}

/// **CS-1**: responsiveness under injected message loss.
///
/// A message-loss fault on the SM node with probability swept through
/// `loss_levels` (a constant factor), active for the whole run.
pub fn loss_sweep(loss_levels: &[f64], replications: u64, seed: u64) -> ExperimentDescription {
    let mut d = base_two_actor_description("cs1-loss-sweep", replications);
    d.seed = seed;
    d.factors.factors.push(Factor {
        id: "fact_loss".into(),
        usage: FactorUsage::Constant,
        level_type: "float".into(),
        levels: loss_levels.iter().map(|&p| LevelValue::Float(p)).collect(),
        description: Some("message loss probability on the SM".into()),
    });
    let mut fault = ActorProcess::new("fault0");
    fault.is_manipulation = true;
    fault.nodes_factor = Some("fact_nodes".into());
    fault.actions = vec![
        ProcessAction::invoke_with(
            "fault_message_loss_start",
            [
                ("probability".to_string(), ValueRef::factor("fact_loss")),
                ("direction".to_string(), ValueRef::text("both")),
            ],
        ),
        ProcessAction::WaitForEvent(EventSelector::named("done")),
        ProcessAction::invoke("fault_message_loss_stop"),
    ];
    d.node_processes.push(fault);
    d
}

/// Splits [`loss_sweep`] into one single-level description per loss level
/// so a campaign runner can fan the treatments across workers (each
/// treatment is an independent experiment with its own derived seed).
///
/// Shard `i` runs with `derive_seed_indexed(seed, "loss_shard", i)` — a
/// pure function of the parent seed, so the shard list is reproducible and
/// independent of execution order.
pub fn loss_sweep_shards(
    loss_levels: &[f64],
    replications: u64,
    seed: u64,
) -> Vec<ExperimentDescription> {
    loss_levels
        .iter()
        .enumerate()
        .map(|(i, &level)| {
            let mut d = loss_sweep(
                &[level],
                replications,
                derive_seed_indexed(seed, "loss_shard", i as u64),
            );
            d.name = format!("cs1-loss-sweep-{level}");
            d
        })
        .collect()
}

/// One [`hop_distance`] description per hop count in `hops`, with derived
/// per-shard seeds — the job list CS-3 fans across a campaign. Pair each
/// returned description with [`chain_between_actors`] of the same hop
/// count.
pub fn hop_distance_shards(
    hops: std::ops::RangeInclusive<usize>,
    replications: u64,
    seed: u64,
) -> Vec<(usize, ExperimentDescription)> {
    hops.map(|h| {
        (
            h,
            hop_distance(
                replications,
                derive_seed_indexed(seed, "hop_shard", h as u64),
            ),
        )
    })
    .collect()
}

/// **CS-2**: responsiveness under generated background load — the paper's
/// own factor set (Fig. 5) with pairs and data-rate factors.
pub fn load_sweep(
    pairs_levels: &[i64],
    bw_levels: &[i64],
    replications: u64,
    seed: u64,
) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(replications);
    d.name = "cs2-load-sweep".into();
    d.seed = seed;
    if let Some(f) = d.factors.factors.iter_mut().find(|f| f.id == "fact_pairs") {
        f.levels = pairs_levels.iter().map(|&v| LevelValue::Int(v)).collect();
    }
    if let Some(f) = d.factors.factors.iter_mut().find(|f| f.id == "fact_bw") {
        f.levels = bw_levels.iter().map(|&v| LevelValue::Int(v)).collect();
    }
    d
}

/// **CS-3**: responsiveness over hop distance. The returned description is
/// topology-agnostic; instantiate it on `Topology::chain(hops + 1)`.
pub fn hop_distance(replications: u64, seed: u64) -> ExperimentDescription {
    let mut d = base_two_actor_description("cs3-hop-distance", replications);
    d.seed = seed;
    // No fault process needed: strip fault0 from the actor map.
    if let Some(f) = d.factors.factors.iter_mut().find(|f| f.id == "fact_nodes") {
        if let Some(LevelValue::ActorMap(m)) = f.levels.first_mut() {
            m.retain(|a| a.actor_id != "fault0");
        }
    }
    d
}

/// **CS-4**: `n_sm` service managers, one SU that must find all of them,
/// and optionally an SCM node (three-party/hybrid architectures).
pub fn multi_sm(
    n_sm: usize,
    architecture: &str,
    with_scm: bool,
    replications: u64,
    seed: u64,
) -> ExperimentDescription {
    let mut d = ExperimentDescription::new(format!("cs4-{architecture}-{n_sm}sm"));
    d.seed = seed;
    d.params = vec![
        ("sd_architecture".into(), architecture.into()),
        ("sd_protocol".into(), "zeroconf".into()),
        ("sd_scheme".into(), "active".into()),
    ];
    let sm_nodes: Vec<String> = (0..n_sm).map(|i| format!("M{i}")).collect();
    d.abstract_nodes = sm_nodes.clone();
    d.abstract_nodes.push("U".into());
    let mut assignments = vec![
        ActorAssignment {
            actor_id: "actor0".into(),
            instances: sm_nodes.clone(),
        },
        ActorAssignment {
            actor_id: "actor1".into(),
            instances: vec!["U".into()],
        },
    ];
    let mut platform = PlatformSpec::new();
    for (i, m) in sm_nodes.iter().enumerate() {
        platform =
            platform.with_actor_node(format!("sm-{i:02}"), format!("10.0.1.{}", i + 1), m.clone());
    }
    platform = platform.with_actor_node("su-00", "10.0.2.1", "U");
    if with_scm {
        d.abstract_nodes.push("C".into());
        assignments.push(ActorAssignment {
            actor_id: "actor2".into(),
            instances: vec!["C".into()],
        });
        platform = platform.with_actor_node("scm-00", "10.0.3.1", "C");
    }
    d.platform = platform;
    d.factors = FactorList::new()
        .with_factor(Factor::actor_map("fact_nodes", assignments))
        .with_replication("fact_replication_id", replications);
    d.node_processes = vec![
        sm_process("actor0", "fact_nodes"),
        su_process("actor1", "fact_nodes", "actor0", 30),
    ];
    if with_scm {
        let mut scm = ActorProcess::new("actor2");
        scm.name = Some("SCM".into());
        scm.nodes_factor = Some("fact_nodes".into());
        scm.actions = vec![
            ProcessAction::invoke("sd_init"),
            ProcessAction::WaitForEvent(EventSelector::named("done")),
            ProcessAction::invoke("sd_exit"),
        ];
        d.node_processes.push(scm);
        // Give the SCM time to advertise before the SU initializes.
        d.env_processes = vec![EnvProcess {
            actions: vec![
                ProcessAction::WaitForTime {
                    seconds: ValueRef::int(4),
                },
                ProcessAction::EventFlag {
                    value: "ready_to_init".into(),
                },
                ProcessAction::WaitForEvent(EventSelector::named("done")),
            ],
        }];
    } else {
        d.env_processes = vec![env_sync_process()];
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_desc::validate::validate_strict;

    #[test]
    fn all_scenarios_validate() {
        validate_strict(&loss_sweep(&[0.0, 0.3], 2, 1)).unwrap();
        validate_strict(&load_sweep(&[5, 20], &[10, 100], 2, 1)).unwrap();
        validate_strict(&hop_distance(2, 1)).unwrap();
        for arch in ["two-party", "three-party", "hybrid"] {
            validate_strict(&multi_sm(3, arch, arch != "two-party", 2, 1)).unwrap();
        }
    }

    #[test]
    fn shards_are_deterministic_and_distinct() {
        let a = loss_sweep_shards(&[0.0, 0.2, 0.4], 5, 77);
        let b = loss_sweep_shards(&[0.0, 0.2, 0.4], 5, 77);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let seeds: std::collections::HashSet<u64> = a.iter().map(|d| d.seed).collect();
        assert_eq!(seeds.len(), 3, "per-shard seeds must differ");
        for d in &a {
            validate_strict(d).unwrap();
            assert_eq!(d.plan().len(), 5, "one level x replications");
        }
        let h = hop_distance_shards(1..=4, 3, 9);
        assert_eq!(h.len(), 4);
        assert_eq!(h, hop_distance_shards(1..=4, 3, 9));
        for (hops, d) in &h {
            validate_strict(d).unwrap();
            assert!(*hops >= 1);
        }
    }

    #[test]
    fn loss_sweep_plan_size() {
        let d = loss_sweep(&[0.0, 0.2, 0.4], 10, 1);
        assert_eq!(d.plan().len(), 30);
    }

    #[test]
    fn scenarios_roundtrip_through_xml() {
        for d in [
            loss_sweep(&[0.0, 0.5], 2, 9),
            load_sweep(&[5], &[10, 50], 2, 9),
            hop_distance(2, 9),
            multi_sm(2, "three-party", true, 2, 9),
        ] {
            let xml = excovery_desc::xmlio::to_xml(&d);
            let back = excovery_desc::xmlio::from_xml(&xml).unwrap();
            assert_eq!(back, d, "XML round-trip for {}", d.name);
        }
    }

    #[test]
    fn chain_between_actors_hop_counts() {
        use excovery_netsim::NodeId;
        for hops in 1..=6 {
            let t = chain_between_actors(hops);
            assert_eq!(
                t.hop_count(NodeId(0), NodeId(1)),
                Some(hops as u32),
                "hops={hops}"
            );
            assert!(t.is_connected());
        }
    }

    #[test]
    fn multi_sm_maps_all_managers() {
        let d = multi_sm(4, "two-party", false, 1, 1);
        let map = d.factors.factor("fact_nodes").unwrap();
        let lv = map.levels[0].as_actor_map().unwrap();
        assert_eq!(lv[0].instances.len(), 4);
        assert_eq!(d.platform.actor_nodes.len(), 5);
    }
}
