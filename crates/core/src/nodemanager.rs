//! The NodeManager — the node-side execution component (paper §VI-A).
//!
//! "The NodeManager is the central component of the nodes participating in
//! experiments. It handles remote procedure calls coming from ExperiMaster.
//! Basic procedures exposed via RPC are the actions for management, fault
//! injection, environment manipulation and the experiment process actions."
//!
//! Each NodeManager binds one platform node; its procedures translate into
//! actions on the shared simulated platform: SD commands to the local
//! protocol agent (the prototype delegates these to Avahi), filter rules
//! for fault injection, event flags, and management operations for the run
//! lifecycle.

use crate::binding::PlatformBinding;
use excovery_netsim::filter::{Direction, FilterRule, RuleId};
use excovery_netsim::{EventParams, NodeId, SimDuration, Simulator};
use excovery_rpc::{Channel, Fault, NodeProxy, ServerRegistry, Value};
use excovery_sd::{
    sd_command, Role, SdAgent, SdCommand, SdConfig, ServiceDescription, ServiceType, SD_PORT,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared handle to the simulated platform.
pub type SharedSim = Arc<Mutex<Simulator>>;

/// Builds the NodeManager for one platform node and returns the master-side
/// proxy to it.
pub struct NodeManager;

fn p_str(params: &[Value], i: usize, what: &str) -> Result<String, Fault> {
    params
        .get(i)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| Fault::new(400, format!("missing string param {i} ({what})")))
}

fn p_f64(v: Option<&Value>) -> Option<f64> {
    v.and_then(Value::as_double)
}

impl NodeManager {
    /// Creates the registry of procedures for `node` (platform id
    /// `platform_id`) and wraps it into a [`NodeProxy`] over the in-memory
    /// channel.
    pub fn spawn(
        node: NodeId,
        platform_id: &str,
        sim: SharedSim,
        binding: Arc<PlatformBinding>,
        sd_config: SdConfig,
    ) -> NodeProxy {
        let reg = Self::registry(node, platform_id, sim, binding, sd_config);
        NodeProxy::new(platform_id, Channel::new(reg))
    }

    /// Creates the registry of procedures for `node`. The registry is
    /// transport-agnostic: serve it in-process via [`Channel`] or over
    /// sockets via `excovery_rpc::TcpRpcServer`.
    pub fn registry(
        node: NodeId,
        platform_id: &str,
        sim: SharedSim,
        binding: Arc<PlatformBinding>,
        sd_config: SdConfig,
    ) -> ServerRegistry {
        let mut reg = ServerRegistry::new();
        let fault_handles: Arc<Mutex<HashMap<i64, RuleId>>> = Arc::new(Mutex::new(HashMap::new()));
        let next_handle = Arc::new(Mutex::new(0i64));
        let pid = platform_id.to_string();

        // Raw per-node action log: every RPC is appended with the node's
        // local clock reading (the content of the Logs table, §IV-F).
        // `collect_log` itself is excluded: the master drains the log at
        // run boundaries, and recording the drain would make the segment
        // depend on when (and how often) collection happened rather than
        // on what the run did.
        let log: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
        {
            let sim = Arc::clone(&sim);
            let log = Arc::clone(&log);
            let pid = pid.clone();
            reg.set_observer(move |call| {
                // Procedure names form a fixed vocabulary (the registry
                // below), so the label stays low-cardinality.
                if excovery_obs::enabled() {
                    excovery_obs::global()
                        .counter(
                            "nodemanager_calls_total",
                            &[("method", call.method.as_str())],
                        )
                        .inc();
                }
                if call.method == "collect_log" {
                    return;
                }
                let local = {
                    let s = sim.lock();
                    s.clock(node).local_time(s.now())
                };
                log.lock().push_str(&format!(
                    "[{local}] {pid} <- {}({} params)\n",
                    call.method,
                    call.params.len()
                ));
            });
        }
        {
            // `collect_log(true)` drains: it returns the segment accumulated
            // since the previous drain and clears it, so the master can
            // persist disjoint per-run segments to level 2. Dedup replay of
            // a retried drain returns the recorded segment without clearing
            // twice, keeping the drain exactly-once under chaos.
            let log = Arc::clone(&log);
            reg.register("collect_log", move |params| {
                let drain = params.first().and_then(Value::as_bool).unwrap_or(false);
                let mut l = log.lock();
                if drain {
                    Ok(Value::str(std::mem::take(&mut *l)))
                } else {
                    Ok(Value::str(l.clone()))
                }
            });
        }

        // ---- management ---------------------------------------------------
        {
            let sim = Arc::clone(&sim);
            let cfg = sd_config.clone();
            reg.register("experiment_init", move |_params| {
                let mut s = sim.lock();
                s.install_agent(node, SD_PORT, Box::new(SdAgent::new(cfg.clone(), SD_PORT)));
                Ok(Value::Bool(true))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("experiment_exit", move |_params| {
                sim.lock().remove_agent(node, SD_PORT);
                Ok(Value::Bool(true))
            });
        }
        {
            let sim = Arc::clone(&sim);
            let handles = Arc::clone(&fault_handles);
            reg.register("run_init", move |_params| {
                let mut s = sim.lock();
                // Reset to a defined initial condition (§IV-C1): drop rules
                // from previous runs; captures are drained by the master.
                let mut cleared = 0i64;
                for (_, rule) in handles.lock().drain() {
                    s.remove_filter(node, rule);
                    cleared += 1;
                }
                if cleared > 0 && excovery_obs::enabled() {
                    excovery_obs::global()
                        .gauge("nodemanager_fault_rules_active", &[])
                        .add(-cleared);
                }
                s.set_drop_all(node, false);
                Ok(Value::Bool(true))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("measure_sync", move |_params| {
                let mut s = sim.lock();
                let m = s.measure_sync(node);
                Ok(Value::Struct(vec![
                    (
                        "offset_ns".into(),
                        Value::str(m.estimated_offset_ns.to_string()),
                    ),
                    (
                        "uncertainty_ns".into(),
                        Value::str(m.uncertainty_ns.to_string()),
                    ),
                ]))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("run_exit", move |_params| {
                let mut s = sim.lock();
                s.set_drop_all(node, false);
                Ok(Value::Bool(true))
            });
        }

        // ---- experiment process actions (SD, §V) ---------------------------
        let sd = |sim: &SharedSim, node: NodeId, cmd: SdCommand| -> Result<Value, Fault> {
            let ok = sd_command(&mut sim.lock(), node, cmd);
            if ok {
                Ok(Value::Bool(true))
            } else {
                Err(Fault::new(
                    500,
                    "no SD agent installed (experiment_init missing?)",
                ))
            }
        };
        {
            let sim = Arc::clone(&sim);
            reg.register("sd_init", move |params| {
                let role_str = p_str(params, 0, "role")?;
                let role = Role::parse(&role_str)
                    .ok_or_else(|| Fault::new(400, format!("unknown role '{role_str}'")))?;
                sd(&sim, node, SdCommand::Init(role))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("sd_exit", move |_params| sd(&sim, node, SdCommand::Exit));
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("sd_start_search", move |params| {
                let stype = ServiceType::new(p_str(params, 0, "stype")?);
                sd(&sim, node, SdCommand::StartSearch(stype))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("sd_stop_search", move |params| {
                let stype = ServiceType::new(p_str(params, 0, "stype")?);
                sd(&sim, node, SdCommand::StopSearch(stype))
            });
        }
        {
            let sim = Arc::clone(&sim);
            let instance = pid.clone();
            reg.register("sd_start_publish", move |params| {
                let stype = ServiceType::new(p_str(params, 0, "stype")?);
                // The service identifier is the publishing node's platform
                // id, so `sd_service_add` parameters identify the SM node
                // (needed by Fig. 10's param_dependency).
                let desc = ServiceDescription::new(instance.clone(), stype, node);
                sd(&sim, node, SdCommand::StartPublish(desc))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("sd_stop_publish", move |params| {
                let stype = ServiceType::new(p_str(params, 0, "stype")?);
                sd(&sim, node, SdCommand::StopPublish(stype))
            });
        }
        {
            let sim = Arc::clone(&sim);
            let instance = pid.clone();
            reg.register("sd_update_publication", move |params| {
                let stype = ServiceType::new(p_str(params, 0, "stype")?);
                let port: u16 = params
                    .get(1)
                    .and_then(Value::as_int)
                    .map(|v| v as u16)
                    .unwrap_or(80);
                let mut desc = ServiceDescription::new(instance.clone(), stype, node);
                desc.service_port = port;
                sd(&sim, node, SdCommand::UpdatePublication(desc))
            });
        }

        // ---- events --------------------------------------------------------
        {
            let sim = Arc::clone(&sim);
            reg.register("event_flag", move |params| {
                let name = p_str(params, 0, "event name")?;
                sim.lock()
                    .emit_external_event(node, name, EventParams::new());
                Ok(Value::Bool(true))
            });
        }

        // ---- fault injection (§IV-D1) ---------------------------------------
        {
            let sim = Arc::clone(&sim);
            let handles = Arc::clone(&fault_handles);
            let next = Arc::clone(&next_handle);
            let binding = Arc::clone(&binding);
            reg.register("fault_start", move |params| {
                let spec = params
                    .first()
                    .ok_or_else(|| Fault::new(400, "missing fault spec"))?;
                let kind = spec
                    .member("kind")
                    .and_then(Value::as_str)
                    .ok_or_else(|| Fault::new(400, "fault spec without kind"))?
                    .to_string();
                let direction = match spec.member("direction").and_then(Value::as_str) {
                    None | Some("both") => Direction::Both,
                    Some("receive") => Direction::Receive,
                    Some("transmit") => Direction::Transmit,
                    Some(other) => return Err(Fault::new(400, format!("bad direction '{other}'"))),
                };
                let peer = match spec.member("peer").and_then(Value::as_str) {
                    None => None,
                    Some(p) => Some(
                        binding
                            .sim_node(p)
                            .ok_or_else(|| Fault::new(400, format!("unknown peer node '{p}'")))?,
                    ),
                };
                let probability = p_f64(spec.member("probability"))
                    .unwrap_or(1.0)
                    .clamp(0.0, 1.0);
                let delay = SimDuration::from_millis(
                    spec.member("delay_ms")
                        .and_then(Value::as_int)
                        .unwrap_or(0)
                        .max(0) as u64,
                );
                let rule = match kind.as_str() {
                    "interface" => FilterRule::InterfaceDown { direction },
                    "message_loss" => FilterRule::MessageLoss {
                        probability,
                        direction,
                    },
                    "message_delay" => FilterRule::MessageDelay { delay, direction },
                    "path_loss" => FilterRule::PathLoss {
                        peer: peer.ok_or_else(|| Fault::new(400, "path_loss needs peer"))?,
                        probability,
                        direction,
                    },
                    "path_delay" => FilterRule::PathDelay {
                        peer: peer.ok_or_else(|| Fault::new(400, "path_delay needs peer"))?,
                        delay,
                        direction,
                    },
                    other => return Err(Fault::new(400, format!("unknown fault '{other}'"))),
                };
                let mut s = sim.lock();
                let rule_id = s.install_filter(node, rule);
                let handle = {
                    let mut n = next.lock();
                    *n += 1;
                    *n
                };
                handles.lock().insert(handle, rule_id);
                if excovery_obs::enabled() {
                    excovery_obs::global()
                        .gauge("nodemanager_fault_rules_active", &[])
                        .add(1);
                }
                // Each fault action signals its start with an event (§IV-D3).
                s.emit_external_event(
                    node,
                    format!("fault_{kind}_started"),
                    [("handle", handle.to_string())],
                );
                Ok(Value::Int(handle as i32))
            });
        }
        {
            let sim = Arc::clone(&sim);
            let handles = Arc::clone(&fault_handles);
            reg.register("fault_stop", move |params| {
                let handle = params
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| Fault::new(400, "missing fault handle"))?
                    as i64;
                let Some(rule) = handles.lock().remove(&handle) else {
                    return Err(Fault::new(404, format!("unknown fault handle {handle}")));
                };
                if excovery_obs::enabled() {
                    excovery_obs::global()
                        .gauge("nodemanager_fault_rules_active", &[])
                        .add(-1);
                }
                let mut s = sim.lock();
                s.remove_filter(node, rule);
                s.emit_external_event(node, "fault_stopped", [("handle", handle.to_string())]);
                Ok(Value::Bool(true))
            });
        }
        {
            let sim = Arc::clone(&sim);
            reg.register("drop_all", move |params| {
                let on = params.first().and_then(Value::as_bool).unwrap_or(true);
                sim.lock().set_drop_all(node, on);
                Ok(Value::Bool(true))
            });
        }

        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_desc::ExperimentDescription;
    use excovery_netsim::sim::SimulatorConfig;
    use excovery_netsim::topology::Topology;

    fn setup() -> (SharedSim, NodeProxy, NodeProxy) {
        let desc = ExperimentDescription::paper_two_party_sd(1);
        let binding = Arc::new(PlatformBinding::new(&desc.platform, 6).unwrap());
        let sim = Arc::new(Mutex::new(Simulator::new(
            Topology::grid(3, 2),
            SimulatorConfig::perfect_clocks(7),
        )));
        let sm = NodeManager::spawn(
            NodeId(0),
            "t9-157",
            Arc::clone(&sim),
            Arc::clone(&binding),
            SdConfig::two_party(),
        );
        let su = NodeManager::spawn(
            NodeId(1),
            "t9-105",
            Arc::clone(&sim),
            Arc::clone(&binding),
            SdConfig::two_party(),
        );
        (sim, sm, su)
    }

    #[test]
    fn full_discovery_via_rpc() {
        let (sim, sm, su) = setup();
        sm.call("experiment_init", vec![]).unwrap();
        su.call("experiment_init", vec![]).unwrap();
        sm.call("sd_init", vec![Value::str("SM")]).unwrap();
        su.call("sd_init", vec![Value::str("SU")]).unwrap();
        sm.call("sd_start_publish", vec![Value::str("_exp._tcp")])
            .unwrap();
        su.call("sd_start_search", vec![Value::str("_exp._tcp")])
            .unwrap();
        sim.lock().run_for(SimDuration::from_secs(5));
        let events = sim.lock().drain_protocol_events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"sd_start_publish"));
        assert!(names.contains(&"sd_service_add"), "{names:?}");
        // The discovered service is identified by the SM's platform id.
        let add = events.iter().find(|e| e.name == "sd_service_add").unwrap();
        assert!(add
            .params
            .iter()
            .any(|(k, v)| k == "service" && v == "t9-157"));
    }

    #[test]
    fn sd_without_experiment_init_faults() {
        let (_sim, sm, _su) = setup();
        let err = sm.call("sd_init", vec![Value::str("SM")]).unwrap_err();
        assert!(err.to_string().contains("no SD agent"), "{err}");
    }

    #[test]
    fn bad_role_is_a_fault() {
        let (_sim, sm, _su) = setup();
        sm.call("experiment_init", vec![]).unwrap();
        assert!(sm.call("sd_init", vec![Value::str("WIZARD")]).is_err());
        assert!(sm.call("sd_init", vec![]).is_err(), "missing param");
    }

    #[test]
    fn event_flag_is_recorded() {
        let (sim, sm, _su) = setup();
        sm.call("event_flag", vec![Value::str("ready_to_init")])
            .unwrap();
        let events = sim.lock().drain_protocol_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "ready_to_init");
        assert_eq!(events[0].node, NodeId(0));
    }

    #[test]
    fn fault_lifecycle_blocks_and_restores_traffic() {
        let (sim, sm, su) = setup();
        sm.call("experiment_init", vec![]).unwrap();
        su.call("experiment_init", vec![]).unwrap();
        sm.call("sd_init", vec![Value::str("SM")]).unwrap();
        su.call("sd_init", vec![Value::str("SU")]).unwrap();
        // Interface fault on the SM: publish + search must find nothing.
        let handle = sm
            .call(
                "fault_start",
                vec![Value::Struct(vec![
                    ("kind".into(), Value::str("interface")),
                    ("direction".into(), Value::str("both")),
                ])],
            )
            .unwrap();
        sm.call("sd_start_publish", vec![Value::str("_exp._tcp")])
            .unwrap();
        su.call("sd_start_search", vec![Value::str("_exp._tcp")])
            .unwrap();
        sim.lock().run_for(SimDuration::from_secs(5));
        let names: Vec<String> = sim
            .lock()
            .drain_protocol_events()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        assert!(names.contains(&"fault_interface_started".to_string()));
        assert!(!names.contains(&"sd_service_add".to_string()), "{names:?}");
        // Stop the fault: the periodic queries now get through.
        sm.call("fault_stop", vec![handle]).unwrap();
        sim.lock().run_for(SimDuration::from_secs(10));
        let names: Vec<String> = sim
            .lock()
            .drain_protocol_events()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        assert!(names.contains(&"sd_service_add".to_string()), "{names:?}");
    }

    #[test]
    fn path_faults_require_peer() {
        let (_sim, sm, _su) = setup();
        let err = sm
            .call(
                "fault_start",
                vec![Value::Struct(vec![(
                    "kind".into(),
                    Value::str("path_loss"),
                )])],
            )
            .unwrap_err();
        assert!(err.to_string().contains("peer"));
        let err = sm
            .call(
                "fault_start",
                vec![Value::Struct(vec![
                    ("kind".into(), Value::str("path_loss")),
                    ("peer".into(), Value::str("unknown-host")),
                ])],
            )
            .unwrap_err();
        assert!(err.to_string().contains("unknown peer"));
    }

    #[test]
    fn unknown_fault_handle_errors() {
        let (_sim, sm, _su) = setup();
        assert!(sm.call("fault_stop", vec![Value::Int(99)]).is_err());
    }

    #[test]
    fn measure_sync_returns_offset() {
        let (_sim, sm, _su) = setup();
        let v = sm.call("measure_sync", vec![]).unwrap();
        let offset: i64 = v
            .member("offset_ns")
            .and_then(Value::as_str)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(offset, 0, "perfect clocks in this test setup");
    }

    #[test]
    fn run_init_clears_fault_rules() {
        let (sim, sm, su) = setup();
        sm.call("experiment_init", vec![]).unwrap();
        su.call("experiment_init", vec![]).unwrap();
        sm.call(
            "fault_start",
            vec![Value::Struct(vec![(
                "kind".into(),
                Value::str("interface"),
            )])],
        )
        .unwrap();
        sm.call("run_init", vec![]).unwrap();
        // After run_init the interface fault is gone: discovery works.
        sm.call("sd_init", vec![Value::str("SM")]).unwrap();
        su.call("sd_init", vec![Value::str("SU")]).unwrap();
        sm.call("sd_start_publish", vec![Value::str("_exp._tcp")])
            .unwrap();
        su.call("sd_start_search", vec![Value::str("_exp._tcp")])
            .unwrap();
        sim.lock().run_for(SimDuration::from_secs(5));
        let names: Vec<String> = sim
            .lock()
            .drain_protocol_events()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        assert!(names.contains(&"sd_service_add".to_string()), "{names:?}");
    }
}
