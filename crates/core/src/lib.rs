//! # excovery-core
//!
//! The ExCovery execution engine (paper §IV, §VI).
//!
//! The [`master::ExperiMaster`] drives experiments from an abstract
//! description: it generates the treatment plan, initializes the
//! participating nodes, executes each run's processes (experiment, fault
//! injection and environment manipulation) with the four flow-control
//! functions, records events and packet captures, and conditions and
//! stores everything into the four-level storage.
//!
//! Mirroring the prototype's component architecture (Fig. 12), the master
//! talks to one [`nodemanager::NodeManager`] per node over XML-RPC; each
//! NodeManager translates procedure calls into actions on the simulated
//! platform (SD commands, fault filters, event flags).
//!
//! The paper's execution concepts map as follows:
//!
//! * experiment/run lifecycle (`experiment_init`, `run_init`, `run_exit`,
//!   `experiment_exit`) — [`master`],
//! * process descriptions and flow control — [`interp`],
//! * fault injection envelopes (duration/rate/randomseed) — [`faults`],
//! * event recording and `wait_for_event` matching — [`event_log`],
//! * actor-to-node resolution (abstract nodes → platform nodes → simulator
//!   nodes) — [`binding`],
//! * crash recovery by resuming aborted runs — level-2 completion markers
//!   consulted by [`master`].

pub mod binding;
pub mod error;
pub mod event_log;
pub mod faults;
pub mod interp;
pub mod master;
pub mod nodemanager;
pub mod scenarios;

pub use binding::{PlatformBinding, ResolvedActors};
pub use error::EngineError;
pub use event_log::{EventLog, RecordedEvent};
pub use master::{
    DispatcherKind, EngineConfig, EngineConfigBuilder, ExperiMaster, ExperimentOutcome,
    RetryPolicy, RunOutcome, TransportKind,
};
