//! Golden digests: pins [`ExperimentOutcome::digest`] for every platform
//! preset × master seed combination.
//!
//! The digest folds the full packaged database (every table, every row)
//! plus the run summaries into one 64-bit FNV value, so *any* behavioural
//! drift in the engine, the simulator, the interpreter or the packaging
//! shows up here as a one-line failure. Changes that intentionally alter
//! results must re-bless the table: run the suite with
//! `EXCOVERY_BLESS=1` and paste the printed rows.

use excovery_core::{EngineConfig, ExperiMaster};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::ExperimentDescription;

const SEEDS: [u64; 3] = [1, 7, 1914];

/// One golden row: name, preset constructor, pinned digests in `SEEDS`
/// order.
type GoldenRow = (&'static str, fn() -> EngineConfig, [u64; 3]);

fn golden_table() -> Vec<GoldenRow> {
    vec![
        ("grid_default", EngineConfig::grid_default, GRID_DEFAULT),
        ("wired_lan", EngineConfig::wired_lan, WIRED_LAN),
        ("lossy_mesh", EngineConfig::lossy_mesh, LOSSY_MESH),
    ]
}

// ---- pinned values (re-bless with EXCOVERY_BLESS=1) ------------------------
const GRID_DEFAULT: [u64; 3] = [0xabfeecf0a2ffaf15, 0x9da8297dda673ad9, 0xab676a0b69a97463];
const WIRED_LAN: [u64; 3] = [0x7a74adffb6d6169b, 0xd8456fca5013c922, 0xc8e6be9bdaf76fd7];
const LOSSY_MESH: [u64; 3] = [0x21b4ed745ffd3001, 0x87ef967beb1384cb, 0xbbe78361466ab0ce];

/// The paper's two-party SD experiment trimmed to a single factor so one
/// preset × seed cell finishes in well under a second.
fn desc(seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(2);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn digest_of(preset: fn() -> EngineConfig, seed: u64) -> u64 {
    let mut master = ExperiMaster::new(desc(seed), preset()).unwrap();
    master.execute().unwrap().digest()
}

#[test]
fn preset_digests_match_the_golden_table() {
    let bless = std::env::var_os("EXCOVERY_BLESS").is_some();
    let mut drifted = Vec::new();
    for (name, preset, want) in golden_table() {
        let upper = name.to_uppercase();
        if bless {
            println!("const {upper}: [u64; 3] = [");
        }
        for (i, seed) in SEEDS.iter().enumerate() {
            let got = digest_of(preset, *seed);
            if bless {
                println!("    {got:#018x},");
            } else if got != want[i] {
                drifted.push(format!(
                    "{name} seed {seed}: digest {got:#018x}, pinned {:#018x}",
                    want[i]
                ));
            }
        }
        if bless {
            println!("];");
        }
    }
    assert!(
        !bless,
        "blessing mode: paste the table above into golden_outcomes.rs"
    );
    assert!(
        drifted.is_empty(),
        "results drifted from the golden table:\n  {}",
        drifted.join("\n  ")
    );
}

/// The digest itself must be stable across repeated executions in the same
/// process — otherwise the golden table would be meaningless.
#[test]
fn digests_are_reproducible_within_a_process() {
    for _ in 0..2 {
        assert_eq!(
            digest_of(EngineConfig::grid_default, SEEDS[0]),
            digest_of(EngineConfig::grid_default, SEEDS[0]),
        );
    }
}
