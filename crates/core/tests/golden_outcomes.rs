//! Golden digests: pins [`ExperimentOutcome::digest`] for every platform
//! preset × master seed combination.
//!
//! The digest folds the full packaged database (every table, every row)
//! plus the run summaries into one 64-bit FNV value, so *any* behavioural
//! drift in the engine, the simulator, the interpreter or the packaging
//! shows up here as a one-line failure. Changes that intentionally alter
//! results must re-bless the table: run the suite with
//! `EXCOVERY_BLESS=1` and paste the printed rows.

use excovery_core::{EngineConfig, ExperiMaster};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::ExperimentDescription;

const SEEDS: [u64; 3] = [1, 7, 1914];

/// One golden row: name, preset constructor, pinned digests in `SEEDS`
/// order.
type GoldenRow = (&'static str, fn() -> EngineConfig, [u64; 3]);

fn golden_table() -> Vec<GoldenRow> {
    vec![
        ("grid_default", EngineConfig::grid_default, GRID_DEFAULT),
        ("wired_lan", EngineConfig::wired_lan, WIRED_LAN),
        ("lossy_mesh", EngineConfig::lossy_mesh, LOSSY_MESH),
    ]
}

// ---- pinned values (re-bless with EXCOVERY_BLESS=1) ------------------------
const GRID_DEFAULT: [u64; 3] = [0x4a13bec7f28400cc, 0x3340f975ad784399, 0x1a20597a80aa713c];
const WIRED_LAN: [u64; 3] = [0xad0245d7ac3a0157, 0x51c04156f0e53f38, 0xdb931c64b5bf31e2];
const LOSSY_MESH: [u64; 3] = [0xf9cbae2404a53870, 0x19d55a3e3980eaa7, 0x5a27f620ddd6a475];

/// The paper's two-party SD experiment trimmed to a single factor so one
/// preset × seed cell finishes in well under a second.
fn desc(seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(2);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn digest_of(preset: fn() -> EngineConfig, seed: u64) -> u64 {
    let mut master = ExperiMaster::new(desc(seed), preset()).unwrap();
    master.execute().unwrap().digest()
}

#[test]
fn preset_digests_match_the_golden_table() {
    let bless = std::env::var_os("EXCOVERY_BLESS").is_some();
    let mut drifted = Vec::new();
    for (name, preset, want) in golden_table() {
        let upper = name.to_uppercase();
        if bless {
            println!("const {upper}: [u64; 3] = [");
        }
        for (i, seed) in SEEDS.iter().enumerate() {
            let got = digest_of(preset, *seed);
            if bless {
                println!("    {got:#018x},");
            } else if got != want[i] {
                drifted.push(format!(
                    "{name} seed {seed}: digest {got:#018x}, pinned {:#018x}",
                    want[i]
                ));
            }
        }
        if bless {
            println!("];");
        }
    }
    assert!(
        !bless,
        "blessing mode: paste the table above into golden_outcomes.rs"
    );
    assert!(
        drifted.is_empty(),
        "results drifted from the golden table:\n  {}",
        drifted.join("\n  ")
    );
}

/// The digest itself must be stable across repeated executions in the same
/// process — otherwise the golden table would be meaningless.
#[test]
fn digests_are_reproducible_within_a_process() {
    for _ in 0..2 {
        assert_eq!(
            digest_of(EngineConfig::grid_default, SEEDS[0]),
            digest_of(EngineConfig::grid_default, SEEDS[0]),
        );
    }
}
