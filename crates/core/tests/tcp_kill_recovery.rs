//! Kills a live `TcpRpcServer` under the master mid-lifecycle and checks
//! both halves of the recovery contract: the failure *surfaces* as
//! [`EngineError::Transport`] naming the dead node within a bounded wall
//! time (no hang, no silent loss), and once the server is back the same
//! master reconnects and completes the experiment.

use excovery_core::{
    DispatcherKind, EngineConfig, EngineError, ExperiMaster, RetryPolicy, TransportKind,
};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::ExperimentDescription;
use excovery_netsim::link::LinkModel;
use excovery_netsim::sim::SimulatorConfig;
use excovery_netsim::topology::Topology;
use excovery_netsim::SimDuration;
use excovery_rpc::TcpOptions;
use std::time::{Duration, Instant};

fn desc() -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(1);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d
}

fn tcp_config() -> EngineConfig {
    EngineConfig {
        topology: Topology::grid(3, 2),
        sim: SimulatorConfig {
            link_model: LinkModel {
                base_loss: 0.0,
                ..LinkModel::default()
            },
            ..SimulatorConfig::default()
        },
        run_timeout: SimDuration::from_secs(60),
        transport: TransportKind::Tcp,
        // Tight deadlines so a dead server is *diagnosed*, not waited out:
        // the error must surface in seconds even on a loaded CI box.
        tcp: TcpOptions {
            connect_timeout: Duration::from_millis(250),
            call_timeout: Duration::from_millis(500),
            max_connect_attempts: 2,
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(20),
        },
        retry: RetryPolicy::none(),
        ..EngineConfig::grid_default()
    }
}

fn kill_then_recover(cfg: EngineConfig) {
    let mut master = ExperiMaster::new(desc(), cfg).unwrap();
    let victim = master.node_ids().into_iter().next().unwrap();
    assert!(master.halt_node_server(&victim), "no server to halt");

    // Phase 1: an early lifecycle fan-out must fail fast and name the dead
    // node — not some follow-on symptom elsewhere. Which phase trips is
    // timing-dependent (a connection accepted before the shutdown can
    // serve one last call), so only the phase *label* format is checked.
    let started = Instant::now();
    let err = match master.execute() {
        Err(e) => e,
        Ok(_) => panic!("dead server must fail the run"),
    };
    let elapsed = started.elapsed();
    match &err {
        EngineError::Transport { node, detail } => {
            assert_eq!(node, &victim, "error blames the wrong node: {detail}");
            assert!(
                detail.contains("init") || detail.contains("measure_sync"),
                "error should name the failing lifecycle phase, got: {detail}"
            );
        }
        other => panic!("expected EngineError::Transport, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(20),
        "diagnosis took {elapsed:?}; deadlines are not being honoured"
    );

    // Phase 2: bring the server back at its old address; the master's
    // proxies reconnect lazily, so a plain re-execution must now succeed.
    master.revive_node_server(&victim).unwrap();
    let outcome = master.execute().expect("revived server must complete");
    assert!(outcome.runs.iter().all(|r| r.completed));
    assert_eq!(outcome.runs.len(), 1);
}

#[test]
fn dead_server_surfaces_as_transport_error_then_recovery_completes() {
    kill_then_recover(tcp_config());
}

/// Same contract on the multiplexed dispatcher: the reactor's bounded
/// non-blocking reconnect diagnoses the dead node just as fast, and its
/// lazily-reconnected link recovers once the server is revived.
#[test]
fn reactor_dispatcher_diagnoses_and_recovers_from_a_killed_server() {
    let mut cfg = tcp_config();
    cfg.dispatcher = DispatcherKind::Reactor;
    kill_then_recover(cfg);
}

#[test]
fn halting_an_unknown_node_is_a_no_op() {
    let mut master = ExperiMaster::new(desc(), tcp_config()).unwrap();
    assert!(!master.halt_node_server("no-such-node"));
    // In-memory-transport masters have no TCP servers to halt either.
    let mut mem = ExperiMaster::new(
        desc(),
        EngineConfig {
            transport: TransportKind::Memory,
            ..tcp_config()
        },
    )
    .unwrap();
    let pid = mem.node_ids().into_iter().next().unwrap();
    assert!(!mem.halt_node_server(&pid));
}
