//! Property-style tests for [`FaultEnvelope::activation_window`] (paper
//! §IV-D: duration / rate / randomseed envelopes).
//!
//! The generator is a small hand-rolled splitmix64 sweep rather than a
//! proptest strategy: the cases are fully deterministic, need no shrinking
//! (every case prints its inputs on failure), and the suite stays free of
//! external dev-dependencies.

use excovery_core::faults::FaultEnvelope;
use excovery_netsim::{SimDuration, SimTime};

const CASES: u64 = 2_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One pseudorandom envelope/instant pair per case index.
fn arb_case(i: u64) -> (FaultEnvelope, SimTime) {
    let a = splitmix64(i);
    let b = splitmix64(a);
    let c = splitmix64(b);
    let d = splitmix64(c);
    // Durations up to ~18 hours, instants up to ~2 hours in.
    let envelope = FaultEnvelope {
        duration: Some(SimDuration::from_nanos(a % (1 << 46))),
        rate: ((b % 1_000) as f64 + 1.0) / 1_000.0,
        randomseed: c,
    };
    let now = SimTime::from_nanos(d % (1 << 43));
    (envelope, now)
}

#[test]
fn window_always_fits_inside_the_duration() {
    for i in 0..CASES {
        let (e, now) = arb_case(i);
        let (start, stop) = e
            .activation_window(now)
            .unwrap_or_else(|| panic!("case {i}: window rejected for {e:?} at {now:?}"));
        assert!(start >= now, "case {i}: {e:?} started before now");
        assert!(stop >= start, "case {i}: {e:?} window inverted");
        assert!(
            stop <= now + e.duration.unwrap(),
            "case {i}: {e:?} window exceeds its duration"
        );
    }
}

#[test]
fn window_length_is_rate_times_duration() {
    for i in 0..CASES {
        let (e, now) = arb_case(i);
        let (start, stop) = e.activation_window(now).unwrap();
        let expected = e.duration.unwrap().mul_f64(e.rate);
        assert_eq!(
            stop - start,
            expected,
            "case {i}: {e:?} active block has the wrong length"
        );
    }
}

#[test]
fn window_is_deterministic_in_the_seed() {
    for i in 0..CASES {
        let (e, now) = arb_case(i);
        assert_eq!(
            e.activation_window(now),
            e.activation_window(now),
            "case {i}: {e:?} not reproducible"
        );
    }
}

#[test]
fn zero_duration_collapses_to_an_empty_window_at_now() {
    for i in 0..CASES {
        let (mut e, now) = arb_case(i);
        e.duration = Some(SimDuration::ZERO);
        assert_eq!(
            e.activation_window(now),
            Some((now, now)),
            "case {i}: zero duration must yield the empty window [now, now)"
        );
    }
}

#[test]
fn full_rate_window_sits_exactly_at_now() {
    // rate == 1 leaves no slack: the active block is the whole duration,
    // starting exactly at the instant the fault is applied.
    for i in 0..CASES {
        let (mut e, now) = arb_case(i);
        e.rate = 1.0;
        let (start, stop) = e.activation_window(now).unwrap();
        assert_eq!(start, now, "case {i}: no-slack window must start at now");
        assert_eq!(stop, now + e.duration.unwrap());
    }
}

#[test]
fn wraparound_past_the_end_of_time_is_rejected() {
    // A window that cannot be represented without overflowing u64
    // nanoseconds must be refused, never silently wrapped to the epoch.
    let near_end = SimTime::from_nanos(u64::MAX - 1_000);
    for i in 0..CASES {
        let (mut e, _) = arb_case(i);
        e.rate = 1.0;
        e.duration = Some(SimDuration::from_nanos(2_000 + splitmix64(i) % (1 << 40)));
        assert_eq!(
            e.activation_window(near_end),
            None,
            "case {i}: {e:?} wrapped past the end of simulated time"
        );
    }
    // Boundary: a window ending exactly at u64::MAX is still representable.
    let e = FaultEnvelope {
        duration: Some(SimDuration::from_nanos(1_000)),
        rate: 1.0,
        randomseed: 0,
    };
    assert_eq!(
        e.activation_window(SimTime::from_nanos(u64::MAX - 1_000)),
        Some((
            SimTime::from_nanos(u64::MAX - 1_000),
            SimTime::from_nanos(u64::MAX)
        ))
    );
}

#[test]
fn unbounded_faults_have_no_window() {
    for i in 0..CASES {
        let (mut e, now) = arb_case(i);
        e.duration = None;
        assert_eq!(e.activation_window(now), None, "case {i}");
    }
}
