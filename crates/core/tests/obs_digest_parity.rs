//! Observability must be invisible in the results: running the same
//! experiment with the full instrumentation stack enabled — metrics,
//! spans, per-run summaries and the level-2 snapshot — must produce a
//! packaged database and run summaries bit-identical to the
//! uninstrumented execution ([`ExperimentOutcome::digest`]).
//!
//! The observability flag is process-global, so the off-baselines and
//! the on-executions are sequenced inside a single test: the flag is
//! only ever flipped on, never raced against a concurrently running
//! disabled-state assertion.

use excovery_core::{EngineConfig, ExperiMaster, ExperimentOutcome, RetryPolicy};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::ExperimentDescription;
use excovery_netsim::link::LinkModel;
use excovery_netsim::sim::SimulatorConfig;
use excovery_netsim::topology::Topology;
use excovery_netsim::SimDuration;
use excovery_rpc::ChaosOptions;
use excovery_store::level2::Level2Store;
use std::path::PathBuf;

fn desc_with_seed(reps: u64, seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(reps);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn unique_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "excovery-obs-parity-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn base_config(tag: &str) -> EngineConfig {
    EngineConfig {
        topology: Topology::grid(3, 2),
        sim: SimulatorConfig {
            link_model: LinkModel {
                base_loss: 0.0,
                ..LinkModel::default()
            },
            ..SimulatorConfig::default()
        },
        run_timeout: SimDuration::from_secs(60),
        l2_root: Some(unique_root(tag)),
        ..EngineConfig::grid_default()
    }
}

fn execute(desc: ExperimentDescription, cfg: EngineConfig) -> ExperimentOutcome {
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    master.execute().unwrap()
}

fn chaos_config(tag: &str, chaos: &ChaosOptions) -> EngineConfig {
    assert!(chaos.eventually_clears());
    let mut cfg = base_config(tag);
    cfg.chaos = Some(chaos.clone());
    cfg.retry = RetryPolicy::for_chaos(chaos.horizon_calls + chaos.longest_crash_window());
    cfg
}

#[test]
fn digest_is_identical_with_observability_on_and_off() {
    assert!(
        !excovery_obs::enabled(),
        "this test owns the process-global obs flag and must see it off first"
    );
    let seed = 42u64;
    let chaos = ChaosOptions::flaky(0xC0FFEE, 0.4, 60);

    // ---- baselines, observability disabled ----------------------------
    let off_plain = execute(desc_with_seed(2, seed), base_config("off-plain"));
    assert!(off_plain.runs.iter().all(|r| r.completed));
    let off_chaos = execute(desc_with_seed(2, seed), chaos_config("off-chaos", &chaos));
    assert!(off_chaos.control_retries > 0, "chaos was never exercised");
    assert_eq!(off_plain.digest(), off_chaos.digest());

    // ---- identical executions, full instrumentation enabled -----------
    excovery_obs::ObsConfig::on().install();
    let mut on_cfg = base_config("on-plain");
    on_cfg.keep_l2 = true;
    let on_plain = execute(desc_with_seed(2, seed), on_cfg);
    assert_eq!(
        on_plain.digest(),
        off_plain.digest(),
        "enabling observability changed the packaged results"
    );
    let on_chaos = execute(desc_with_seed(2, seed), chaos_config("on-chaos", &chaos));
    assert_eq!(
        on_chaos.digest(),
        off_plain.digest(),
        "observability + chaos changed the packaged results"
    );

    // The instrumentation really ran: the engine counted phases, the
    // chaos layer counted injections.
    let snap = excovery_obs::global().snapshot();
    let runs_executed: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name == "master_runs_executed_total")
        .map(|c| c.value)
        .sum();
    assert_eq!(runs_executed, 4, "two experiments of two runs each");
    let injections: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name == "rpc_chaos_injections_total")
        .map(|c| c.value)
        .sum();
    assert!(injections > 0, "chaos injections were not observed");

    // The kept level-2 tree holds the per-run summaries and the
    // experiment snapshot, both readable by the JSONL parser — and the
    // digest parity above proves none of it leaked into level 3.
    let l2 = Level2Store::open(&on_plain.l2_root).unwrap();
    for run in [0u64, 1] {
        assert!(
            l2.run_entries(run)
                .unwrap()
                .contains(&("_obs".into(), "summary.jsonl".into())),
            "run {run}: missing _obs/summary.jsonl"
        );
        let raw = l2.get_run(run, "_obs", "summary.jsonl").unwrap();
        let (s, _spans) = excovery_obs::jsonl::parse(std::str::from_utf8(&raw).unwrap()).unwrap();
        assert!(!s.counters.is_empty());
    }
    let raw = l2.get_experiment("_obs", "snapshot.jsonl").unwrap();
    excovery_obs::jsonl::parse(std::str::from_utf8(&raw).unwrap()).unwrap();

    std::fs::remove_dir_all(&on_plain.l2_root).ok();
}
