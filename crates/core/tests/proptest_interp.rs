//! Property tests for the process interpreter: arbitrary action sequences
//! never panic, always terminate (run to Done, Failed, or a blocked wait),
//! and the program counter never exceeds the action list.

use excovery_core::faults::ParsedFault;
use excovery_core::interp::{step, ExecCtx, ProcState, ProcessInstance};
use excovery_desc::factors::LevelValue;
use excovery_desc::process::{EventSelector, ProcessAction, ValueRef};
use excovery_netsim::{SimDuration, SimTime};
use excovery_rpc::Value;
use proptest::prelude::*;
use std::collections::HashMap;

/// Context that scripts successes/failures and advances time on demand.
struct ScriptedCtx {
    now: SimTime,
    satisfy_all_events: bool,
    fail_calls: bool,
    calls: usize,
}

impl ExecCtx for ScriptedCtx {
    fn now(&self) -> SimTime {
        self.now
    }
    fn marker(&self) -> u64 {
        0
    }
    fn resolve(&self, v: &ValueRef) -> Option<LevelValue> {
        match v {
            ValueRef::Lit(l) => Some(l.clone()),
            ValueRef::FactorRef(id) if id == "known" => Some(LevelValue::Int(1)),
            ValueRef::FactorRef(_) => None,
        }
    }
    fn satisfied(&self, _selector: &EventSelector, _since: u64) -> bool {
        self.satisfy_all_events
    }
    fn call_node(
        &mut self,
        _platform_id: &str,
        _method: &str,
        _params: Vec<Value>,
    ) -> Result<Value, String> {
        self.calls += 1;
        if self.fail_calls {
            Err("scripted failure".into())
        } else {
            Ok(Value::Int(self.calls as i32))
        }
    }
    fn env_invoke(
        &mut self,
        _name: &str,
        _params: &HashMap<String, LevelValue>,
    ) -> Result<(), String> {
        self.calls += 1;
        Ok(())
    }
    fn emit_master_event(&mut self, _name: &str) {
        self.calls += 1;
    }
    fn schedule_fault(
        &mut self,
        _platform_id: &str,
        _fault: &ParsedFault,
        _window: (SimTime, SimTime),
    ) -> Result<(), String> {
        Ok(())
    }
}

fn value_ref_strategy() -> impl Strategy<Value = ValueRef> {
    prop_oneof![
        (-100i64..100).prop_map(ValueRef::int),
        "[a-z]{1,8}".prop_map(ValueRef::text),
        Just(ValueRef::factor("known")),
        Just(ValueRef::factor("unknown")),
    ]
}

fn action_strategy() -> impl Strategy<Value = ProcessAction> {
    prop_oneof![
        (0i64..5).prop_map(|s| ProcessAction::WaitForTime {
            seconds: ValueRef::int(s)
        }),
        Just(ProcessAction::WaitMarker),
        "[a-z]{1,10}".prop_map(|v| ProcessAction::EventFlag { value: v }),
        (
            "[a-z_]{1,12}",
            prop::collection::vec(("[a-z]{1,6}", value_ref_strategy()), 0..3)
        )
            .prop_map(|(name, params)| ProcessAction::Invoke {
                name,
                params: params.into_iter().collect(),
            }),
        ("[a-z_]{1,10}", prop::option::of(0i64..40)).prop_map(|(event, timeout)| {
            let mut sel = EventSelector::named(event);
            if let Some(t) = timeout {
                sel = sel.with_timeout(ValueRef::int(t));
            }
            ProcessAction::WaitForEvent(sel)
        }),
        // Fault actions, including stops without a matching start.
        Just(ProcessAction::invoke("fault_interface_start")),
        Just(ProcessAction::invoke("fault_interface_stop")),
        Just(ProcessAction::invoke_with(
            "fault_message_loss_start",
            [(
                "probability".to_string(),
                ValueRef::Lit(LevelValue::Float(0.5))
            )],
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stepping any process with time advancing and events satisfied
    /// always reaches Done or Failed in bounded steps; the pc never runs
    /// past the action list.
    #[test]
    fn interpreter_terminates(
        actions in prop::collection::vec(action_strategy(), 0..12),
        node_bound in any::<bool>(),
        fail_calls in any::<bool>(),
    ) {
        let platform = node_bound.then(|| "t9-000".to_string());
        let mut p = ProcessInstance::new("prop", platform, Some("SM".into()), actions);
        let mut ctx =
            ScriptedCtx { now: SimTime::ZERO, satisfy_all_events: true, fail_calls, calls: 0 };
        for _ in 0..1_000 {
            if p.finished() {
                break;
            }
            let progressed = step(&mut p, &mut ctx);
            prop_assert!(p.pc <= p.actions.len());
            if !progressed {
                // Blocked: advance time past any wait and retry.
                ctx.now += SimDuration::from_secs(10);
            }
        }
        prop_assert!(
            p.finished(),
            "process did not terminate: state {:?} pc {}",
            p.state,
            p.pc
        );
    }

    /// With events never satisfied and no timeouts, a process either
    /// finishes or parks in WaitingEvent — it must not busy-loop or fail
    /// spuriously.
    #[test]
    fn unsatisfied_waits_park(
        actions in prop::collection::vec(action_strategy(), 0..12),
    ) {
        let mut p = ProcessInstance::new("prop", Some("n".into()), Some("SU".into()), actions);
        let mut ctx =
            ScriptedCtx { now: SimTime::ZERO, satisfy_all_events: false, fail_calls: false, calls: 0 };
        for _ in 0..1_000 {
            let progressed = step(&mut p, &mut ctx);
            if p.finished() {
                return Ok(());
            }
            if !progressed {
                match &p.state {
                    ProcState::WaitingEvent { deadline: None, .. } => return Ok(()), // parked
                    ProcState::WaitingEvent { deadline: Some(_), .. }
                    | ProcState::WaitingTime { .. } => {
                        ctx.now += SimDuration::from_secs(10);
                    }
                    other => prop_assert!(false, "blocked in unexpected state {other:?}"),
                }
            }
        }
        prop_assert!(false, "no quiescence reached");
    }
}
