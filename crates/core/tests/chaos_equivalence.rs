//! Chaos-equivalence: the headline property of the recovery model.
//!
//! An eventually-clearing control-channel fault schedule must be
//! *invisible* in the results: the packaged database and every run
//! summary — hence [`ExperimentOutcome::digest`] — must be byte-identical
//! to the fault-free execution of the same description. Faults are
//! absorbed by bounded idempotent retry, never by changing what the
//! experiment measured.
//!
//! Likewise, killing a master mid-campaign and resuming under a fresh
//! epoch must reproduce exactly the runs that were incomplete, and only
//! those: a run whose completion marker landed is never executed again.

use excovery_core::{DispatcherKind, EngineConfig, ExperiMaster, ExperimentOutcome, RetryPolicy};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::ExperimentDescription;
use excovery_netsim::link::LinkModel;
use excovery_netsim::sim::SimulatorConfig;
use excovery_netsim::topology::Topology;
use excovery_netsim::SimDuration;
use excovery_rpc::ChaosOptions;
use excovery_store::level2::Level2Store;
use std::path::PathBuf;

/// The paper's two-party SD experiment, trimmed for test speed (no
/// traffic factors) and reseeded per scenario.
fn desc_with_seed(reps: u64, seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(reps);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn unique_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "excovery-chaos-eq-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn base_config(tag: &str) -> EngineConfig {
    EngineConfig {
        topology: Topology::grid(3, 2),
        sim: SimulatorConfig {
            link_model: LinkModel {
                base_loss: 0.0,
                ..LinkModel::default()
            },
            ..SimulatorConfig::default()
        },
        run_timeout: SimDuration::from_secs(60),
        l2_root: Some(unique_root(tag)),
        ..EngineConfig::grid_default()
    }
}

/// Retry budget guaranteed to outlast `opts`: past the horizon and the
/// last crash window every call passes, so `horizon + longest_window`
/// consecutive failing attempts is the worst case.
fn ample_retry(opts: &ChaosOptions) -> RetryPolicy {
    assert!(opts.eventually_clears(), "schedule must eventually clear");
    RetryPolicy::for_chaos(opts.horizon_calls + opts.longest_crash_window())
}

fn execute(desc: ExperimentDescription, cfg: EngineConfig) -> ExperimentOutcome {
    let mut master = ExperiMaster::new(desc, cfg).unwrap();
    master.execute().unwrap()
}

fn schedules() -> Vec<(&'static str, ChaosOptions)> {
    vec![
        ("moderate", ChaosOptions::flaky(0xC0FFEE, 0.4, 60)),
        (
            "heavy",
            ChaosOptions {
                max_delay_ms: 1,
                ..ChaosOptions::flaky(0xBADF00D, 0.9, 40)
            },
        ),
        (
            "crashy",
            ChaosOptions {
                crash_windows: vec![(3, 9), (20, 24)],
                ..ChaosOptions::flaky(0xDEAD, 0.2, 30)
            },
        ),
    ]
}

/// The ≥3 seeds × ≥3 eventually-clearing schedules acceptance matrix,
/// run on the given control-plane dispatcher. The fault-free baseline is
/// always threaded: the digest must be invariant across chaos *and*
/// dispatcher at once.
fn chaos_matrix(dispatcher: DispatcherKind, fanout: Option<usize>) {
    for master_seed in [11u64, 42, 1337] {
        let baseline = execute(desc_with_seed(2, master_seed), base_config("base"));
        assert!(baseline.runs.iter().all(|r| r.completed));
        assert_eq!(baseline.control_retries, 0, "fault-free run never retries");
        let want = baseline.digest();
        for (name, schedule) in &schedules() {
            let mut cfg = base_config(name);
            cfg.dispatcher = dispatcher;
            cfg.fanout_tree = fanout;
            cfg.chaos = Some(schedule.clone());
            cfg.retry = ample_retry(schedule);
            let chaotic = execute(desc_with_seed(2, master_seed), cfg);
            assert_eq!(
                chaotic.digest(),
                want,
                "seed {master_seed}, schedule '{name}', {dispatcher}: chaos changed the results"
            );
            assert!(
                chaotic.control_retries > 0,
                "seed {master_seed}, schedule '{name}', {dispatcher}: chaos was never exercised"
            );
        }
    }
}

#[test]
fn eventually_clearing_chaos_leaves_the_digest_unchanged() {
    chaos_matrix(DispatcherKind::Threaded, None);
}

/// The identical matrix on the multiplexed dispatcher: the reactor draws
/// per-node verdicts from the same pure schedule and absorbs them with
/// the same bounded idempotent retry, so the digests must not move.
#[test]
fn eventually_clearing_chaos_is_invisible_on_the_reactor_dispatcher() {
    chaos_matrix(DispatcherKind::Reactor, None);
}

/// And once more through sub-master relays: a fault on one member fails
/// only that member's batch entry, whose retry rides a later batch.
#[test]
fn eventually_clearing_chaos_is_invisible_through_the_fanout_tree() {
    chaos_matrix(DispatcherKind::Reactor, Some(2));
}

/// A member crashing mid-batch fails only its own entry, and with no
/// retry budget the engine surfaces that entry as
/// [`excovery_core::EngineError::Transport`] naming the node — in bounded
/// wall time, not after waiting out the whole batch.
#[test]
fn member_crash_mid_batch_surfaces_as_transport_error_naming_the_node() {
    use std::time::{Duration, Instant};
    let mut cfg = base_config("batch-crash");
    cfg.dispatcher = DispatcherKind::Reactor;
    cfg.fanout_tree = Some(2);
    cfg.retry = RetryPolicy::none();
    cfg.chaos = Some(ChaosOptions {
        crash_windows: vec![(0, u64::MAX)],
        ..ChaosOptions::quiet(11)
    });
    let mut master = ExperiMaster::new(desc_with_seed(1, 5), cfg).unwrap();
    let managed = master.node_ids();
    let started = Instant::now();
    let err = match master.execute() {
        Ok(_) => panic!("a crashed member must fail the run"),
        Err(e) => e,
    };
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "diagnosis took {:?}",
        started.elapsed()
    );
    match err {
        excovery_core::EngineError::Transport { node, detail } => {
            // The error names the crashed member itself, with the chaos
            // wording — not the relay, not a generic batch failure.
            assert!(managed.contains(&node), "unknown node '{node}': {detail}");
            assert!(detail.contains("chaos: node crashed"), "{detail}");
        }
        other => panic!("expected EngineError::Transport, got {other:?}"),
    }
}

/// Kill-mid-campaign → resume must execute exactly the incomplete runs and
/// end with the same database as the uninterrupted execution.
#[test]
fn kill_and_resume_reproduces_the_incomplete_runs_exactly() {
    let seed = 77u64;
    let chaos = ChaosOptions::flaky(0xFEED, 0.5, 50);

    // Uninterrupted reference, level 2 kept for entry-level comparison.
    let mut ref_cfg = base_config("ref");
    ref_cfg.keep_l2 = true;
    let reference = execute(desc_with_seed(4, seed), ref_cfg);
    assert_eq!(reference.runs.len(), 4);

    // "Crashed" master: dies (max_runs) after landing 2 completion markers.
    let root = unique_root("killed");
    let mut cfg = base_config("half");
    cfg.l2_root = Some(root.clone());
    cfg.max_runs = Some(2);
    cfg.keep_l2 = true;
    cfg.chaos = Some(chaos.clone());
    cfg.retry = ample_retry(&chaos);
    let first_half = execute(desc_with_seed(4, seed), cfg);
    assert_eq!(first_half.runs.len(), 2);

    // Resumed master: fresh epoch, so its idempotency keys cannot collide
    // with responses recorded for its predecessor.
    let mut cfg = base_config("resumed");
    cfg.l2_root = Some(root.clone());
    cfg.resume = true;
    cfg.keep_l2 = true;
    cfg.epoch = 1;
    cfg.chaos = Some(chaos.clone());
    cfg.retry = ample_retry(&chaos);
    let resumed = execute(desc_with_seed(4, seed), cfg);

    // Only the incomplete runs were executed — nothing re-ran after its
    // completion marker landed. The summaries of the two pre-crash runs
    // were restored from the level-2 outcome journal, so the outcome
    // vector is the uninterrupted one.
    assert_eq!(resumed.restored_runs, 2);
    assert_eq!(
        resumed.runs.iter().map(|r| r.run_id).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );
    assert_eq!(&resumed.runs[..], &reference.runs[..]);

    // The packaged database merges all four runs identically to the
    // uninterrupted execution — every table, `Logs` included: the action
    // log is drained to level 2 at each run boundary, so a master crash
    // no longer loses the node side's pre-crash history.
    for name in reference.database.table_names() {
        assert_eq!(
            resumed.database.table(name).unwrap().rows(),
            reference.database.table(name).unwrap().rows(),
            "table {name} diverges between resumed and uninterrupted execution"
        );
    }
    // Hence the headline property at full strength: the digest of a
    // killed-and-resumed campaign is bit-equal to the uninterrupted one.
    assert_eq!(resumed.digest(), reference.digest());

    // The level-2 trees hold identical per-run entries, and every run is
    // journalled complete.
    let ref_l2 = Level2Store::open(&reference.l2_root).unwrap();
    let res_l2 = Level2Store::open(&root).unwrap();
    assert_eq!(res_l2.run_ids().unwrap(), vec![0, 1, 2, 3]);
    for run in 0..4 {
        assert!(res_l2.is_run_complete(run));
        let mut want = ref_l2.run_entries(run).unwrap();
        let mut got = res_l2.run_entries(run).unwrap();
        want.sort();
        got.sort();
        assert_eq!(got, want, "run {run}: level-2 entries diverge");
        for (node, file) in &got {
            assert_eq!(
                res_l2.get_run(run, node, file).unwrap(),
                ref_l2.get_run(run, node, file).unwrap(),
                "run {run}: {node}/{file} diverges from the reference"
            );
        }
    }
    assert_eq!(res_l2.journal_runs().unwrap(), vec![0, 1, 2, 3]);

    std::fs::remove_dir_all(&reference.l2_root).ok();
    std::fs::remove_dir_all(&root).ok();
}

/// A schedule that never clears is rejected by the test harness helper —
/// guarding the suite itself against a meaningless configuration.
#[test]
#[should_panic(expected = "eventually clear")]
fn non_clearing_schedules_are_rejected() {
    let opts = ChaosOptions {
        horizon_calls: u64::MAX,
        ..ChaosOptions::flaky(1, 0.5, 0)
    };
    let _ = ample_retry(&opts);
}
