//! Property tests for treatment-plan generation and description round-trips.

use excovery_desc::factors::{Factor, FactorList, FactorUsage};
use excovery_desc::plan::{Design, PlanOptions, RunSpec, TreatmentPlan};
use excovery_desc::xmlio::{from_xml, to_xml};
use excovery_desc::ExperimentDescription;
use proptest::prelude::*;
use std::collections::HashMap;

fn usage_strategy() -> impl Strategy<Value = FactorUsage> {
    prop_oneof![
        Just(FactorUsage::Blocking),
        Just(FactorUsage::Random),
        Just(FactorUsage::Constant),
    ]
}

fn factor_strategy(idx: usize) -> impl Strategy<Value = Factor> {
    (
        usage_strategy(),
        prop::collection::vec(-1000i64..1000, 1..5),
    )
        .prop_map(move |(usage, levels)| Factor::int(format!("f{idx}"), usage, levels))
}

fn factor_list_strategy() -> impl Strategy<Value = FactorList> {
    (prop::collection::vec(any::<u8>(), 0..4), 1u64..6).prop_flat_map(|(shape, reps)| {
        let factors: Vec<_> = shape
            .iter()
            .enumerate()
            .map(|(i, _)| factor_strategy(i))
            .collect();
        (factors, Just(reps)).prop_map(|(fs, reps)| {
            let mut fl = FactorList::new().with_replication("rep", reps);
            for f in fs {
                fl.factors.push(f);
            }
            fl
        })
    })
}

fn design_strategy() -> impl Strategy<Value = Design> {
    prop_oneof![
        Just(Design::Ofat),
        Just(Design::CompletelyRandomized),
        Just(Design::RandomizedWithinBlocks),
    ]
}

fn multiset(runs: &[RunSpec]) -> HashMap<(String, u64), usize> {
    let mut m = HashMap::new();
    for r in runs {
        *m.entry((r.treatment.key(), r.replicate)).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Plan size equals the product of level counts times replication,
    /// run ids are sequential, and every (treatment, replicate) pair
    /// appears exactly once — in every design.
    #[test]
    fn plan_invariants(fl in factor_list_strategy(), design in design_strategy(), seed in 0u64..1000) {
        let plan = TreatmentPlan::generate(&fl, &PlanOptions { design, seed });
        prop_assert_eq!(plan.len() as u64, fl.total_runs());
        for (i, r) in plan.runs.iter().enumerate() {
            prop_assert_eq!(r.run_id, i as u64);
            prop_assert!(r.replicate < fl.replication.count.max(1));
        }
        let counts = multiset(&plan.runs);
        prop_assert!(counts.values().all(|&c| c == 1), "pairs must be unique");
        prop_assert_eq!(counts.len(), plan.len());
    }

    /// Every design is a permutation of the OFAT plan's run multiset.
    #[test]
    fn designs_are_permutations(fl in factor_list_strategy(), seed in 0u64..1000) {
        let ofat = TreatmentPlan::generate(&fl, &PlanOptions { design: Design::Ofat, seed });
        for design in [Design::CompletelyRandomized, Design::RandomizedWithinBlocks] {
            let other = TreatmentPlan::generate(&fl, &PlanOptions { design, seed });
            prop_assert_eq!(multiset(&ofat.runs), multiset(&other.runs));
        }
    }

    /// Same inputs produce identical plans (seeded determinism, §IV-C1).
    #[test]
    fn plans_are_deterministic(fl in factor_list_strategy(), design in design_strategy(), seed in 0u64..1000) {
        let a = TreatmentPlan::generate(&fl, &PlanOptions { design, seed });
        let b = TreatmentPlan::generate(&fl, &PlanOptions { design, seed });
        prop_assert_eq!(a, b);
    }

    /// A description with arbitrary factor lists round-trips through XML.
    #[test]
    fn factor_lists_roundtrip_through_xml(fl in factor_list_strategy(), seed in 0u64..100) {
        let mut d = ExperimentDescription::new("prop");
        d.seed = seed;
        d.factors = fl;
        let xml = to_xml(&d);
        let back = from_xml(&xml).expect("parse back");
        prop_assert_eq!(back, d);
    }

    /// Custom orders replay the named treatments exactly.
    #[test]
    fn custom_order_respects_sequence(
        fl in factor_list_strategy(),
        raw_order in prop::collection::vec(0usize..64, 0..6),
    ) {
        let base = TreatmentPlan::generate(&fl, &PlanOptions::default());
        let n_treat = base.distinct_treatments().len();
        let order: Vec<usize> = raw_order.into_iter().map(|i| i % n_treat).collect();
        let plan = TreatmentPlan::with_custom_order(&fl, &PlanOptions::default(), &order)
            .expect("indices are in range");
        let reps = fl.replication.count.max(1) as usize;
        prop_assert_eq!(plan.len(), order.len() * reps);
        let treatments = base.distinct_treatments();
        for (slot, &idx) in order.iter().enumerate() {
            for r in 0..reps {
                prop_assert_eq!(&plan.runs[slot * reps + r].treatment, treatments[idx]);
            }
        }
    }
}
