//! The experiment-description schema document.
//!
//! "An XML schema description is provided with the framework code"
//! (paper §IV-C). This module ships that schema as a W3C XML Schema (XSD)
//! document describing the description dialect of Figs. 4–10, generated
//! from one source of truth so it cannot drift from the parser. Semantic
//! checks beyond grammar live in [`crate::validate`].

use excovery_xml::{Element, ElementBuilder};

const XS: &str = "xs";

fn element(name: &str, type_ref: &str, min: u32, max: Option<u32>) -> ElementBuilder {
    let b = ElementBuilder::new(format!("{XS}:element"))
        .attr("name", name)
        .attr("type", type_ref)
        .attr("minOccurs", min);
    match max {
        Some(m) => b.attr("maxOccurs", m),
        None => b.attr("maxOccurs", "unbounded"),
    }
}

fn attribute(name: &str, type_ref: &str, required: bool) -> ElementBuilder {
    ElementBuilder::new(format!("{XS}:attribute"))
        .attr("name", name)
        .attr("type", type_ref)
        .attr("use", if required { "required" } else { "optional" })
}

fn complex_type(name: &str, children: Vec<ElementBuilder>, attrs: Vec<ElementBuilder>) -> Element {
    let mut t = ElementBuilder::new(format!("{XS}:complexType")).attr("name", name);
    if !children.is_empty() {
        t = t.child(ElementBuilder::new(format!("{XS}:sequence")).children(children));
    }
    t = t.children(attrs);
    t.build()
}

/// Builds the XSD document for the experiment-description dialect.
pub fn schema_document() -> Element {
    let mut root = ElementBuilder::new(format!("{XS}:schema"))
        .attr("xmlns:xs", "http://www.w3.org/2001/XMLSchema")
        .attr("elementFormDefault", "qualified");

    // Root element.
    root = root.child(
        ElementBuilder::new(format!("{XS}:element"))
            .attr("name", "experiment")
            .attr("type", "ExperimentType"),
    );

    // experiment
    root = root.child_element(complex_type(
        "ExperimentType",
        vec![
            element("comment", "xs:string", 0, Some(1)),
            element("nodes", "NodesType", 0, Some(1)),
            element("params", "ParamsType", 0, Some(1)),
            element("factorlist", "FactorListType", 0, Some(1)),
            element("node_processes", "NodeProcessesType", 0, Some(1)),
            element("env_process", "EnvProcessType", 0, None),
            element("platform", "PlatformType", 0, Some(1)),
        ],
        vec![
            attribute("name", "xs:string", true),
            attribute("seed", "xs:unsignedLong", false),
            attribute("design", "DesignType", false),
        ],
    ));

    // design enumeration
    root = root.child(
        ElementBuilder::new(format!("{XS}:simpleType"))
            .attr("name", "DesignType")
            .child(
                ElementBuilder::new(format!("{XS}:restriction"))
                    .attr("base", "xs:string")
                    .children(["ofat", "crd", "rcbd"].iter().map(|v| {
                        ElementBuilder::new(format!("{XS}:enumeration")).attr("value", *v)
                    })),
            ),
    );

    // usage enumeration (Fig. 5)
    root = root.child(
        ElementBuilder::new(format!("{XS}:simpleType"))
            .attr("name", "UsageType")
            .child(
                ElementBuilder::new(format!("{XS}:restriction"))
                    .attr("base", "xs:string")
                    .children(
                        ["blocking", "random", "constant", "replication"]
                            .iter()
                            .map(|v| {
                                ElementBuilder::new(format!("{XS}:enumeration")).attr("value", *v)
                            }),
                    ),
            ),
    );

    // nodes / params (Fig. 4)
    root = root.child_element(complex_type(
        "NodesType",
        vec![element("node", "AbstractNodeType", 0, None)],
        vec![],
    ));
    root = root.child_element(complex_type(
        "AbstractNodeType",
        vec![],
        vec![attribute("id", "xs:string", true)],
    ));
    root = root.child_element(complex_type(
        "ParamsType",
        vec![element("param", "ParamType", 0, None)],
        vec![],
    ));
    root = root.child_element(complex_type(
        "ParamType",
        vec![],
        vec![
            attribute("key", "xs:string", true),
            attribute("value", "xs:string", true),
        ],
    ));

    // factor list (Fig. 5)
    root = root.child_element(complex_type(
        "FactorListType",
        vec![
            element("factor", "FactorType", 0, None),
            element("replicationfactor", "ReplicationType", 0, Some(1)),
        ],
        vec![],
    ));
    root = root.child_element(complex_type(
        "FactorType",
        vec![
            element("description", "xs:string", 0, Some(1)),
            element("levels", "LevelsType", 1, Some(1)),
        ],
        vec![
            attribute("id", "xs:string", true),
            attribute("type", "xs:string", true),
            attribute("usage", "UsageType", true),
        ],
    ));
    root = root.child_element(complex_type(
        "LevelsType",
        vec![element("level", "LevelType", 1, None)],
        vec![],
    ));
    // A level is mixed content: scalar text or nested actor assignments.
    root = root.child(
        ElementBuilder::new(format!("{XS}:complexType"))
            .attr("name", "LevelType")
            .attr("mixed", "true")
            .child(ElementBuilder::new(format!("{XS}:sequence")).child(element(
                "actor",
                "ActorAssignmentType",
                0,
                None,
            ))),
    );
    root = root.child_element(complex_type(
        "ActorAssignmentType",
        vec![element("instance", "InstanceType", 1, None)],
        vec![attribute("id", "xs:string", true)],
    ));
    root = root.child(
        ElementBuilder::new(format!("{XS}:complexType"))
            .attr("name", "InstanceType")
            .attr("mixed", "true")
            .child(attribute("id", "xs:unsignedInt", false)),
    );
    root = root.child_element(complex_type(
        "ReplicationType",
        vec![],
        vec![
            attribute("id", "xs:string", true),
            attribute("type", "xs:string", false),
            attribute("usage", "UsageType", false),
        ],
    ));

    // processes (Figs. 6/9/10): the action vocabulary is open (plugins!),
    // so actions validate as xs:any with the flow-control elements named.
    root = root.child_element(complex_type(
        "NodeProcessesType",
        vec![element("actor", "ActorProcessType", 0, None)],
        vec![],
    ));
    root = root.child_element(complex_type(
        "ActorProcessType",
        vec![
            element("nodes", "NodesRefType", 0, Some(1)),
            element("sd_actions", "ActionsType", 0, Some(1)),
        ],
        vec![
            attribute("id", "xs:string", true),
            attribute("name", "xs:string", false),
            attribute("kind", "xs:string", false),
        ],
    ));
    root = root.child_element(complex_type(
        "NodesRefType",
        vec![element("factorref", "FactorRefType", 1, Some(1))],
        vec![],
    ));
    root = root.child_element(complex_type(
        "FactorRefType",
        vec![],
        vec![attribute("id", "xs:string", true)],
    ));
    root = root.child(
        ElementBuilder::new(format!("{XS}:complexType"))
            .attr("name", "ActionsType")
            .child(
                ElementBuilder::new(format!("{XS}:sequence")).child(
                    ElementBuilder::new(format!("{XS}:any"))
                        .attr("minOccurs", 0)
                        .attr("maxOccurs", "unbounded")
                        .attr("processContents", "lax"),
                ),
            ),
    );
    root = root.child_element(complex_type(
        "EnvProcessType",
        vec![element("env_actions", "ActionsType", 0, Some(1))],
        vec![],
    ));

    // platform (Fig. 8)
    root = root.child_element(complex_type(
        "PlatformType",
        vec![
            element("actor_nodes", "PlatformNodesType", 0, Some(1)),
            element("env_nodes", "PlatformNodesType", 0, Some(1)),
            element("special_params", "ParamsType", 0, Some(1)),
        ],
        vec![],
    ));
    root = root.child_element(complex_type(
        "PlatformNodesType",
        vec![element("node", "PlatformNodeType", 0, None)],
        vec![],
    ));
    root = root.child_element(complex_type(
        "PlatformNodeType",
        vec![],
        vec![
            attribute("id", "xs:string", true),
            attribute("address", "xs:string", true),
            attribute("abstract", "xs:string", false),
        ],
    ));

    root.build()
}

/// The schema as a pretty-printed XML document.
pub fn schema_text() -> String {
    excovery_xml::to_string_pretty(&excovery_xml::Document::with_declaration(schema_document()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_xml::parse;

    #[test]
    fn schema_is_wellformed_xml() {
        let text = schema_text();
        let doc = parse(&text).expect("schema parses");
        assert_eq!(doc.root().name, "xs:schema");
    }

    #[test]
    fn schema_declares_all_description_types() {
        let schema = schema_document();
        let names: Vec<&str> = schema
            .find_all("xs:complexType")
            .iter()
            .filter_map(|t| t.attr("name"))
            .collect();
        for expected in [
            "ExperimentType",
            "FactorListType",
            "FactorType",
            "LevelsType",
            "LevelType",
            "ActorAssignmentType",
            "ReplicationType",
            "NodeProcessesType",
            "ActorProcessType",
            "ActionsType",
            "EnvProcessType",
            "PlatformType",
            "PlatformNodeType",
        ] {
            assert!(
                names.contains(&expected),
                "schema lacks {expected}: {names:?}"
            );
        }
    }

    #[test]
    fn usage_enumeration_matches_factor_usage() {
        let schema = schema_document();
        let usage = schema
            .find_all("xs:simpleType")
            .into_iter()
            .find(|t| t.attr("name") == Some("UsageType"))
            .expect("UsageType present");
        let values: Vec<&str> = usage
            .find_all("xs:restriction/xs:enumeration")
            .iter()
            .filter_map(|e| e.attr("value"))
            .collect();
        use crate::factors::FactorUsage;
        for u in [
            FactorUsage::Blocking,
            FactorUsage::Random,
            FactorUsage::Constant,
            FactorUsage::Replication,
        ] {
            assert!(values.contains(&u.as_str()), "{values:?}");
        }
    }

    #[test]
    fn design_enumeration_matches_designs() {
        let text = schema_text();
        for d in ["ofat", "crd", "rcbd"] {
            assert!(text.contains(&format!("value=\"{d}\"")), "{d}");
        }
    }

    #[test]
    fn paper_description_elements_are_declared() {
        // Every element the paper's listings use appears in the schema.
        let text = schema_text();
        for name in [
            "factorlist",
            "replicationfactor",
            "env_process",
            "node_processes",
            "actor_nodes",
            "env_nodes",
            "sd_actions",
            "env_actions",
        ] {
            assert!(text.contains(&format!("name=\"{name}\"")), "{name}");
        }
    }
}
