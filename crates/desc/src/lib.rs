//! # excovery-desc
//!
//! The abstract experiment description of ExCovery (paper §IV-C/§IV-E) and
//! its treatment-plan generation (§IV-C1).
//!
//! An experiment description consists of three parts:
//!
//! 1. the **experiment design** — which [`factors`] are applied in which
//!    combination and order, including the replication factor;
//! 2. **manipulations** of the process environment and participants —
//!    fault-injection and environment-manipulation [`process`]es;
//! 3. the **distributed process under examination** — actor processes built
//!    from actions and flow-control functions (`wait_for_time`,
//!    `wait_for_event`, `wait_marker`, `event_flag`).
//!
//! Descriptions are notated in XML ([`xmlio`]), validated ([`validate`])
//! and expanded into deterministic treatment [`plan`]s. The [`platform`]
//! module carries the mapping from abstract nodes to concrete platform
//! nodes (paper Fig. 8).

pub mod factors;
pub mod model;
pub mod plan;
pub mod platform;
pub mod process;
pub mod schema_doc;
pub mod validate;
pub mod visualize;
pub mod xmlio;

pub use factors::{Factor, FactorList, FactorUsage, Level, LevelValue};
pub use model::{DescError, ExperimentDescription};
pub use plan::{Design, PlanOptions, RunSpec, Treatment, TreatmentPlan};
pub use platform::{NodeSpec, PlatformSpec};
pub use process::{ActorProcess, EnvProcess, EventSelector, NodeSelector, ProcessAction, ValueRef};
