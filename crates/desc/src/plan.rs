//! Treatment-plan generation (paper §IV-C1).
//!
//! "To execute the overall experiment and its individual runs from the
//! abstract experiment description, ExCovery generates treatment plans from
//! replications, the factors and their levels. Plans are OFAT if no custom
//! factor level variation plan is given. [...] Which seed is used for
//! initialization is clearly defined in the experiment description so that
//! all random sequences can be reproduced."

use crate::factors::{FactorList, FactorUsage, Level};
use excovery_netsim::rng::derive_rng;
use rand::seq::SliceRandom;
use std::collections::BTreeMap;

/// How treatments are ordered over the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// One-factor-at-a-time: the first factor of the list varies least
    /// often, the last changes every treatment (the paper's default:
    /// "plans are OFAT if no custom factor level variation plan is given").
    Ofat,
    /// Completely randomized: all runs (treatments × replicates) shuffled.
    CompletelyRandomized,
    /// Randomized complete block design: runs are shuffled *within* each
    /// block of the first blocking factor, preserving block order — the
    /// classic way to combine the paper's blocking factors (§II-A3) with
    /// the randomization statistical analysis requires.
    RandomizedWithinBlocks,
}

/// Options controlling plan generation.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Treatment ordering.
    pub design: Design,
    /// Master seed for all random sequences of the plan.
    pub seed: u64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            design: Design::Ofat,
            seed: 0,
        }
    }
}

fn renumber(runs: &mut [RunSpec]) {
    for (i, r) in runs.iter_mut().enumerate() {
        r.run_id = i as u64;
    }
}

/// One treatment: a level chosen for every factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Treatment {
    assignments: BTreeMap<String, Level>,
}

impl Treatment {
    /// Creates a treatment from explicit assignments.
    pub fn from_assignments(assignments: impl IntoIterator<Item = (String, Level)>) -> Self {
        Self {
            assignments: assignments.into_iter().collect(),
        }
    }

    /// The level assigned to `factor_id`.
    pub fn level(&self, factor_id: &str) -> Option<&Level> {
        self.assignments.get(factor_id)
    }

    /// Integer shortcut.
    pub fn int(&self, factor_id: &str) -> Option<i64> {
        self.level(factor_id).and_then(Level::as_int)
    }

    /// Float shortcut.
    pub fn float(&self, factor_id: &str) -> Option<f64> {
        self.level(factor_id).and_then(Level::as_float)
    }

    /// All assignments, ordered by factor id.
    pub fn assignments(&self) -> impl Iterator<Item = (&str, &Level)> {
        self.assignments.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stable textual key identifying the treatment (for grouping in
    /// analysis and for the stored experiment plan).
    pub fn key(&self) -> String {
        self.assignments
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join("|")
    }
}

/// One planned run: a treatment plus its replicate index.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position in the executed sequence, starting at 0.
    pub run_id: u64,
    /// The treatment applied in this run.
    pub treatment: Treatment,
    /// Replicate number within the treatment, starting at 0.
    pub replicate: u64,
}

/// The fully expanded, ordered list of runs.
///
/// ```
/// use excovery_desc::plan::{PlanOptions, TreatmentPlan};
/// use excovery_desc::FactorList;
///
/// // Fig. 5: 6 treatments x 1000 replications.
/// let plan = TreatmentPlan::generate(&FactorList::paper_fig5(), &PlanOptions::default());
/// assert_eq!(plan.len(), 6000);
/// assert_eq!(plan.distinct_treatments().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TreatmentPlan {
    /// Runs in execution order.
    pub runs: Vec<RunSpec>,
    /// Options the plan was generated with (stored for transparency).
    pub options_seed: u64,
    /// Design used.
    pub design: Design,
}

impl TreatmentPlan {
    /// Generates the plan for a factor list.
    ///
    /// Deterministic: the same `(factors, options)` always yields the same
    /// plan. Random level orders (factors with `usage="random"`) and the
    /// completely randomized design draw from streams derived from
    /// `options.seed`.
    pub fn generate(factors: &FactorList, options: &PlanOptions) -> Self {
        // Per-factor level orders; random factors get a seeded shuffle.
        let mut level_orders: Vec<Vec<usize>> = Vec::with_capacity(factors.factors.len());
        for f in &factors.factors {
            let mut order: Vec<usize> = (0..f.level_count()).collect();
            if f.usage == FactorUsage::Random {
                let mut rng = derive_rng(options.seed, &format!("levels:{}", f.id));
                order.shuffle(&mut rng);
            }
            level_orders.push(order);
        }

        // Cartesian product in OFAT order: first factor varies least,
        // last factor changes every treatment (odometer, last digit fastest).
        let mut treatments: Vec<Treatment> = Vec::new();
        let counts: Vec<usize> = factors
            .factors
            .iter()
            .map(|f| f.level_count().max(1))
            .collect();
        let total: usize = counts.iter().product();
        for mut idx in 0..total {
            let mut digits = vec![0usize; counts.len()];
            for (d, &c) in digits.iter_mut().zip(&counts).rev() {
                *d = idx % c;
                idx /= c;
            }
            let assignments = factors.factors.iter().enumerate().filter_map(|(i, f)| {
                if f.levels.is_empty() {
                    return None;
                }
                let level = f.levels[level_orders[i][digits[i]]].clone();
                Some((f.id.clone(), level))
            });
            treatments.push(Treatment::from_assignments(assignments));
        }

        // Expand replication: OFAT replicates each treatment back-to-back.
        let reps = factors.replication.count.max(1);
        let mut runs: Vec<RunSpec> = Vec::with_capacity(treatments.len() * reps as usize);
        let mut run_id = 0;
        for t in &treatments {
            for r in 0..reps {
                runs.push(RunSpec {
                    run_id,
                    treatment: t.clone(),
                    replicate: r,
                });
                run_id += 1;
            }
        }

        match options.design {
            Design::Ofat => {}
            Design::CompletelyRandomized => {
                let mut rng = derive_rng(options.seed, "plan:crd");
                runs.shuffle(&mut rng);
                renumber(&mut runs);
            }
            Design::RandomizedWithinBlocks => {
                // Identify the blocking factor: the first with that usage.
                let blocking = factors
                    .factors
                    .iter()
                    .find(|f| f.usage == FactorUsage::Blocking);
                match blocking {
                    None => {
                        // Without blocks this degenerates to CRD.
                        let mut rng = derive_rng(options.seed, "plan:rcbd");
                        runs.shuffle(&mut rng);
                    }
                    Some(bf) => {
                        // Runs are already grouped by the blocking factor if
                        // it comes first in OFAT order; group explicitly to
                        // be robust against arbitrary factor positions.
                        let mut groups: Vec<(String, Vec<RunSpec>)> = Vec::new();
                        for run in runs.drain(..) {
                            let key = run
                                .treatment
                                .level(&bf.id)
                                .map(|l| l.to_string())
                                .unwrap_or_default();
                            match groups.iter_mut().find(|(k, _)| *k == key) {
                                Some((_, g)) => g.push(run),
                                None => groups.push((key, vec![run])),
                            }
                        }
                        for (i, (_, group)) in groups.iter_mut().enumerate() {
                            let mut rng = derive_rng(options.seed, &format!("plan:rcbd:block{i}"));
                            group.shuffle(&mut rng);
                        }
                        runs = groups.into_iter().flat_map(|(_, g)| g).collect();
                    }
                }
                renumber(&mut runs);
            }
        }

        Self {
            runs,
            options_seed: options.seed,
            design: options.design,
        }
    }

    /// Generates a plan following a **custom factor level variation plan**
    /// (paper §IV-C1): `order` lists treatment indices (into the OFAT
    /// treatment enumeration) in the order they should run; each index may
    /// appear any number of times, and each appearance executes the full
    /// replication count back to back.
    pub fn with_custom_order(
        factors: &FactorList,
        options: &PlanOptions,
        order: &[usize],
    ) -> Result<Self, String> {
        let base = Self::generate(
            factors,
            &PlanOptions {
                design: Design::Ofat,
                ..options.clone()
            },
        );
        let treatments = base.distinct_treatments();
        let reps = factors.replication.count.max(1);
        let mut runs = Vec::with_capacity(order.len() * reps as usize);
        for &idx in order {
            let t = treatments.get(idx).ok_or_else(|| {
                format!("treatment index {idx} out of range 0..{}", treatments.len())
            })?;
            for r in 0..reps {
                runs.push(RunSpec {
                    run_id: 0,
                    treatment: (*t).clone(),
                    replicate: r,
                });
            }
        }
        renumber(&mut runs);
        Ok(Self {
            runs,
            options_seed: options.seed,
            design: Design::Ofat,
        })
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if the plan has no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Distinct treatments in first-appearance order.
    pub fn distinct_treatments(&self) -> Vec<&Treatment> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.runs {
            if seen.insert(r.treatment.key()) {
                out.push(&r.treatment);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::{Factor, FactorList};

    fn two_by_three() -> FactorList {
        FactorList::new()
            .with_factor(Factor::int("a", FactorUsage::Constant, [1, 2]))
            .with_factor(Factor::int("b", FactorUsage::Constant, [10, 20, 30]))
            .with_replication("rep", 2)
    }

    #[test]
    fn ofat_order_last_factor_fastest() {
        let fl = two_by_three();
        let plan = TreatmentPlan::generate(&fl, &PlanOptions::default());
        assert_eq!(plan.len(), 12);
        // With 2 replicates per treatment: a=1 stays for 6 runs.
        let a_vals: Vec<i64> = plan
            .runs
            .iter()
            .map(|r| r.treatment.int("a").unwrap())
            .collect();
        assert_eq!(&a_vals[..6], &[1, 1, 1, 1, 1, 1]);
        assert_eq!(&a_vals[6..], &[2, 2, 2, 2, 2, 2]);
        let b_vals: Vec<i64> = plan
            .runs
            .iter()
            .map(|r| r.treatment.int("b").unwrap())
            .collect();
        assert_eq!(&b_vals[..6], &[10, 10, 20, 20, 30, 30]);
    }

    #[test]
    fn replicate_indices_count_within_treatment() {
        let fl = two_by_three();
        let plan = TreatmentPlan::generate(&fl, &PlanOptions::default());
        for chunk in plan.runs.chunks(2) {
            assert_eq!(chunk[0].replicate, 0);
            assert_eq!(chunk[1].replicate, 1);
            assert_eq!(chunk[0].treatment, chunk[1].treatment);
        }
    }

    #[test]
    fn run_ids_are_sequential() {
        let plan = TreatmentPlan::generate(&two_by_three(), &PlanOptions::default());
        for (i, r) in plan.runs.iter().enumerate() {
            assert_eq!(r.run_id, i as u64);
        }
    }

    #[test]
    fn random_usage_shuffles_level_order_deterministically() {
        let fl = FactorList::new()
            .with_factor(Factor::int("r", FactorUsage::Random, 0..20))
            .with_replication("rep", 1);
        let p1 = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::Ofat,
                seed: 7,
            },
        );
        let p2 = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::Ofat,
                seed: 7,
            },
        );
        assert_eq!(p1, p2, "same seed, same plan");
        let p3 = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::Ofat,
                seed: 8,
            },
        );
        let order1: Vec<i64> = p1
            .runs
            .iter()
            .map(|r| r.treatment.int("r").unwrap())
            .collect();
        let order3: Vec<i64> = p3
            .runs
            .iter()
            .map(|r| r.treatment.int("r").unwrap())
            .collect();
        assert_ne!(order1, order3, "different seed shuffles differently");
        // All levels still present exactly once.
        let mut sorted = order1.clone();
        sorted.sort();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn completely_randomized_permutes_all_runs() {
        let fl = two_by_three();
        let ofat = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::Ofat,
                seed: 3,
            },
        );
        let crd = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::CompletelyRandomized,
                seed: 3,
            },
        );
        assert_eq!(ofat.len(), crd.len());
        // Same multiset of (treatment, replicate) pairs.
        let keyfn = |r: &RunSpec| (r.treatment.key(), r.replicate);
        let mut a: Vec<_> = ofat.runs.iter().map(keyfn).collect();
        let mut b: Vec<_> = crd.runs.iter().map(keyfn).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Run ids renumbered sequentially.
        for (i, r) in crd.runs.iter().enumerate() {
            assert_eq!(r.run_id, i as u64);
        }
        // And the order actually differs (12 runs, astronomically unlikely
        // to shuffle into identity).
        assert_ne!(
            ofat.runs.iter().map(keyfn).collect::<Vec<_>>(),
            crd.runs.iter().map(keyfn).collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_fig5_plan_counts() {
        let fl = FactorList::paper_fig5();
        let plan = TreatmentPlan::generate(&fl, &PlanOptions::default());
        assert_eq!(plan.len(), 6_000);
        assert_eq!(plan.distinct_treatments().len(), 6);
        // Constant bw factor cycles 10 → 50 → 100 in listed order.
        let bw_first_three: Vec<i64> = plan
            .distinct_treatments()
            .iter()
            .take(3)
            .map(|t| t.int("fact_bw").unwrap())
            .collect();
        assert_eq!(bw_first_three, vec![10, 50, 100]);
    }

    #[test]
    fn treatment_key_is_stable_and_distinct() {
        let fl = two_by_three();
        let plan = TreatmentPlan::generate(&fl, &PlanOptions::default());
        let keys: std::collections::HashSet<String> =
            plan.runs.iter().map(|r| r.treatment.key()).collect();
        assert_eq!(keys.len(), 6);
        assert!(keys.iter().any(|k| k == "a=1|b=10"), "{keys:?}");
    }

    #[test]
    fn empty_factor_list_yields_replication_only() {
        let fl = FactorList::new().with_replication("rep", 5);
        let plan = TreatmentPlan::generate(&fl, &PlanOptions::default());
        assert_eq!(plan.len(), 5);
        for r in &plan.runs {
            assert_eq!(r.treatment.assignments().count(), 0);
        }
    }

    #[test]
    fn rcbd_preserves_block_order_and_shuffles_within() {
        use crate::factors::{ActorAssignment, LevelValue};
        // Blocking factor with 2 levels (two actor maps), inner factor 3 levels.
        let mk_map = |node: &str| {
            LevelValue::ActorMap(vec![ActorAssignment {
                actor_id: "actor0".into(),
                instances: vec![node.to_string()],
            }])
        };
        let mut blocking = Factor::int("block", FactorUsage::Blocking, std::iter::empty());
        blocking.level_type = "actor_node_map".into();
        blocking.levels = vec![mk_map("A"), mk_map("B")];
        let fl = FactorList::new()
            .with_factor(blocking)
            .with_factor(Factor::int("x", FactorUsage::Constant, [1, 2, 3]))
            .with_replication("rep", 4);
        let plan = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::RandomizedWithinBlocks,
                seed: 9,
            },
        );
        assert_eq!(plan.len(), 24);
        // First 12 runs all in block A, last 12 in block B.
        let block_of = |r: &RunSpec| r.treatment.level("block").unwrap().to_string();
        assert!(plan.runs[..12]
            .iter()
            .all(|r| block_of(r) == block_of(&plan.runs[0])));
        assert!(plan.runs[12..]
            .iter()
            .all(|r| block_of(r) == block_of(&plan.runs[12])));
        assert_ne!(block_of(&plan.runs[0]), block_of(&plan.runs[12]));
        // Within a block the x sequence is shuffled relative to OFAT.
        let ofat = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::Ofat,
                seed: 9,
            },
        );
        let xs_rcbd: Vec<i64> = plan.runs[..12]
            .iter()
            .map(|r| r.treatment.int("x").unwrap())
            .collect();
        let xs_ofat: Vec<i64> = ofat.runs[..12]
            .iter()
            .map(|r| r.treatment.int("x").unwrap())
            .collect();
        assert_ne!(xs_rcbd, xs_ofat, "within-block order must be randomized");
        let mut sorted = xs_rcbd.clone();
        sorted.sort();
        let mut expected = xs_ofat.clone();
        expected.sort();
        assert_eq!(sorted, expected, "same multiset within the block");
        // Deterministic in the seed.
        let again = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::RandomizedWithinBlocks,
                seed: 9,
            },
        );
        assert_eq!(plan, again);
    }

    #[test]
    fn rcbd_without_blocking_factor_degenerates_to_crd() {
        let fl = two_by_three();
        let plan = TreatmentPlan::generate(
            &fl,
            &PlanOptions {
                design: Design::RandomizedWithinBlocks,
                seed: 5,
            },
        );
        assert_eq!(plan.len(), 12);
        let ofat = TreatmentPlan::generate(&fl, &PlanOptions::default());
        let key = |r: &RunSpec| (r.treatment.key(), r.replicate);
        let mut a: Vec<_> = plan.runs.iter().map(key).collect();
        let mut b: Vec<_> = ofat.runs.iter().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_order_plan_follows_given_sequence() {
        let fl = two_by_three(); // 6 treatments, 2 reps
        let plan =
            TreatmentPlan::with_custom_order(&fl, &PlanOptions::default(), &[5, 0, 0, 3]).unwrap();
        assert_eq!(plan.len(), 8, "4 entries x 2 replications");
        let ofat = TreatmentPlan::generate(&fl, &PlanOptions::default());
        let treatments = ofat.distinct_treatments();
        assert_eq!(&plan.runs[0].treatment, treatments[5]);
        assert_eq!(&plan.runs[2].treatment, treatments[0]);
        assert_eq!(&plan.runs[4].treatment, treatments[0]);
        assert_eq!(&plan.runs[6].treatment, treatments[3]);
        for (i, r) in plan.runs.iter().enumerate() {
            assert_eq!(r.run_id, i as u64);
        }
        assert!(TreatmentPlan::with_custom_order(&fl, &PlanOptions::default(), &[6]).is_err());
    }

    #[test]
    fn factor_with_no_levels_is_skipped() {
        let fl = FactorList::new()
            .with_factor(Factor::int(
                "empty",
                FactorUsage::Constant,
                std::iter::empty(),
            ))
            .with_factor(Factor::int("x", FactorUsage::Constant, [1, 2]));
        let plan = TreatmentPlan::generate(&fl, &PlanOptions::default());
        assert_eq!(plan.len(), 2);
        assert!(plan.runs[0].treatment.level("empty").is_none());
    }
}
