//! XML binding for experiment descriptions.
//!
//! Emits and parses the dialect of the paper's listings (Figs. 4–10):
//! `<experiment>` with `<nodes>`, `<params>`, `<factorlist>`,
//! `<node_processes>`/`<env_process>` and `<platform>`. Round-tripping is
//! lossless for every construct the model represents; the schema-style
//! structural checks live in [`crate::validate`].

use crate::factors::{ActorAssignment, Factor, FactorList, FactorUsage, LevelValue, Replication};
use crate::model::{DescError, ExperimentDescription};
use crate::plan::Design;
use crate::platform::{NodeSpec, PlatformSpec};
use crate::process::{
    ActorProcess, EnvProcess, EventSelector, InstanceSelector, NodeSelector, ProcessAction,
    ValueRef,
};
use excovery_xml::{parse, Document, Element, ElementBuilder};

// ---------------------------------------------------------------- emitting

/// Serializes a description to pretty-printed XML.
pub fn to_xml(desc: &ExperimentDescription) -> String {
    excovery_xml::to_string_pretty(&Document::with_declaration(experiment_element(desc)))
}

/// Builds the `<experiment>` root element.
pub fn experiment_element(desc: &ExperimentDescription) -> Element {
    let mut root = ElementBuilder::new("experiment")
        .attr("name", &desc.name)
        .attr("seed", desc.seed)
        .attr(
            "design",
            match desc.design {
                Design::Ofat => "ofat",
                Design::CompletelyRandomized => "crd",
                Design::RandomizedWithinBlocks => "rcbd",
            },
        );
    if let Some(c) = &desc.comment {
        root = root.child(ElementBuilder::new("comment").text(c));
    }
    // Fig. 4: abstract nodes and informative parameters.
    root = root.child(
        ElementBuilder::new("nodes").children(
            desc.abstract_nodes
                .iter()
                .map(|n| ElementBuilder::new("node").attr("id", n)),
        ),
    );
    root = root.child(
        ElementBuilder::new("params").children(
            desc.params
                .iter()
                .map(|(k, v)| ElementBuilder::new("param").attr("key", k).attr("value", v)),
        ),
    );
    root = root.child_element(factorlist_element(&desc.factors));
    root = root.child(
        ElementBuilder::new("node_processes")
            .children(desc.node_processes.iter().map(actor_process_builder)),
    );
    for env in &desc.env_processes {
        root = root.child_element(env_process_element(env));
    }
    root = root.child_element(platform_element(&desc.platform));
    root.build()
}

/// Builds the `<factorlist>` element (Fig. 5).
pub fn factorlist_element(fl: &FactorList) -> Element {
    let mut b = ElementBuilder::new("factorlist");
    for f in &fl.factors {
        let mut fb = ElementBuilder::new("factor")
            .attr("id", &f.id)
            .attr("type", &f.level_type)
            .attr("usage", f.usage.as_str());
        if let Some(d) = &f.description {
            fb = fb.child(ElementBuilder::new("description").text(d));
        }
        let mut levels = ElementBuilder::new("levels");
        for level in &f.levels {
            levels = levels.child_element(level_element(level));
        }
        fb = fb.child(levels);
        b = b.child(fb);
    }
    b = b.child(
        ElementBuilder::new("replicationfactor")
            .attr("usage", "replication")
            .attr("type", "int")
            .attr("id", &fl.replication.id)
            .text(fl.replication.count),
    );
    b.build()
}

fn level_element(level: &LevelValue) -> Element {
    match level {
        LevelValue::ActorMap(assignments) => {
            let mut b = ElementBuilder::new("level");
            for a in assignments {
                let mut ab = ElementBuilder::new("actor").attr("id", &a.actor_id);
                for (i, inst) in a.instances.iter().enumerate() {
                    ab = ab.child(ElementBuilder::new("instance").attr("id", i).text(inst));
                }
                b = b.child(ab);
            }
            b.build()
        }
        other => Element::with_text("level", other.to_string()),
    }
}

fn actor_process_builder(p: &ActorProcess) -> ElementBuilder {
    let mut b = ElementBuilder::new("actor").attr("id", &p.actor_id);
    if let Some(n) = &p.name {
        b = b.attr("name", n);
    }
    if p.is_manipulation {
        b = b.attr("kind", "manipulation");
    }
    if let Some(f) = &p.nodes_factor {
        b = b.child(
            ElementBuilder::new("nodes").child(ElementBuilder::new("factorref").attr("id", f)),
        );
    }
    let mut actions = ElementBuilder::new("sd_actions");
    for a in &p.actions {
        actions = actions.child_element(action_element(a));
    }
    b.child(actions)
}

fn env_process_element(p: &EnvProcess) -> Element {
    let mut actions = ElementBuilder::new("env_actions");
    for a in &p.actions {
        actions = actions.child_element(action_element(a));
    }
    ElementBuilder::new("env_process").child(actions).build()
}

fn value_ref_child(name: &str, v: &ValueRef) -> Element {
    let mut e = Element::new(name);
    match v {
        ValueRef::Lit(l) => e.push_text(l.to_string()),
        ValueRef::FactorRef(id) => {
            let mut fr = Element::new("factorref");
            fr.set_attr("id", id);
            e.push(fr);
        }
    }
    e
}

/// Builds the XML element of one process action.
pub fn action_element(a: &ProcessAction) -> Element {
    match a {
        ProcessAction::WaitForTime { seconds } => value_ref_child("wait_for_time", seconds),
        ProcessAction::WaitMarker => Element::new("wait_marker"),
        ProcessAction::EventFlag { value } => {
            let mut e = Element::new("event_flag");
            e.push(Element::with_text("value", format!("\"{value}\"")));
            e
        }
        ProcessAction::WaitForEvent(sel) => {
            let mut e = Element::new("wait_for_event");
            if let Some(from) = &sel.from {
                let mut f = Element::new("from_dependency");
                f.push(node_selector_element(from));
                e.push(f);
            }
            e.push(Element::with_text(
                "event_dependency",
                format!("\"{}\"", sel.event),
            ));
            if let Some(param) = &sel.param {
                let mut pe = Element::new("param_dependency");
                pe.push(node_selector_element(param));
                e.push(pe);
            }
            if let Some(t) = &sel.timeout_s {
                match t {
                    ValueRef::Lit(l) => e.push(Element::with_text("timeout", format!("\"{l}\""))),
                    ValueRef::FactorRef(_) => e.push(value_ref_child("timeout", t)),
                }
            }
            e
        }
        ProcessAction::Invoke { name, params } => {
            let mut e = Element::new(name.clone());
            for (k, v) in params {
                e.push(value_ref_child(k, v));
            }
            e
        }
    }
}

fn node_selector_element(sel: &NodeSelector) -> Element {
    let mut e = Element::new("node");
    e.set_attr("actor", &sel.actor);
    match &sel.instance {
        InstanceSelector::All => e.set_attr("instance", "all"),
        InstanceSelector::Index(i) => e.set_attr("instance", i.to_string()),
    }
    e
}

/// Builds the `<platform>` element (Fig. 8).
pub fn platform_element(p: &PlatformSpec) -> Element {
    let mut b = ElementBuilder::new("platform");
    let mut actors = ElementBuilder::new("actor_nodes");
    for n in &p.actor_nodes {
        let mut nb = ElementBuilder::new("node")
            .attr("id", &n.id)
            .attr("address", &n.address);
        if let Some(a) = &n.abstract_id {
            nb = nb.attr("abstract", a);
        }
        actors = actors.child(nb);
    }
    b = b.child(actors);
    let mut envs = ElementBuilder::new("env_nodes");
    for n in &p.env_nodes {
        envs = envs.child(
            ElementBuilder::new("node")
                .attr("id", &n.id)
                .attr("address", &n.address),
        );
    }
    b = b.child(envs);
    if !p.special_params.is_empty() {
        b = b.child(
            ElementBuilder::new("special_params").children(
                p.special_params
                    .iter()
                    .map(|(k, v)| ElementBuilder::new("param").attr("key", k).attr("value", v)),
            ),
        );
    }
    b.build()
}

// ---------------------------------------------------------------- parsing

/// Parses a description from XML text.
pub fn from_xml(text: &str) -> Result<ExperimentDescription, DescError> {
    let doc = parse(text).map_err(|e| DescError(format!("XML: {e}")))?;
    from_element(doc.root())
}

/// Parses a description from a parsed `<experiment>` element.
pub fn from_element(root: &Element) -> Result<ExperimentDescription, DescError> {
    if root.name != "experiment" {
        return Err(DescError(format!(
            "expected <experiment>, found <{}>",
            root.name
        )));
    }
    let mut desc = ExperimentDescription::new(root.attr("name").unwrap_or("unnamed").to_string());
    desc.seed = root
        .attr("seed")
        .map(|s| s.parse().map_err(|_| DescError(format!("bad seed '{s}'"))))
        .transpose()?
        .unwrap_or(0);
    desc.design = match root.attr("design") {
        Some("crd") => Design::CompletelyRandomized,
        Some("rcbd") => Design::RandomizedWithinBlocks,
        _ => Design::Ofat,
    };
    desc.comment = root.child("comment").map(|c| c.text());
    if let Some(nodes) = root.child("nodes") {
        desc.abstract_nodes = nodes
            .elements_named("node")
            .filter_map(|n| n.attr("id").map(str::to_string))
            .collect();
    }
    if let Some(params) = root.child("params") {
        desc.params = params
            .elements_named("param")
            .filter_map(|p| Some((p.attr("key")?.to_string(), p.attr("value")?.to_string())))
            .collect();
    }
    if let Some(fl) = root.child("factorlist") {
        desc.factors = parse_factorlist(fl)?;
    }
    if let Some(nps) = root.child("node_processes") {
        for actor in nps.elements_named("actor") {
            desc.node_processes.push(parse_actor_process(actor)?);
        }
    }
    for env in root.elements_named("env_process") {
        desc.env_processes.push(parse_env_process(env)?);
    }
    if let Some(platform) = root.child("platform") {
        desc.platform = parse_platform(platform)?;
    }
    Ok(desc)
}

/// Parses a `<factorlist>` element (Fig. 5).
pub fn parse_factorlist(e: &Element) -> Result<FactorList, DescError> {
    let mut fl = FactorList::new();
    for f in e.elements_named("factor") {
        let id = f
            .attr("id")
            .ok_or_else(|| DescError("factor without id".into()))?;
        let usage_raw = f.attr("usage").unwrap_or("constant");
        let usage = FactorUsage::parse(usage_raw)
            .ok_or_else(|| DescError(format!("factor '{id}': unknown usage '{usage_raw}'")))?;
        let level_type = f.attr("type").unwrap_or("str").to_string();
        let mut levels = Vec::new();
        if let Some(ls) = f.child("levels") {
            for l in ls.elements_named("level") {
                levels.push(parse_level(l, &level_type, id)?);
            }
        }
        fl.factors.push(Factor {
            id: id.to_string(),
            usage,
            level_type,
            levels,
            description: f.child("description").map(|d| d.text()),
        });
    }
    if let Some(rf) = e.child("replicationfactor") {
        let id = rf.attr("id").unwrap_or("fact_replication_id").to_string();
        let count: u64 = rf
            .text()
            .parse()
            .map_err(|_| DescError(format!("bad replication count '{}'", rf.text())))?;
        fl.replication = Replication { id, count };
    }
    Ok(fl)
}

fn parse_level(l: &Element, level_type: &str, factor_id: &str) -> Result<LevelValue, DescError> {
    match level_type {
        "actor_node_map" => {
            let mut assignments = Vec::new();
            for a in l.elements_named("actor") {
                let actor_id = a
                    .attr("id")
                    .ok_or_else(|| DescError(format!("factor '{factor_id}': actor without id")))?;
                // Instances sorted by their id attribute (document order of
                // equal ids preserved).
                let mut instances: Vec<(u32, String)> = a
                    .elements_named("instance")
                    .map(|i| {
                        let idx = i.attr("id").and_then(|s| s.parse().ok()).unwrap_or(0);
                        (idx, i.text())
                    })
                    .collect();
                instances.sort_by_key(|(i, _)| *i);
                assignments.push(ActorAssignment {
                    actor_id: actor_id.to_string(),
                    instances: instances.into_iter().map(|(_, n)| n).collect(),
                });
            }
            Ok(LevelValue::ActorMap(assignments))
        }
        "int" => l
            .text()
            .parse()
            .map(LevelValue::Int)
            .map_err(|_| DescError(format!("factor '{factor_id}': bad int '{}'", l.text()))),
        "float" => l
            .text()
            .parse()
            .map(LevelValue::Float)
            .map_err(|_| DescError(format!("factor '{factor_id}': bad float '{}'", l.text()))),
        _ => Ok(LevelValue::Text(l.text())),
    }
}

fn parse_actor_process(e: &Element) -> Result<ActorProcess, DescError> {
    let mut p = ActorProcess::new(
        e.attr("id")
            .ok_or_else(|| DescError("actor process without id".into()))?,
    );
    p.name = e.attr("name").map(str::to_string);
    p.is_manipulation = e.attr("kind") == Some("manipulation");
    p.nodes_factor = e
        .find("nodes/factorref")
        .and_then(|fr| fr.attr("id"))
        .map(str::to_string);
    if let Some(actions) = e.child("sd_actions").or_else(|| e.child("actions")) {
        p.actions = parse_actions(actions)?;
    }
    Ok(p)
}

fn parse_env_process(e: &Element) -> Result<EnvProcess, DescError> {
    let mut p = EnvProcess::default();
    if let Some(actions) = e.child("env_actions").or_else(|| e.child("actions")) {
        p.actions = parse_actions(actions)?;
    }
    Ok(p)
}

/// Parses a sequence of actions from an actions container element.
pub fn parse_actions(container: &Element) -> Result<Vec<ProcessAction>, DescError> {
    container.elements().map(parse_action).collect()
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

fn parse_value_ref(e: &Element) -> ValueRef {
    if let Some(fr) = e.child("factorref") {
        return ValueRef::FactorRef(fr.attr("id").unwrap_or_default().to_string());
    }
    let text = unquote(&e.text());
    if let Ok(i) = text.parse::<i64>() {
        ValueRef::Lit(LevelValue::Int(i))
    } else if let Ok(f) = text.parse::<f64>() {
        ValueRef::Lit(LevelValue::Float(f))
    } else {
        ValueRef::Lit(LevelValue::Text(text))
    }
}

fn parse_node_selector(e: &Element) -> Result<NodeSelector, DescError> {
    let node = e
        .child("node")
        .ok_or_else(|| DescError(format!("<{}> without <node>", e.name)))?;
    let actor = node
        .attr("actor")
        .ok_or_else(|| DescError("node selector without actor".into()))?
        .to_string();
    let instance = match node.attr("instance") {
        None | Some("all") => InstanceSelector::All,
        Some(s) => InstanceSelector::Index(
            s.parse()
                .map_err(|_| DescError(format!("bad instance '{s}'")))?,
        ),
    };
    Ok(NodeSelector { actor, instance })
}

fn parse_action(e: &Element) -> Result<ProcessAction, DescError> {
    match e.name.as_str() {
        "wait_for_time" => Ok(ProcessAction::WaitForTime {
            seconds: parse_value_ref(e),
        }),
        "wait_marker" => Ok(ProcessAction::WaitMarker),
        "event_flag" => {
            let value = e
                .child("value")
                .map(|v| unquote(&v.text()))
                .unwrap_or_else(|| unquote(&e.text()));
            Ok(ProcessAction::EventFlag { value })
        }
        "wait_for_event" => {
            let event = e
                .child("event_dependency")
                .map(|d| unquote(&d.text()))
                .ok_or_else(|| DescError("wait_for_event without event_dependency".into()))?;
            let mut sel = EventSelector::named(event);
            if let Some(from) = e.child("from_dependency") {
                sel = sel.from_nodes(parse_node_selector(from)?);
            }
            if let Some(param) = e.child("param_dependency") {
                sel = sel.with_param(parse_node_selector(param)?);
            }
            if let Some(t) = e.child("timeout") {
                sel = sel.with_timeout(parse_value_ref(t));
            }
            Ok(ProcessAction::WaitForEvent(sel))
        }
        _ => {
            let params = e
                .elements()
                .map(|child| (child.name.clone(), parse_value_ref(child)))
                .collect();
            Ok(ProcessAction::Invoke {
                name: e.name.clone(),
                params,
            })
        }
    }
}

fn parse_platform(e: &Element) -> Result<PlatformSpec, DescError> {
    let mut p = PlatformSpec::new();
    if let Some(actors) = e.child("actor_nodes") {
        for n in actors.elements_named("node") {
            p.actor_nodes.push(NodeSpec {
                id: n.attr("id").unwrap_or_default().to_string(),
                address: n.attr("address").unwrap_or_default().to_string(),
                abstract_id: n.attr("abstract").map(str::to_string),
            });
        }
    }
    if let Some(envs) = e.child("env_nodes") {
        for n in envs.elements_named("node") {
            p.env_nodes.push(NodeSpec {
                id: n.attr("id").unwrap_or_default().to_string(),
                address: n.attr("address").unwrap_or_default().to_string(),
                abstract_id: None,
            });
        }
    }
    if let Some(sp) = e.child("special_params") {
        p.special_params = sp
            .elements_named("param")
            .filter_map(|el| Some((el.attr("key")?.to_string(), el.attr("value")?.to_string())))
            .collect();
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_paper_description_roundtrips() {
        let d = ExperimentDescription::paper_two_party_sd(1000);
        let xml = to_xml(&d);
        let back = from_xml(&xml).expect("parse back");
        assert_eq!(back, d);
    }

    #[test]
    fn emitted_xml_contains_paper_constructs() {
        let d = ExperimentDescription::paper_two_party_sd(1000);
        let xml = to_xml(&d);
        for needle in [
            "<factorlist>",
            "fact_pairs",
            "fact_bw",
            "<replicationfactor",
            "1000",
            "sd_start_publish",
            "sd_service_add",
            "env_traffic_start",
            "random_switch_seed",
            "wait_marker",
            "event_flag",
            "\"done\"",
            "actor_nodes",
        ] {
            assert!(xml.contains(needle), "missing {needle} in\n{xml}");
        }
    }

    #[test]
    fn parses_paper_fig5_listing_shape() {
        // A close transcription of the paper's Fig. 5 listing.
        let xml = r#"
        <experiment name="fig5">
         <factorlist>
          <factor id="fact_nodes" type="actor_node_map" usage="blocking">
            <levels><level>
            <actor id="actor0"><instance id="0">A</instance></actor>
            <actor id="actor1"><instance id="0">B</instance></actor>
            </level></levels>
          </factor>
          <factor usage="random" type="int" id="fact_pairs">
            <levels><level>5</level><level>20</level></levels>
          </factor>
          <factor usage="constant" id="fact_bw" type="int">
            <!-- datarate generated load -->
            <levels><level>10</level><level>50</level><level>100</level></levels>
          </factor>
          <replicationfactor usage="replication" type="int"
             id="fact_replication_id">1000</replicationfactor>
         </factorlist>
        </experiment>"#;
        let d = from_xml(xml).unwrap();
        assert_eq!(d.factors.factors.len(), 3);
        assert_eq!(d.factors.replication.count, 1000);
        assert_eq!(d.factors.treatment_count(), 6);
        let map = d.factors.factor("fact_nodes").unwrap();
        let lv = map.levels[0].as_actor_map().unwrap();
        assert_eq!(lv[0].actor_id, "actor0");
        assert_eq!(lv[0].instances, vec!["A"]);
        assert_eq!(lv[1].instances, vec!["B"]);
    }

    #[test]
    fn parses_paper_fig10_su_process() {
        let xml = r#"
        <experiment name="fig10">
          <node_processes>
            <actor id="actor1" name="SU">
              <sd_actions>
                <wait_for_event>
                  <from_dependency><node actor="actor0" instance="all"/></from_dependency>
                  <event_dependency>"sd_start_publish"</event_dependency>
                </wait_for_event>
                <wait_for_event>
                  <event_dependency>"ready_to_init"</event_dependency>
                </wait_for_event>
                <sd_init />
                <wait_marker />
                <sd_start_search />
                <wait_for_event>
                  <from_dependency><node actor="actor1" instance="all"/></from_dependency>
                  <event_dependency>"sd_service_add"</event_dependency>
                  <param_dependency><node actor="actor0" instance="all"/></param_dependency>
                  <timeout>"30"</timeout>
                </wait_for_event>
                <event_flag><value>"done"</value></event_flag>
                <sd_stop_search />
                <sd_exit />
              </sd_actions>
            </actor>
          </node_processes>
        </experiment>"#;
        let d = from_xml(xml).unwrap();
        let su = d.node_process("actor1").unwrap();
        assert_eq!(su.actions.len(), 9);
        match &su.actions[5] {
            ProcessAction::WaitForEvent(sel) => {
                assert_eq!(sel.event, "sd_service_add");
                assert_eq!(sel.timeout_s, Some(ValueRef::int(30)));
                assert!(sel.param.is_some());
                assert!(sel.require_all);
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(
            su.actions[6],
            ProcessAction::EventFlag {
                value: "done".into()
            }
        );
    }

    #[test]
    fn parses_paper_fig7_env_process() {
        let xml = r#"
        <experiment name="fig7">
          <env_process>
            <env_actions>
              <event_flag><value>"ready_to_init"</value></event_flag>
              <env_traffic_start>
                <bw><factorref id="fact_bw" /></bw>
                <choice>0</choice>
                <random_switch_amount>"1"</random_switch_amount>
                <random_switch_seed><factorref id="fact_replication_id" /></random_switch_seed>
                <random_pairs><factorref id="fact_pairs" /></random_pairs>
                <random_seed><factorref id="fact_pairs"/></random_seed>
              </env_traffic_start>
              <wait_for_event>
                <event_dependency>"done"</event_dependency>
              </wait_for_event>
              <env_traffic_stop />
            </env_actions>
          </env_process>
        </experiment>"#;
        let d = from_xml(xml).unwrap();
        assert_eq!(d.env_processes.len(), 1);
        let env = &d.env_processes[0];
        assert_eq!(env.actions.len(), 4);
        match &env.actions[1] {
            ProcessAction::Invoke { name, params } => {
                assert_eq!(name, "env_traffic_start");
                assert_eq!(params.len(), 6);
                assert_eq!(params[0], ("bw".to_string(), ValueRef::factor("fact_bw")));
                assert_eq!(
                    params[2],
                    ("random_switch_amount".to_string(), ValueRef::int(1))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fig4_informative_params() {
        let xml = r#"
        <experiment name="fig4">
          <nodes><node id="A"/><node id="B"/></nodes>
          <params>
            <param key="sd_architecture" value="two-party"/>
            <param key="sd_protocol" value="zeroconf"/>
            <param key="sd_scheme" value="active"/>
          </params>
        </experiment>"#;
        let d = from_xml(xml).unwrap();
        assert_eq!(d.abstract_nodes, vec!["A", "B"]);
        assert_eq!(d.param("sd_scheme"), Some("active"));
    }

    #[test]
    fn parses_fig8_platform() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        let xml = to_xml(&d);
        let back = from_xml(&xml).unwrap();
        assert_eq!(back.platform.actor_nodes.len(), 2);
        assert_eq!(back.platform.env_nodes.len(), 4);
        assert_eq!(back.platform.node_for_abstract("A").unwrap().id, "t9-157");
    }

    #[test]
    fn rejects_non_experiment_root() {
        assert!(from_xml("<potato/>").is_err());
    }

    #[test]
    fn rejects_bad_factor_values() {
        let xml = r#"<experiment name="x"><factorlist>
            <factor id="f" type="int" usage="constant">
              <levels><level>notanint</level></levels>
            </factor></factorlist></experiment>"#;
        assert!(from_xml(xml).is_err());
    }

    #[test]
    fn rejects_unknown_usage() {
        let xml = r#"<experiment name="x"><factorlist>
            <factor id="f" type="int" usage="sometimes">
              <levels><level>1</level></levels>
            </factor></factorlist></experiment>"#;
        let err = from_xml(xml).unwrap_err();
        assert!(err.0.contains("usage"), "{err}");
    }

    #[test]
    fn wait_for_event_requires_event_dependency() {
        let xml = r#"<experiment name="x"><env_process><env_actions>
            <wait_for_event><timeout>"5"</timeout></wait_for_event>
        </env_actions></env_process></experiment>"#;
        assert!(from_xml(xml).is_err());
    }

    #[test]
    fn manipulation_kind_roundtrips() {
        let mut d = ExperimentDescription::new("m");
        let mut p = ActorProcess::new("fault0");
        p.is_manipulation = true;
        p.actions = vec![
            ProcessAction::invoke_with(
                "fault_message_loss_start",
                [(
                    "probability".to_string(),
                    ValueRef::Lit(LevelValue::Float(0.25)),
                )],
            ),
            ProcessAction::WaitForTime {
                seconds: ValueRef::int(5),
            },
            ProcessAction::invoke("fault_message_loss_stop"),
        ];
        d.node_processes.push(p);
        let back = from_xml(&to_xml(&d)).unwrap();
        assert!(back.node_processes[0].is_manipulation);
        assert_eq!(back.node_processes[0].actions.len(), 3);
        match &back.node_processes[0].actions[0] {
            ProcessAction::Invoke { params, .. } => {
                assert_eq!(params[0].1, ValueRef::Lit(LevelValue::Float(0.25)));
            }
            _ => panic!(),
        }
    }
}
