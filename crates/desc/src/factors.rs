//! Factors, levels and the factor list (paper §IV-C, Fig. 5).
//!
//! A *factor* is part of the treatment applied to the experimental unit and
//! consists of a set of *levels*. The *list of factors* is ordered: in an
//! OFAT design the first factor varies least often during execution while
//! the last factor changes every run. A *replication factor* defines how
//! often each treatment is repeated.

use std::fmt;

/// How a factor participates in the design (the `usage` attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactorUsage {
    /// A blocking factor: groups runs into blocks of similar conditions
    /// (e.g. the actor-to-node mapping of Fig. 5).
    Blocking,
    /// Levels applied in seeded-random order.
    Random,
    /// Levels applied in their listed order (one factor at a time).
    Constant,
    /// The replication count (exactly one per description).
    Replication,
}

impl FactorUsage {
    /// The XML attribute value for this usage.
    pub fn as_str(self) -> &'static str {
        match self {
            FactorUsage::Blocking => "blocking",
            FactorUsage::Random => "random",
            FactorUsage::Constant => "constant",
            FactorUsage::Replication => "replication",
        }
    }

    /// Parses the XML attribute value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "blocking" => Some(FactorUsage::Blocking),
            "random" => Some(FactorUsage::Random),
            "constant" => Some(FactorUsage::Constant),
            "replication" => Some(FactorUsage::Replication),
            _ => None,
        }
    }
}

/// Assignment of abstract nodes to one actor role, part of an
/// actor-node-map level (Fig. 5: `<actor id="actor0"><instance id="0">A...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorAssignment {
    /// Actor role identifier (e.g. `actor0`).
    pub actor_id: String,
    /// Abstract node ids instantiating the role, indexed by instance number.
    pub instances: Vec<String>,
}

/// The typed value of a level.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelValue {
    /// Integer level (`type="int"`).
    Int(i64),
    /// Floating-point level (`type="float"`).
    Float(f64),
    /// Free-text level (`type="str"`).
    Text(String),
    /// A complete actor-to-node mapping (`type="actor_node_map"`).
    ActorMap(Vec<ActorAssignment>),
}

impl LevelValue {
    /// Integer view, if this is an [`LevelValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            LevelValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            LevelValue::Float(v) => Some(*v),
            LevelValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Text view, if this is an [`LevelValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            LevelValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Actor-map view, if this is an [`LevelValue::ActorMap`].
    pub fn as_actor_map(&self) -> Option<&[ActorAssignment]> {
        match self {
            LevelValue::ActorMap(m) => Some(m),
            _ => None,
        }
    }

    /// The `type` attribute value matching this level.
    pub fn type_name(&self) -> &'static str {
        match self {
            LevelValue::Int(_) => "int",
            LevelValue::Float(_) => "float",
            LevelValue::Text(_) => "str",
            LevelValue::ActorMap(_) => "actor_node_map",
        }
    }
}

impl fmt::Display for LevelValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelValue::Int(v) => write!(f, "{v}"),
            LevelValue::Float(v) => write!(f, "{v}"),
            LevelValue::Text(s) => write!(f, "{s}"),
            LevelValue::ActorMap(m) => {
                let parts: Vec<String> = m
                    .iter()
                    .map(|a| format!("{}=[{}]", a.actor_id, a.instances.join(",")))
                    .collect();
                write!(f, "{{{}}}", parts.join("; "))
            }
        }
    }
}

/// A concrete level of a factor.
pub type Level = LevelValue;

/// A treatment factor with its set of levels.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    /// Unique identifier referenced by `factorref` elements.
    pub id: String,
    /// Role of the factor in the design.
    pub usage: FactorUsage,
    /// Declared level type (`int`, `float`, `str`, `actor_node_map`).
    pub level_type: String,
    /// All levels to apply; a held-constant factor has exactly one.
    pub levels: Vec<Level>,
    /// Optional human-readable description.
    pub description: Option<String>,
}

impl Factor {
    /// Creates a factor with integer levels.
    pub fn int(
        id: impl Into<String>,
        usage: FactorUsage,
        levels: impl IntoIterator<Item = i64>,
    ) -> Self {
        Self {
            id: id.into(),
            usage,
            level_type: "int".into(),
            levels: levels.into_iter().map(LevelValue::Int).collect(),
            description: None,
        }
    }

    /// Creates a factor with text levels.
    pub fn text(
        id: impl Into<String>,
        usage: FactorUsage,
        levels: impl IntoIterator<Item = String>,
    ) -> Self {
        Self {
            id: id.into(),
            usage,
            level_type: "str".into(),
            levels: levels.into_iter().map(LevelValue::Text).collect(),
            description: None,
        }
    }

    /// Creates an actor-node-map blocking factor with a single level.
    pub fn actor_map(id: impl Into<String>, assignments: Vec<ActorAssignment>) -> Self {
        Self {
            id: id.into(),
            usage: FactorUsage::Blocking,
            level_type: "actor_node_map".into(),
            levels: vec![LevelValue::ActorMap(assignments)],
            description: None,
        }
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

/// The ordered list of all factors plus the replication factor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FactorList {
    /// Treatment factors in design order (first varies least in OFAT).
    pub factors: Vec<Factor>,
    /// Replications of each treatment (paper: `replicationfactor`); the id
    /// lets processes reference the current replicate number as a seed
    /// (Fig. 7 uses `fact_replication_id` for the traffic switch seed).
    pub replication: Replication,
}

/// The replication factor (`<replicationfactor ...>`).
#[derive(Debug, Clone, PartialEq)]
pub struct Replication {
    /// Identifier (e.g. `fact_replication_id`).
    pub id: String,
    /// How many times each treatment is applied.
    pub count: u64,
}

impl Default for Replication {
    fn default() -> Self {
        Self {
            id: "fact_replication_id".into(),
            count: 1,
        }
    }
}

impl FactorList {
    /// Creates an empty list with replication 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a factor (builder style).
    pub fn with_factor(mut self, f: Factor) -> Self {
        self.factors.push(f);
        self
    }

    /// Sets the replication count (builder style).
    pub fn with_replication(mut self, id: impl Into<String>, count: u64) -> Self {
        self.replication = Replication {
            id: id.into(),
            count,
        };
        self
    }

    /// Looks a factor up by id.
    pub fn factor(&self, id: &str) -> Option<&Factor> {
        self.factors.iter().find(|f| f.id == id)
    }

    /// Number of distinct treatments (cartesian product of level counts).
    pub fn treatment_count(&self) -> u64 {
        self.factors
            .iter()
            .map(|f| f.level_count().max(1) as u64)
            .product()
    }

    /// Total runs including replication.
    pub fn total_runs(&self) -> u64 {
        self.treatment_count() * self.replication.count.max(1)
    }

    /// The paper's Fig. 5 factor list: an actor map for nodes A/B, a random
    /// pairs factor {5, 20}, a bandwidth factor {10, 50, 100} kbit/s and
    /// 1000 replications.
    pub fn paper_fig5() -> Self {
        FactorList::new()
            .with_factor(Factor::actor_map(
                "fact_nodes",
                vec![
                    ActorAssignment {
                        actor_id: "actor0".into(),
                        instances: vec!["A".into()],
                    },
                    ActorAssignment {
                        actor_id: "actor1".into(),
                        instances: vec!["B".into()],
                    },
                ],
            ))
            .with_factor(Factor::int("fact_pairs", FactorUsage::Random, [5, 20]))
            .with_factor({
                let mut f = Factor::int("fact_bw", FactorUsage::Constant, [10, 50, 100]);
                f.description = Some("datarate generated load".into());
                f
            })
            .with_replication("fact_replication_id", 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_roundtrip() {
        for u in [
            FactorUsage::Blocking,
            FactorUsage::Random,
            FactorUsage::Constant,
            FactorUsage::Replication,
        ] {
            assert_eq!(FactorUsage::parse(u.as_str()), Some(u));
        }
        assert_eq!(FactorUsage::parse("bogus"), None);
    }

    #[test]
    fn level_value_views() {
        assert_eq!(LevelValue::Int(5).as_int(), Some(5));
        assert_eq!(LevelValue::Int(5).as_float(), Some(5.0));
        assert_eq!(LevelValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(LevelValue::Float(2.5).as_int(), None);
        assert_eq!(LevelValue::Text("x".into()).as_text(), Some("x"));
        assert!(LevelValue::Int(1).as_actor_map().is_none());
    }

    #[test]
    fn level_type_names() {
        assert_eq!(LevelValue::Int(0).type_name(), "int");
        assert_eq!(LevelValue::Float(0.0).type_name(), "float");
        assert_eq!(LevelValue::Text(String::new()).type_name(), "str");
        assert_eq!(LevelValue::ActorMap(vec![]).type_name(), "actor_node_map");
    }

    #[test]
    fn display_formats() {
        assert_eq!(LevelValue::Int(42).to_string(), "42");
        let m = LevelValue::ActorMap(vec![ActorAssignment {
            actor_id: "actor0".into(),
            instances: vec!["A".into(), "B".into()],
        }]);
        assert_eq!(m.to_string(), "{actor0=[A,B]}");
    }

    #[test]
    fn fig5_counts() {
        let fl = FactorList::paper_fig5();
        assert_eq!(fl.factors.len(), 3);
        // 1 (actor map) * 2 (pairs) * 3 (bw) treatments.
        assert_eq!(fl.treatment_count(), 6);
        assert_eq!(fl.total_runs(), 6_000);
        assert_eq!(fl.replication.count, 1000);
        assert_eq!(fl.factor("fact_pairs").unwrap().level_count(), 2);
        assert!(fl.factor("nope").is_none());
    }

    #[test]
    fn empty_list_has_one_treatment() {
        let fl = FactorList::new();
        assert_eq!(fl.treatment_count(), 1);
        assert_eq!(fl.total_runs(), 1);
    }
}
