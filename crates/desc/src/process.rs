//! Process descriptions: sequences of actions with flow control
//! (paper §IV-C2, Figs. 6, 7, 9, 10).
//!
//! ExCovery differentiates *abstract node processes* (mapped to real nodes:
//! protocol actions, fault injections) and *environment processes*
//! (performed by all nodes, e.g. traffic generation). Every process is a
//! sequence of [`ProcessAction`]s; synchronization among concurrently
//! running processes uses the four flow-control functions.

use crate::factors::LevelValue;
use crate::plan::Treatment;
use std::fmt;

/// A parameter value: either a literal or a reference to a factor whose
/// current level is substituted at run time (`<factorref id="..."/>`).
#[derive(Debug, Clone, PartialEq)]
pub enum ValueRef {
    /// A literal value.
    Lit(LevelValue),
    /// A reference to a factor of the factor list.
    FactorRef(String),
}

impl ValueRef {
    /// Integer literal shortcut.
    pub fn int(v: i64) -> Self {
        ValueRef::Lit(LevelValue::Int(v))
    }

    /// Text literal shortcut.
    pub fn text(v: impl Into<String>) -> Self {
        ValueRef::Lit(LevelValue::Text(v.into()))
    }

    /// Factor reference shortcut.
    pub fn factor(id: impl Into<String>) -> Self {
        ValueRef::FactorRef(id.into())
    }

    /// Resolves against a treatment; a factor reference to the replication
    /// id resolves via `replicate`.
    pub fn resolve(
        &self,
        treatment: &Treatment,
        replication_id: &str,
        replicate: u64,
    ) -> Option<LevelValue> {
        match self {
            ValueRef::Lit(v) => Some(v.clone()),
            ValueRef::FactorRef(id) if id == replication_id => {
                Some(LevelValue::Int(replicate as i64))
            }
            ValueRef::FactorRef(id) => treatment.level(id).cloned(),
        }
    }

    /// The referenced factor id, if this is a reference.
    pub fn factor_id(&self) -> Option<&str> {
        match self {
            ValueRef::FactorRef(id) => Some(id),
            ValueRef::Lit(_) => None,
        }
    }
}

impl fmt::Display for ValueRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Lit(v) => write!(f, "{v}"),
            ValueRef::FactorRef(id) => write!(f, "@{id}"),
        }
    }
}

/// Selects nodes by actor role and instance (Fig. 10:
/// `<node actor="actor0" instance="all"/>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSelector {
    /// Actor role id.
    pub actor: String,
    /// Instance selector: a specific index or all instances.
    pub instance: InstanceSelector,
}

/// Which instances of an actor a selector matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceSelector {
    /// All instances of the actor.
    All,
    /// A specific instance index.
    Index(u32),
}

impl NodeSelector {
    /// Selects all instances of `actor`.
    pub fn all(actor: impl Into<String>) -> Self {
        Self {
            actor: actor.into(),
            instance: InstanceSelector::All,
        }
    }

    /// Selects one instance of `actor`.
    pub fn instance(actor: impl Into<String>, idx: u32) -> Self {
        Self {
            actor: actor.into(),
            instance: InstanceSelector::Index(idx),
        }
    }
}

/// The event condition of a `wait_for_event` (paper §IV-C2):
/// name, optional origin restriction, optional parameter restriction
/// and an optional timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSelector {
    /// Event name to wait for (`event_dependency`).
    pub event: String,
    /// Restrict to events from these nodes (`from_dependency`).
    /// `None` means "any participant".
    pub from: Option<NodeSelector>,
    /// Restrict to events carrying a parameter naming one of these nodes
    /// (`param_dependency`) — e.g. the SM identity in `sd_service_add`.
    pub param: Option<NodeSelector>,
    /// Give up after this many seconds (`timeout`).
    pub timeout_s: Option<ValueRef>,
    /// Wait until the event has been seen from *all* selected nodes
    /// (`instance="all"` semantics of Figs. 9/10), not just one.
    pub require_all: bool,
}

impl EventSelector {
    /// A selector matching `event` from any node, no timeout.
    pub fn named(event: impl Into<String>) -> Self {
        Self {
            event: event.into(),
            from: None,
            param: None,
            timeout_s: None,
            require_all: false,
        }
    }

    /// Builder: restrict origin.
    pub fn from_nodes(mut self, sel: NodeSelector) -> Self {
        self.require_all |= sel.instance == InstanceSelector::All;
        self.from = Some(sel);
        self
    }

    /// Builder: restrict the event parameter to nodes of a selector.
    pub fn with_param(mut self, sel: NodeSelector) -> Self {
        self.require_all |= sel.instance == InstanceSelector::All;
        self.param = Some(sel);
        self
    }

    /// Builder: set a timeout in seconds.
    pub fn with_timeout(mut self, timeout: ValueRef) -> Self {
        self.timeout_s = Some(timeout);
        self
    }
}

/// One step of a process description.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessAction {
    /// `wait_for_time`: pause for a fixed number of seconds.
    WaitForTime {
        /// Delay in seconds (may reference a factor).
        seconds: ValueRef,
    },
    /// `wait_for_event`: block until a matching event is registered on any
    /// participant (only events after the last `wait_marker`).
    WaitForEvent(EventSelector),
    /// `wait_marker`: stamp the instant from which the next
    /// `wait_for_event` starts considering events.
    WaitMarker,
    /// `event_flag`: emit a local event so other processes can depend on it.
    EventFlag {
        /// Name of the emitted event.
        value: String,
    },
    /// Any process/manipulation/environment action with parameters —
    /// `sd_init`, `sd_start_search`, `fault_message_loss_start`,
    /// `env_traffic_start`, plugin functions, … The execution engine
    /// interprets the name.
    Invoke {
        /// Action name (XML element name).
        name: String,
        /// Parameters in document order.
        params: Vec<(String, ValueRef)>,
    },
}

impl ProcessAction {
    /// Convenience constructor for parameterless invocations.
    pub fn invoke(name: impl Into<String>) -> Self {
        ProcessAction::Invoke {
            name: name.into(),
            params: Vec::new(),
        }
    }

    /// Convenience constructor with parameters.
    pub fn invoke_with(
        name: impl Into<String>,
        params: impl IntoIterator<Item = (String, ValueRef)>,
    ) -> Self {
        ProcessAction::Invoke {
            name: name.into(),
            params: params.into_iter().collect(),
        }
    }

    /// The action's display name (element name for invokes).
    pub fn name(&self) -> &str {
        match self {
            ProcessAction::WaitForTime { .. } => "wait_for_time",
            ProcessAction::WaitForEvent(_) => "wait_for_event",
            ProcessAction::WaitMarker => "wait_marker",
            ProcessAction::EventFlag { .. } => "event_flag",
            ProcessAction::Invoke { name, .. } => name,
        }
    }
}

/// A process bound to an actor role (node process or manipulation process).
#[derive(Debug, Clone, PartialEq)]
pub struct ActorProcess {
    /// Actor role id (e.g. `actor0`).
    pub actor_id: String,
    /// Human-readable role name (e.g. `SM`, `SU`).
    pub name: Option<String>,
    /// Factor id providing the actor-to-node mapping (Fig. 6 references the
    /// abstract nodes via the `fact_nodes` factor).
    pub nodes_factor: Option<String>,
    /// The action sequence.
    pub actions: Vec<ProcessAction>,
    /// True for manipulation (fault-injection) processes, which run
    /// alongside the experiment process on the same node.
    pub is_manipulation: bool,
}

impl ActorProcess {
    /// Creates an empty experiment process for a role.
    pub fn new(actor_id: impl Into<String>) -> Self {
        Self {
            actor_id: actor_id.into(),
            name: None,
            nodes_factor: None,
            actions: Vec::new(),
            is_manipulation: false,
        }
    }
}

/// An environment process: runs once, controlling environment manipulations
/// (Fig. 7), implicitly supported by all nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnvProcess {
    /// The action sequence.
    pub actions: Vec<ProcessAction>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::LevelValue;

    fn treatment() -> Treatment {
        Treatment::from_assignments([
            ("fact_bw".to_string(), LevelValue::Int(50)),
            ("fact_pairs".to_string(), LevelValue::Int(20)),
        ])
    }

    #[test]
    fn literal_resolves_to_itself() {
        let v = ValueRef::int(30);
        assert_eq!(v.resolve(&treatment(), "rep", 0), Some(LevelValue::Int(30)));
    }

    #[test]
    fn factor_ref_resolves_via_treatment() {
        let v = ValueRef::factor("fact_bw");
        assert_eq!(v.resolve(&treatment(), "rep", 0), Some(LevelValue::Int(50)));
        assert_eq!(
            ValueRef::factor("missing").resolve(&treatment(), "rep", 0),
            None
        );
    }

    #[test]
    fn replication_ref_resolves_to_replicate_index() {
        let v = ValueRef::factor("fact_replication_id");
        assert_eq!(
            v.resolve(&treatment(), "fact_replication_id", 42),
            Some(LevelValue::Int(42))
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValueRef::int(5).to_string(), "5");
        assert_eq!(ValueRef::factor("f").to_string(), "@f");
    }

    #[test]
    fn event_selector_builders_set_require_all() {
        let sel = EventSelector::named("sd_service_add")
            .from_nodes(NodeSelector::all("actor1"))
            .with_param(NodeSelector::all("actor0"))
            .with_timeout(ValueRef::int(30));
        assert!(sel.require_all);
        assert_eq!(sel.event, "sd_service_add");
        assert_eq!(sel.timeout_s, Some(ValueRef::int(30)));

        let single = EventSelector::named("done").from_nodes(NodeSelector::instance("actor0", 1));
        assert!(!single.require_all);
    }

    #[test]
    fn action_names() {
        assert_eq!(ProcessAction::WaitMarker.name(), "wait_marker");
        assert_eq!(ProcessAction::invoke("sd_init").name(), "sd_init");
        assert_eq!(
            ProcessAction::WaitForTime {
                seconds: ValueRef::int(1)
            }
            .name(),
            "wait_for_time"
        );
        assert_eq!(
            ProcessAction::EventFlag {
                value: "done".into()
            }
            .name(),
            "event_flag"
        );
        assert_eq!(
            ProcessAction::WaitForEvent(EventSelector::named("x")).name(),
            "wait_for_event"
        );
    }

    #[test]
    fn invoke_with_params_preserves_order() {
        let a = ProcessAction::invoke_with(
            "env_traffic_start",
            [
                ("bw".to_string(), ValueRef::factor("fact_bw")),
                ("choice".to_string(), ValueRef::int(0)),
            ],
        );
        if let ProcessAction::Invoke { params, .. } = &a {
            assert_eq!(params[0].0, "bw");
            assert_eq!(params[1].0, "choice");
        } else {
            panic!("not an invoke");
        }
    }
}
