//! Platform specification (paper §IV-E, Fig. 8).
//!
//! Maps abstract and environment nodes to concrete usable nodes of the
//! target platform. ExCovery identifies nodes by host name and IP address;
//! the host name must stay constant during a run while the address may
//! change (an event signals reconfiguration).

/// One concrete platform node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique identifier/host name on the platform (e.g. `t9-035`).
    pub id: String,
    /// Network address used in recorded event and packet lists.
    pub address: String,
    /// For actor nodes: the abstract node id this platform node realizes.
    /// `None` for environment nodes.
    pub abstract_id: Option<String>,
}

/// The platform section of an experiment description.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlatformSpec {
    /// Nodes realizing abstract (actor) nodes.
    pub actor_nodes: Vec<NodeSpec>,
    /// Environment nodes (traffic generation etc.).
    pub env_nodes: Vec<NodeSpec>,
    /// Platform-specific parameters exposed to the implementation
    /// ("special parameters", §IV-E).
    pub special_params: Vec<(String, String)>,
}

impl PlatformSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an actor node (builder style).
    pub fn with_actor_node(
        mut self,
        id: impl Into<String>,
        address: impl Into<String>,
        abstract_id: impl Into<String>,
    ) -> Self {
        self.actor_nodes.push(NodeSpec {
            id: id.into(),
            address: address.into(),
            abstract_id: Some(abstract_id.into()),
        });
        self
    }

    /// Adds an environment node (builder style).
    pub fn with_env_node(mut self, id: impl Into<String>, address: impl Into<String>) -> Self {
        self.env_nodes.push(NodeSpec {
            id: id.into(),
            address: address.into(),
            abstract_id: None,
        });
        self
    }

    /// Adds a special parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.special_params.push((key.into(), value.into()));
        self
    }

    /// The platform node realizing the given abstract node id.
    pub fn node_for_abstract(&self, abstract_id: &str) -> Option<&NodeSpec> {
        self.actor_nodes
            .iter()
            .find(|n| n.abstract_id.as_deref() == Some(abstract_id))
    }

    /// Looks up any node (actor or environment) by platform id.
    pub fn node(&self, id: &str) -> Option<&NodeSpec> {
        self.actor_nodes
            .iter()
            .chain(&self.env_nodes)
            .find(|n| n.id == id)
    }

    /// All nodes, actors first.
    pub fn all_nodes(&self) -> impl Iterator<Item = &NodeSpec> {
        self.actor_nodes.iter().chain(&self.env_nodes)
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.actor_nodes.len() + self.env_nodes.len()
    }

    /// True if no nodes are specified.
    pub fn is_empty(&self) -> bool {
        self.actor_nodes.is_empty() && self.env_nodes.is_empty()
    }

    /// A specification mirroring the paper's Fig. 8: two actor nodes
    /// mapping abstract nodes A and B plus four environment nodes.
    pub fn paper_fig8() -> Self {
        PlatformSpec::new()
            .with_actor_node("t9-157", "10.0.0.157", "A")
            .with_actor_node("t9-105", "10.0.0.105", "B")
            .with_env_node("t9-004", "10.0.0.4")
            .with_env_node("t9-022", "10.0.0.22")
            .with_env_node("t9-035", "10.0.0.35")
            .with_env_node("t9-169", "10.0.0.169")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape() {
        let p = PlatformSpec::paper_fig8();
        assert_eq!(p.actor_nodes.len(), 2);
        assert_eq!(p.env_nodes.len(), 4);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn abstract_mapping_lookup() {
        let p = PlatformSpec::paper_fig8();
        assert_eq!(p.node_for_abstract("A").unwrap().id, "t9-157");
        assert_eq!(p.node_for_abstract("B").unwrap().id, "t9-105");
        assert!(p.node_for_abstract("C").is_none());
    }

    #[test]
    fn node_lookup_covers_both_kinds() {
        let p = PlatformSpec::paper_fig8();
        assert!(p.node("t9-157").is_some());
        assert!(p.node("t9-035").is_some());
        assert!(p.node("t9-035").unwrap().abstract_id.is_none());
        assert!(p.node("nope").is_none());
    }

    #[test]
    fn special_params() {
        let p = PlatformSpec::new().with_param("wifi_channel", "6");
        assert_eq!(
            p.special_params,
            vec![("wifi_channel".to_string(), "6".to_string())]
        );
    }

    #[test]
    fn all_nodes_order_actors_first() {
        let p = PlatformSpec::paper_fig8();
        let ids: Vec<&str> = p.all_nodes().map(|n| n.id.as_str()).collect();
        assert_eq!(&ids[..2], &["t9-157", "t9-105"]);
        assert_eq!(ids.len(), 6);
    }
}
