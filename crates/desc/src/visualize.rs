//! Visualization of experiment descriptions.
//!
//! The formal description "allows for automatic checking, execution and
//! additional features, such as visualisation of experiments" (paper §I).
//! This module renders the process structure of a description as Graphviz
//! DOT — one cluster per process, actions in sequence, with dashed edges
//! from every `wait_for_event` to the `event_flag`s/actions that can
//! satisfy it — and as a compact ASCII outline.

use crate::model::ExperimentDescription;
use crate::process::{ActorProcess, EnvProcess, ProcessAction};

/// Events each SD action implicitly emits (paper §V), used to draw
/// dependency edges to waits.
fn emitted_events(action: &ProcessAction) -> Vec<String> {
    match action {
        ProcessAction::EventFlag { value } => vec![value.clone()],
        ProcessAction::Invoke { name, .. } => match name.as_str() {
            "sd_init" => vec!["sd_init_done".into(), "scm_started".into()],
            "sd_exit" => vec!["sd_exit_done".into()],
            "sd_start_search" => vec!["sd_start_search".into(), "sd_service_add".into()],
            "sd_stop_search" => vec!["sd_stop_search".into()],
            "sd_start_publish" => vec!["sd_start_publish".into()],
            "sd_stop_publish" => vec!["sd_stop_publish".into()],
            "sd_update_publication" => vec!["sd_service_upd".into()],
            _ => vec![],
        },
        _ => vec![],
    }
}

fn action_label(a: &ProcessAction) -> String {
    match a {
        ProcessAction::WaitForTime { seconds } => format!("wait_for_time({seconds})"),
        ProcessAction::WaitMarker => "wait_marker".into(),
        ProcessAction::EventFlag { value } => format!("event_flag(\\\"{value}\\\")"),
        ProcessAction::WaitForEvent(sel) => {
            let mut s = format!("wait_for_event(\\\"{}\\\"", sel.event);
            if let Some(t) = &sel.timeout_s {
                s.push_str(&format!(", timeout={t}"));
            }
            s.push(')');
            s
        }
        ProcessAction::Invoke { name, params } => {
            if params.is_empty() {
                name.clone()
            } else {
                format!("{name}({} params)", params.len())
            }
        }
    }
}

struct DotProcess<'a> {
    id: String,
    title: String,
    actions: &'a [ProcessAction],
}

fn collect<'a>(desc: &'a ExperimentDescription) -> Vec<DotProcess<'a>> {
    let mut out = Vec::new();
    for (i, p) in desc.node_processes.iter().enumerate() {
        let ActorProcess {
            actor_id,
            name,
            is_manipulation,
            ..
        } = p;
        let kind = if *is_manipulation {
            "manipulation"
        } else {
            "process"
        };
        out.push(DotProcess {
            id: format!("np{i}"),
            title: format!(
                "{actor_id}{} [{kind}]",
                name.as_deref()
                    .map(|n| format!(" ({n})"))
                    .unwrap_or_default()
            ),
            actions: &p.actions,
        });
    }
    for (i, EnvProcess { actions }) in desc.env_processes.iter().enumerate() {
        out.push(DotProcess {
            id: format!("ep{i}"),
            title: format!("environment #{i}"),
            actions,
        });
    }
    out
}

/// Renders the description's processes as a Graphviz DOT digraph.
pub fn to_dot(desc: &ExperimentDescription) -> String {
    let procs = collect(desc);
    let mut dot = String::new();
    dot.push_str("digraph experiment {\n");
    dot.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    dot.push_str(&format!("  label=\"{}\";\n", desc.name));

    // Emit clusters with sequential edges.
    for p in &procs {
        dot.push_str(&format!(
            "  subgraph cluster_{} {{\n    label=\"{}\";\n",
            p.id, p.title
        ));
        for (j, a) in p.actions.iter().enumerate() {
            let shape = match a {
                ProcessAction::WaitForEvent(_) | ProcessAction::WaitForTime { .. } => {
                    ", shape=hexagon"
                }
                ProcessAction::EventFlag { .. } => ", shape=ellipse",
                _ => "",
            };
            dot.push_str(&format!(
                "    {}_{j} [label=\"{}\"{shape}];\n",
                p.id,
                action_label(a)
            ));
        }
        for j in 1..p.actions.len() {
            dot.push_str(&format!("    {}_{} -> {}_{};\n", p.id, j - 1, p.id, j));
        }
        dot.push_str("  }\n");
    }

    // Dashed dependency edges: emitter -> wait.
    for waiter in &procs {
        for (j, a) in waiter.actions.iter().enumerate() {
            let ProcessAction::WaitForEvent(sel) = a else {
                continue;
            };
            for emitter in &procs {
                for (k, b) in emitter.actions.iter().enumerate() {
                    if std::ptr::eq(a, b) {
                        continue;
                    }
                    if emitted_events(b).contains(&sel.event) {
                        dot.push_str(&format!(
                            "  {}_{k} -> {}_{j} [style=dashed, color=gray40, label=\"{}\"];\n",
                            emitter.id, waiter.id, sel.event
                        ));
                    }
                }
            }
        }
    }
    dot.push_str("}\n");
    dot
}

/// Renders a compact ASCII outline of the processes.
pub fn to_outline(desc: &ExperimentDescription) -> String {
    let mut out = format!("experiment '{}'\n", desc.name);
    for p in collect(desc) {
        out.push_str(&format!("  {}\n", p.title));
        for a in p.actions {
            let marker = match a {
                ProcessAction::WaitForEvent(_) | ProcessAction::WaitForTime { .. } => "⏳",
                ProcessAction::EventFlag { .. } => "⚑",
                ProcessAction::WaitMarker => "▸",
                ProcessAction::Invoke { .. } => "→",
            };
            out.push_str(&format!(
                "    {marker} {}\n",
                action_label(a).replace("\\\"", "\"")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_clusters_and_dependencies() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        let dot = to_dot(&d);
        assert!(dot.starts_with("digraph experiment {"));
        assert!(dot.ends_with("}\n"));
        // One cluster per process: SM, SU, env.
        assert_eq!(dot.matches("subgraph cluster_").count(), 3);
        // The SU's wait on sd_start_publish depends on the SM's publish.
        assert!(
            dot.contains("style=dashed") && dot.contains("label=\"sd_start_publish\""),
            "{dot}"
        );
        // Sequential edges exist inside clusters.
        assert!(dot.contains("np0_0 -> np0_1;"));
        // The 'done' flag feeds the SM's wait.
        assert!(dot.contains("label=\"done\""));
    }

    #[test]
    fn dot_is_balanced() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        let dot = to_dot(&d);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn outline_lists_every_action() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        let outline = to_outline(&d);
        let total_actions: usize = d
            .node_processes
            .iter()
            .map(|p| p.actions.len())
            .chain(d.env_processes.iter().map(|p| p.actions.len()))
            .sum();
        let action_lines = outline
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with('→')
                    || t.starts_with('⏳')
                    || t.starts_with('⚑')
                    || t.starts_with('▸')
            })
            .count();
        assert_eq!(action_lines, total_actions);
        assert!(outline.contains("actor0 (SM) [process]"));
        assert!(outline.contains("environment #0"));
    }

    #[test]
    fn manipulation_processes_are_marked() {
        let d = excovery_like_loss_desc();
        let dot = to_dot(&d);
        assert!(dot.contains("[manipulation]"), "{dot}");
    }

    fn excovery_like_loss_desc() -> ExperimentDescription {
        let mut d = ExperimentDescription::new("m");
        let mut p = crate::process::ActorProcess::new("fault0");
        p.is_manipulation = true;
        p.actions = vec![ProcessAction::invoke("fault_interface_start")];
        d.node_processes.push(p);
        d
    }

    #[test]
    fn empty_description_renders() {
        let d = ExperimentDescription::new("empty");
        assert!(to_dot(&d).contains("digraph"));
        assert!(to_outline(&d).contains("experiment 'empty'"));
    }
}
