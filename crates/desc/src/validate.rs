//! Structural validation of experiment descriptions.
//!
//! The paper provides an XML schema with the framework so descriptions can
//! be automatically checked before execution (§I, §IV). This module
//! performs the semantic half of that checking: identifier uniqueness,
//! resolvable factor references, complete actor-to-node mappings and
//! platform coverage.

use crate::factors::FactorUsage;
use crate::model::{DescError, ExperimentDescription};
use crate::process::{ProcessAction, ValueRef};
use std::collections::HashSet;

/// A validation finding; `fatal` findings make the description unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// True if execution must be refused.
    pub fatal: bool,
    /// Explanation.
    pub message: String,
}

impl Finding {
    fn fatal(msg: impl Into<String>) -> Self {
        Self {
            fatal: true,
            message: msg.into(),
        }
    }
    fn warn(msg: impl Into<String>) -> Self {
        Self {
            fatal: false,
            message: msg.into(),
        }
    }
}

/// Validates a description, returning all findings (empty = fully valid).
pub fn validate(desc: &ExperimentDescription) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Factor ids unique and non-empty.
    let mut factor_ids = HashSet::new();
    for f in &desc.factors.factors {
        if f.id.is_empty() {
            findings.push(Finding::fatal("factor with empty id"));
        }
        if !factor_ids.insert(f.id.as_str()) {
            findings.push(Finding::fatal(format!("duplicate factor id '{}'", f.id)));
        }
        if f.levels.is_empty() {
            findings.push(Finding::warn(format!("factor '{}' has no levels", f.id)));
        }
        for level in &f.levels {
            if level.type_name() != f.level_type && f.level_type != "str" {
                findings.push(Finding::fatal(format!(
                    "factor '{}' declares type '{}' but has a '{}' level",
                    f.id,
                    f.level_type,
                    level.type_name()
                )));
            }
        }
        if f.usage == FactorUsage::Replication {
            findings.push(Finding::fatal(format!(
                "factor '{}' uses usage=replication; use <replicationfactor> instead",
                f.id
            )));
        }
    }
    let replication_id = desc.factors.replication.id.clone();
    if desc.factors.replication.count == 0 {
        findings.push(Finding::warn("replication count 0 is treated as 1"));
    }

    // Actor processes: unique ids, resolvable factor references.
    let mut actor_ids = HashSet::new();
    for p in &desc.node_processes {
        if !actor_ids.insert(p.actor_id.as_str()) {
            findings.push(Finding::fatal(format!(
                "duplicate actor process '{}'",
                p.actor_id
            )));
        }
        if let Some(nf) = &p.nodes_factor {
            match desc.factors.factor(nf) {
                None => findings.push(Finding::fatal(format!(
                    "actor '{}' references unknown nodes factor '{nf}'",
                    p.actor_id
                ))),
                Some(f) if f.level_type != "actor_node_map" => {
                    findings.push(Finding::fatal(format!(
                        "actor '{}' nodes factor '{nf}' is not an actor_node_map",
                        p.actor_id
                    )))
                }
                Some(f) => {
                    // Every level must assign this actor.
                    for level in &f.levels {
                        if let Some(m) = level.as_actor_map() {
                            if !m.iter().any(|a| a.actor_id == p.actor_id) {
                                findings.push(Finding::fatal(format!(
                                    "nodes factor '{nf}' has a level not mapping actor '{}'",
                                    p.actor_id
                                )));
                            }
                        }
                    }
                }
            }
        }
        check_actions(
            desc,
            &p.actions,
            &replication_id,
            &mut findings,
            &p.actor_id,
        );
    }
    for (i, env) in desc.env_processes.iter().enumerate() {
        check_actions(
            desc,
            &env.actions,
            &replication_id,
            &mut findings,
            &format!("env#{i}"),
        );
    }

    // Actor maps reference known abstract nodes; abstract nodes map to the
    // platform.
    let abstract_set: HashSet<&str> = desc.abstract_nodes.iter().map(String::as_str).collect();
    for f in &desc.factors.factors {
        for level in &f.levels {
            if let Some(m) = level.as_actor_map() {
                for a in m {
                    for inst in &a.instances {
                        if !abstract_set.is_empty() && !abstract_set.contains(inst.as_str()) {
                            findings.push(Finding::fatal(format!(
                                "actor map '{}' assigns unknown abstract node '{inst}'",
                                f.id
                            )));
                        }
                        if !desc.platform.is_empty()
                            && desc.platform.node_for_abstract(inst).is_none()
                        {
                            findings.push(Finding::fatal(format!(
                                "abstract node '{inst}' has no platform mapping"
                            )));
                        }
                    }
                }
            }
        }
    }

    // Platform node ids unique.
    let mut platform_ids = HashSet::new();
    for n in desc.platform.all_nodes() {
        if !platform_ids.insert(n.id.as_str()) {
            findings.push(Finding::fatal(format!(
                "duplicate platform node id '{}'",
                n.id
            )));
        }
    }

    findings
}

fn check_actions(
    desc: &ExperimentDescription,
    actions: &[ProcessAction],
    replication_id: &str,
    findings: &mut Vec<Finding>,
    ctx: &str,
) {
    let known_actor = |actor: &str| desc.node_processes.iter().any(|p| p.actor_id == actor);
    let check_ref = |v: &ValueRef, findings: &mut Vec<Finding>| {
        if let Some(id) = v.factor_id() {
            if id != replication_id && desc.factors.factor(id).is_none() {
                findings.push(Finding::fatal(format!(
                    "{ctx}: reference to unknown factor '{id}'"
                )));
            }
        }
    };
    for a in actions {
        match a {
            ProcessAction::WaitForTime { seconds } => check_ref(seconds, findings),
            ProcessAction::WaitForEvent(sel) => {
                if sel.event.is_empty() {
                    findings.push(Finding::fatal(format!(
                        "{ctx}: wait_for_event without name"
                    )));
                }
                if let Some(t) = &sel.timeout_s {
                    check_ref(t, findings);
                }
                for ns in [&sel.from, &sel.param].into_iter().flatten() {
                    if !known_actor(&ns.actor) {
                        findings.push(Finding::fatal(format!(
                            "{ctx}: selector references unknown actor '{}'",
                            ns.actor
                        )));
                    }
                }
            }
            ProcessAction::EventFlag { value } => {
                if value.is_empty() {
                    findings.push(Finding::fatal(format!("{ctx}: event_flag without value")));
                }
            }
            ProcessAction::WaitMarker => {}
            ProcessAction::Invoke { params, .. } => {
                for (_, v) in params {
                    check_ref(v, findings);
                }
            }
        }
    }
}

/// Validates and returns an error listing all fatal findings, if any.
pub fn validate_strict(desc: &ExperimentDescription) -> Result<Vec<Finding>, DescError> {
    let findings = validate(desc);
    let fatal: Vec<&Finding> = findings.iter().filter(|f| f.fatal).collect();
    if fatal.is_empty() {
        Ok(findings)
    } else {
        Err(DescError(
            fatal
                .iter()
                .map(|f| f.message.clone())
                .collect::<Vec<_>>()
                .join("; "),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::{Factor, FactorList, LevelValue};
    use crate::process::{ActorProcess, EventSelector, NodeSelector};

    #[test]
    fn paper_description_is_valid() {
        let d = ExperimentDescription::paper_two_party_sd(10);
        let findings = validate(&d);
        assert!(
            findings.iter().all(|f| !f.fatal),
            "unexpected fatal findings: {findings:?}"
        );
    }

    #[test]
    fn duplicate_factor_id_is_fatal() {
        let mut d = ExperimentDescription::new("x");
        d.factors = FactorList::new()
            .with_factor(Factor::int("f", FactorUsage::Constant, [1]))
            .with_factor(Factor::int("f", FactorUsage::Constant, [2]));
        assert!(validate(&d)
            .iter()
            .any(|f| f.fatal && f.message.contains("duplicate factor")));
    }

    #[test]
    fn unknown_factorref_is_fatal() {
        let mut d = ExperimentDescription::new("x");
        let mut p = ActorProcess::new("a0");
        p.actions = vec![ProcessAction::WaitForTime {
            seconds: ValueRef::factor("missing"),
        }];
        d.node_processes.push(p);
        assert!(validate(&d)
            .iter()
            .any(|f| f.fatal && f.message.contains("missing")));
    }

    #[test]
    fn replication_ref_is_allowed() {
        let mut d = ExperimentDescription::new("x");
        let mut p = ActorProcess::new("a0");
        p.actions = vec![ProcessAction::invoke_with(
            "env_traffic_start",
            [("seed".to_string(), ValueRef::factor("fact_replication_id"))],
        )];
        d.node_processes.push(p);
        assert!(validate(&d).iter().all(|f| !f.fatal), "{:?}", validate(&d));
    }

    #[test]
    fn selector_to_unknown_actor_is_fatal() {
        let mut d = ExperimentDescription::new("x");
        let mut p = ActorProcess::new("a0");
        p.actions = vec![ProcessAction::WaitForEvent(
            EventSelector::named("e").from_nodes(NodeSelector::all("ghost")),
        )];
        d.node_processes.push(p);
        assert!(validate(&d)
            .iter()
            .any(|f| f.fatal && f.message.contains("ghost")));
    }

    #[test]
    fn level_type_mismatch_is_fatal() {
        let mut d = ExperimentDescription::new("x");
        let mut f = Factor::int("f", FactorUsage::Constant, [1]);
        f.levels.push(LevelValue::Text("oops".into()));
        d.factors = FactorList::new().with_factor(f);
        assert!(validate(&d)
            .iter()
            .any(|x| x.fatal && x.message.contains("declares type")));
    }

    #[test]
    fn unmapped_abstract_node_is_fatal() {
        let mut d = ExperimentDescription::paper_two_party_sd(1);
        // Remove the platform mapping for B.
        d.platform
            .actor_nodes
            .retain(|n| n.abstract_id.as_deref() != Some("B"));
        assert!(validate(&d)
            .iter()
            .any(|f| f.fatal && f.message.contains("no platform mapping")));
    }

    #[test]
    fn empty_levels_is_warning_only() {
        let mut d = ExperimentDescription::new("x");
        d.factors = FactorList::new().with_factor(Factor::int(
            "f",
            FactorUsage::Constant,
            std::iter::empty(),
        ));
        let findings = validate(&d);
        assert!(findings
            .iter()
            .any(|f| !f.fatal && f.message.contains("no levels")));
        assert!(validate_strict(&d).is_ok());
    }

    #[test]
    fn validate_strict_reports_all_fatals() {
        let mut d = ExperimentDescription::new("x");
        d.factors = FactorList::new()
            .with_factor(Factor::int("f", FactorUsage::Constant, [1]))
            .with_factor(Factor::int("f", FactorUsage::Constant, [1]));
        let mut p = ActorProcess::new("a0");
        p.actions = vec![ProcessAction::EventFlag {
            value: String::new(),
        }];
        d.node_processes.push(p);
        let err = validate_strict(&d).unwrap_err();
        assert!(err.0.contains("duplicate factor") && err.0.contains("event_flag"));
    }

    #[test]
    fn duplicate_platform_id_is_fatal() {
        let mut d = ExperimentDescription::new("x");
        d.platform = crate::platform::PlatformSpec::new()
            .with_env_node("n1", "10.0.0.1")
            .with_env_node("n1", "10.0.0.2");
        assert!(validate(&d)
            .iter()
            .any(|f| f.fatal && f.message.contains("duplicate platform")));
    }
}
