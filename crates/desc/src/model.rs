//! The complete experiment description (paper §IV-C, Fig. 4).

use crate::factors::FactorList;
use crate::plan::{Design, PlanOptions, TreatmentPlan};
use crate::platform::PlatformSpec;
use crate::process::{
    ActorProcess, EnvProcess, EventSelector, NodeSelector, ProcessAction, ValueRef,
};
use std::fmt;

/// Error raised when building, parsing or validating a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescError(pub String);

impl fmt::Display for DescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "description error: {}", self.0)
    }
}

impl std::error::Error for DescError {}

/// The abstract description of a whole experiment: design, manipulations
/// and the distributed process under examination.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDescription {
    /// Experiment name (stored in `ExperimentInfo`).
    pub name: String,
    /// Free-form comment.
    pub comment: Option<String>,
    /// Abstract node identifiers (Fig. 4: nodes `A` and `B`).
    pub abstract_nodes: Vec<String>,
    /// Informative key-value parameters classifying the experiment
    /// (Fig. 4: `sd_architecture`, `sd_protocol`, `sd_scheme`).
    pub params: Vec<(String, String)>,
    /// The experiment design: factors, levels, replication.
    pub factors: FactorList,
    /// Node-bound processes: experiment roles and manipulation processes.
    pub node_processes: Vec<ActorProcess>,
    /// Environment processes (traffic generation etc.).
    pub env_processes: Vec<EnvProcess>,
    /// Mapping to the concrete platform.
    pub platform: PlatformSpec,
    /// Master seed named in the description (§IV-C1).
    pub seed: u64,
    /// Treatment ordering design.
    pub design: Design,
}

impl ExperimentDescription {
    /// Creates a minimal named description.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            comment: None,
            abstract_nodes: Vec::new(),
            params: Vec::new(),
            factors: FactorList::new(),
            node_processes: Vec::new(),
            env_processes: Vec::new(),
            platform: PlatformSpec::new(),
            seed: 0,
            design: Design::Ofat,
        }
    }

    /// Looks up an informative parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Generates the treatment plan for this description.
    pub fn plan(&self) -> TreatmentPlan {
        TreatmentPlan::generate(
            &self.factors,
            &PlanOptions {
                design: self.design,
                seed: self.seed,
            },
        )
    }

    /// The node process for a given actor id.
    pub fn node_process(&self, actor_id: &str) -> Option<&ActorProcess> {
        self.node_processes.iter().find(|p| p.actor_id == actor_id)
    }

    /// The paper's complete two-party service-discovery experiment:
    /// Fig. 4 (informative parameters and abstract nodes), Fig. 5
    /// (factors), Fig. 7 (environment traffic process), Fig. 8 (platform),
    /// Fig. 9 (SM role) and Fig. 10 (SU role).
    ///
    /// `replications` scales the 1000 replications of Fig. 5 so tests and
    /// examples can run abbreviated versions of the same description.
    pub fn paper_two_party_sd(replications: u64) -> Self {
        let mut d = ExperimentDescription::new("sd-two-party");
        d.comment = Some(
            "One-shot decentralized service discovery under generated load \
             (paper Figs. 4-11)"
                .into(),
        );
        d.abstract_nodes = vec!["A".into(), "B".into()];
        d.params = vec![
            ("sd_architecture".into(), "two-party".into()),
            ("sd_protocol".into(), "zeroconf".into()),
            ("sd_scheme".into(), "active".into()),
        ];
        let mut factors = FactorList::paper_fig5();
        factors.replication.count = replications;
        d.factors = factors;

        // Fig. 9: SM role.
        let mut sm = ActorProcess::new("actor0");
        sm.name = Some("SM".into());
        sm.nodes_factor = Some("fact_nodes".into());
        sm.actions = vec![
            ProcessAction::invoke("sd_init"),
            ProcessAction::invoke("sd_start_publish"),
            ProcessAction::WaitForEvent(EventSelector::named("done")),
            ProcessAction::invoke("sd_stop_publish"),
            ProcessAction::invoke("sd_exit"),
        ];

        // Fig. 10: SU role.
        let mut su = ActorProcess::new("actor1");
        su.name = Some("SU".into());
        su.nodes_factor = Some("fact_nodes".into());
        su.actions = vec![
            ProcessAction::WaitForEvent(
                EventSelector::named("sd_start_publish").from_nodes(NodeSelector::all("actor0")),
            ),
            ProcessAction::WaitForEvent(EventSelector::named("ready_to_init")),
            ProcessAction::invoke("sd_init"),
            ProcessAction::WaitMarker,
            ProcessAction::invoke("sd_start_search"),
            ProcessAction::WaitForEvent(
                EventSelector::named("sd_service_add")
                    .from_nodes(NodeSelector::all("actor1"))
                    .with_param(NodeSelector::all("actor0"))
                    .with_timeout(ValueRef::int(30)),
            ),
            ProcessAction::EventFlag {
                value: "done".into(),
            },
            ProcessAction::invoke("sd_stop_search"),
            ProcessAction::invoke("sd_exit"),
        ];
        d.node_processes = vec![sm, su];

        // Fig. 7: environment traffic process.
        let env = EnvProcess {
            actions: vec![
                ProcessAction::EventFlag {
                    value: "ready_to_init".into(),
                },
                ProcessAction::invoke_with(
                    "env_traffic_start",
                    [
                        ("bw".to_string(), ValueRef::factor("fact_bw")),
                        ("choice".to_string(), ValueRef::int(0)),
                        ("random_switch_amount".to_string(), ValueRef::int(1)),
                        (
                            "random_switch_seed".to_string(),
                            ValueRef::factor("fact_replication_id"),
                        ),
                        ("random_pairs".to_string(), ValueRef::factor("fact_pairs")),
                        ("random_seed".to_string(), ValueRef::factor("fact_pairs")),
                    ],
                ),
                ProcessAction::WaitForEvent(EventSelector::named("done")),
                ProcessAction::invoke("env_traffic_stop"),
            ],
        };
        d.env_processes = vec![env];

        d.platform = PlatformSpec::paper_fig8();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_description_is_minimal() {
        let d = ExperimentDescription::new("x");
        assert_eq!(d.name, "x");
        assert!(d.plan().len() == 1, "replication default 1, no factors");
    }

    #[test]
    fn param_lookup() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        assert_eq!(d.param("sd_protocol"), Some("zeroconf"));
        assert_eq!(d.param("sd_architecture"), Some("two-party"));
        assert_eq!(d.param("missing"), None);
    }

    #[test]
    fn paper_description_full_plan_size() {
        let d = ExperimentDescription::paper_two_party_sd(1000);
        assert_eq!(d.plan().len(), 6_000);
    }

    #[test]
    fn paper_description_roles() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        let sm = d.node_process("actor0").unwrap();
        assert_eq!(sm.name.as_deref(), Some("SM"));
        assert_eq!(sm.actions.len(), 5);
        let su = d.node_process("actor1").unwrap();
        assert_eq!(su.actions.len(), 9);
        assert!(d.node_process("actor9").is_none());
    }

    #[test]
    fn su_deadline_is_30_seconds() {
        let d = ExperimentDescription::paper_two_party_sd(1);
        let su = d.node_process("actor1").unwrap();
        let waits: Vec<&EventSelector> = su
            .actions
            .iter()
            .filter_map(|a| match a {
                ProcessAction::WaitForEvent(sel) => Some(sel),
                _ => None,
            })
            .collect();
        let add = waits.iter().find(|w| w.event == "sd_service_add").unwrap();
        assert_eq!(add.timeout_s, Some(ValueRef::int(30)));
        assert!(add.require_all);
    }

    #[test]
    fn error_display() {
        let e = DescError("bad factor".into());
        assert!(e.to_string().contains("bad factor"));
    }
}
