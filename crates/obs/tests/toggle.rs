//! Enable/disable semantics of the global toggle.
//!
//! Lives in its own integration-test binary (own process): the crate's
//! unit tests only ever switch recording *on*, so this is the one place
//! allowed to observe the disabled state without racing them.

use excovery_obs as obs;

#[test]
fn disabled_layer_records_nothing_and_config_round_trips() {
    // Fresh process: the default is off.
    assert!(!obs::enabled());
    assert_eq!(obs::ObsConfig::default(), obs::ObsConfig::off());

    // While disabled, every record operation is a no-op.
    let reg = obs::Registry::new();
    let c = reg.counter("off_total", &[]);
    let g = reg.gauge("off_gauge", &[]);
    let h = reg.histogram("off_ns", &[]);
    let tracer = obs::Tracer::new(8);
    c.inc();
    c.add(10);
    g.set(5);
    g.add(1);
    h.observe(123);
    tracer.record_span("off", 1, 2);
    tracer.record_event("off", 3);
    assert_eq!(c.value(), 0);
    assert_eq!(g.value(), 0);
    assert_eq!(h.count(), 0);
    assert!(tracer.is_empty());

    // Exporters still work on a disabled registry (all zeros).
    let text = obs::prometheus::render(&reg.snapshot());
    assert!(text.contains("off_total 0"));

    // Install flips the flag on, and handles created earlier come alive.
    obs::ObsConfig::on().install();
    assert!(obs::enabled());
    c.inc();
    h.observe(9);
    tracer.record_event("on", 4);
    assert_eq!(c.value(), 1);
    assert_eq!(h.count(), 1);
    assert_eq!(tracer.len(), 1);

    // And off again.
    obs::ObsConfig::off().install();
    assert!(!obs::enabled());
    c.inc();
    assert_eq!(c.value(), 1);
}
