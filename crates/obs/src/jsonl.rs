//! JSONL snapshot exporter: one self-describing JSON object per line.
//!
//! The format is the machine-readable sibling of the Prometheus text
//! exposition — the shape the engine persists into the Level-2 store
//! next to the run journal, and the shape analysis tooling reads back:
//!
//! ```text
//! {"type":"counter","name":"rpc_calls_total","labels":{"transport":"tcp"},"value":7}
//! {"type":"gauge","name":"queue_depth","labels":{},"value":-2}
//! {"type":"histogram","name":"latency_ns","labels":{},"count":3,"sum":1006,"buckets":[[1,2],[9,1]]}
//! {"type":"span","name":"phase:run_init","start_ns":100,"end_ns":150}
//! ```
//!
//! Histogram `buckets` entries are `[bucket_index, count]` pairs; the
//! value range of index `i` is `[2^i, 2^(i+1))` (see
//! [`bucket_upper_bound`](crate::metrics::bucket_upper_bound)).
//!
//! [`render`]/[`parse`] round-trip exactly: `parse(render(s, t)) == (s,
//! t)`. The parser is a deliberately small recursive-descent JSON reader
//! (integers up to `u64`, no floats beyond what `f64` text carries) so
//! the crate stays dependency-free.

use crate::metrics::{HistogramSnapshot, MetricValue, Snapshot};
use crate::span::SpanRecord;
use std::fmt::Write as _;

// ---- rendering -------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn labels_json(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Renders a metrics snapshot plus finished spans as JSONL, one object
/// per line, in the snapshot's deterministic order (spans last, in
/// recording order).
pub fn render(snapshot: &Snapshot, spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(&c.name),
            labels_json(&c.labels),
            c.value
        );
    }
    for g in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
            escape_json(&g.name),
            labels_json(&g.labels),
            g.value
        );
    }
    for h in &snapshot.histograms {
        let buckets: Vec<String> = h
            .value
            .buckets
            .iter()
            .map(|(i, n)| format!("[{i},{n}]"))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
            escape_json(&h.name),
            labels_json(&h.labels),
            h.value.count,
            h.value.sum,
            buckets.join(",")
        );
    }
    for s in spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
            escape_json(&s.name),
            s.start_ns,
            s.end_ns
        );
    }
    out
}

// ---- a minimal JSON value --------------------------------------------------

/// A parsed JSON value — just enough structure for the JSONL lines this
/// module emits, exposed so tooling and tests can inspect snapshots
/// without a JSON dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number; stored as `i128` when integral so `u64` counter
    /// values survive exactly.
    Int(i128),
    /// Non-integral numbers.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonVal>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonVal)>),
}

impl JsonVal {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonVal> {
        match self {
            JsonVal::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonVal::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonVal::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonVal::Bool(true)),
            Some(b'f') => self.literal("false", JsonVal::Bool(false)),
            Some(b'n') => self.literal("null", JsonVal::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, val: JsonVal) -> Result<JsonVal, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(val)
        } else {
            Err(format!("expected {text:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonVal, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(JsonVal::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse::<i128>()
                .map(JsonVal::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonVal::Arr(items));
                }
                other => return Err(format!("unexpected {other:?} in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonVal, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonVal::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonVal::Obj(pairs));
                }
                other => return Err(format!("unexpected {other:?} in object")),
            }
        }
    }
}

/// Parses one JSON document (used per JSONL line).
pub fn parse_value(s: &str) -> Result<JsonVal, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

// ---- parsing back into Snapshot + spans ------------------------------------

fn labels_from(v: &JsonVal) -> Result<Vec<(String, String)>, String> {
    match v {
        JsonVal::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| format!("label {k:?} is not a string"))
            })
            .collect(),
        _ => Err("labels is not an object".into()),
    }
}

fn field<'v>(obj: &'v JsonVal, key: &str) -> Result<&'v JsonVal, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

/// Parses a JSONL document produced by [`render`] back into the
/// snapshot and span list. The exact inverse: `parse(render(s, t)) ==
/// Ok((s, t))`.
pub fn parse(text: &str) -> Result<(Snapshot, Vec<SpanRecord>), String> {
    let mut snapshot = Snapshot::default();
    let mut spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_value(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = field(&obj, "type")
            .and_then(|v| v.as_str().ok_or_else(|| "type is not a string".into()))
            .map_err(|e| format!("line {}: {e}", lineno + 1))?
            .to_string();
        let res: Result<(), String> = (|| {
            match kind.as_str() {
                "counter" => snapshot.counters.push(MetricValue {
                    name: field(&obj, "name")?
                        .as_str()
                        .ok_or("name not a string")?
                        .into(),
                    labels: labels_from(field(&obj, "labels")?)?,
                    value: field(&obj, "value")?.as_u64().ok_or("value not a u64")?,
                }),
                "gauge" => snapshot.gauges.push(MetricValue {
                    name: field(&obj, "name")?
                        .as_str()
                        .ok_or("name not a string")?
                        .into(),
                    labels: labels_from(field(&obj, "labels")?)?,
                    value: field(&obj, "value")?.as_i64().ok_or("value not an i64")?,
                }),
                "histogram" => {
                    let buckets = match field(&obj, "buckets")? {
                        JsonVal::Arr(items) => items
                            .iter()
                            .map(|pair| match pair {
                                JsonVal::Arr(iv) if iv.len() == 2 => {
                                    let i = iv[0].as_u64().ok_or("bucket index not a u64")?;
                                    let n = iv[1].as_u64().ok_or("bucket count not a u64")?;
                                    Ok((i as usize, n))
                                }
                                _ => Err("bucket entry is not a pair".to_string()),
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err("buckets is not an array".into()),
                    };
                    snapshot.histograms.push(MetricValue {
                        name: field(&obj, "name")?
                            .as_str()
                            .ok_or("name not a string")?
                            .into(),
                        labels: labels_from(field(&obj, "labels")?)?,
                        value: HistogramSnapshot {
                            count: field(&obj, "count")?.as_u64().ok_or("count not a u64")?,
                            sum: field(&obj, "sum")?.as_u64().ok_or("sum not a u64")?,
                            buckets,
                        },
                    })
                }
                "span" => spans.push(SpanRecord {
                    name: field(&obj, "name")?
                        .as_str()
                        .ok_or("name not a string")?
                        .to_string()
                        .into(),
                    start_ns: field(&obj, "start_ns")?
                        .as_u64()
                        .ok_or("start_ns not a u64")?,
                    end_ns: field(&obj, "end_ns")?.as_u64().ok_or("end_ns not a u64")?,
                }),
                other => return Err(format!("unknown line type {other:?}")),
            }
            Ok(())
        })();
        res.map_err(|e| format!("line {}: {e}", lineno + 1))?;
    }
    Ok((snapshot, spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::span::Tracer;

    #[test]
    fn render_parse_round_trips_exactly() {
        crate::set_enabled(true);
        let reg = Registry::new();
        reg.counter("rpc_calls_total", &[("transport", "tcp")])
            .add(7);
        reg.counter("rpc_calls_total", &[("transport", "memory")])
            .add(2);
        reg.gauge("queue_depth", &[]).set(-5);
        let h = reg.histogram("latency_ns", &[("phase", "exit")]);
        for v in [1u64, 3, 900, 70_000] {
            h.observe(v);
        }
        let tracer = Tracer::new(8);
        tracer.record_span("phase:run_init", 100, 150);
        tracer.record_event("engine:packaged", 900);

        let snapshot = reg.snapshot();
        let spans = tracer.snapshot();
        let text = render(&snapshot, &spans);
        let (back_snapshot, back_spans) = parse(&text).unwrap();
        assert_eq!(back_snapshot, snapshot);
        assert_eq!(back_spans, spans);
    }

    #[test]
    fn strings_with_specials_survive() {
        crate::set_enabled(true);
        let reg = Registry::new();
        reg.counter("odd_total", &[("v", "a\"b\\c\nd\te")]).inc();
        let text = render(&reg.snapshot(), &[]);
        let (back, _) = parse(&text).unwrap();
        assert_eq!(back.counters[0].labels[0].1, "a\"b\\c\nd\te");
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = parse("{\"type\":\"counter\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse("{\"type\":\"counter\",\"name\":\"x\",\"labels\":{},\"value\":1}\nnope")
            .unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn parse_value_handles_nesting_and_numbers() {
        let v = parse_value("{\"a\":[1,2.5,null,true],\"b\":{\"c\":\"x\"}}").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &JsonVal::Arr(vec![
                JsonVal::Int(1),
                JsonVal::Float(2.5),
                JsonVal::Null,
                JsonVal::Bool(true)
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        // u64::MAX survives through i128.
        let v = parse_value(&format!("{{\"n\":{}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
    }
}
