//! Length-prefixed framing shared by the control channel and the scrape
//! endpoint.
//!
//! One frame is a big-endian `u32` length followed by that many payload
//! bytes:
//!
//! ```text
//! +----------------+---------------------+
//! | u32 BE length  |      payload        |
//! +----------------+---------------------+
//! ```
//!
//! This is the exact wire format of the `excovery-rpc` TCP backend; the
//! plumbing lives here (the dependency-free leaf crate) so both the
//! XML-RPC transport and the metrics scrape endpoint frame their streams
//! identically, with one implementation of the length-cap defence.

use std::io::{ErrorKind, Read, Write};

/// Upper bound on a single frame; anything larger is rejected before
/// allocation (a corrupt length prefix would otherwise ask for
/// gigabytes).
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Writes one frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means clean EOF at a frame boundary; a
/// length above [`MAX_FRAME_BYTES`] is an `InvalidData` error.
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        other => other?,
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_invalid_data() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut cursor = std::io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn eof_before_a_complete_header_reads_as_end_of_stream() {
        // Matches the original TCP-backend semantics: a peer closing
        // before a full header is treated as end of stream.
        let mut partial = std::io::Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut partial).unwrap().is_none());
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
    }
}
