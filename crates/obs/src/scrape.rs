//! A tiny framed TCP scrape endpoint for the global registry.
//!
//! The same length-prefixed framing as the control channel
//! ([`crate::frame`], shared with the `excovery-rpc` TCP backend) carries
//! scrape requests and responses: the client sends one frame naming a
//! format (`"prometheus"` or `"jsonl"`), the server answers with one
//! frame holding the rendered snapshot. Connections may issue any number
//! of request frames; an unknown format gets an `error: …` frame and the
//! connection stays usable.
//!
//! The accept loop mirrors the RPC server's shape: a non-blocking
//! listener polled with a stop flag, one thread per connection with a
//! short read timeout so shutdown is prompt.

use crate::frame::{read_frame, write_frame};
use crate::metrics::Registry;
use crate::span::Tracer;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Request payload selecting the Prometheus text format.
pub const FORMAT_PROMETHEUS: &str = "prometheus";

/// Request payload selecting the JSONL snapshot format.
pub const FORMAT_JSONL: &str = "jsonl";

/// A running scrape endpoint serving a registry (and, for JSONL, a
/// tracer's buffered spans).
///
/// Dropping the handle (or calling [`ScrapeServer::shutdown`]) stops the
/// accept loop and winds down connection threads.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves the process-wide
    /// registry and tracer.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(addr, crate::global(), crate::global_tracer())
    }

    /// Binds `addr` serving an explicit registry and tracer (used by
    /// tests to avoid the shared globals).
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        registry: &'static Registry,
        tracer: &'static Tracer,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("obs-scrape-{addr}"))
            .spawn(move || accept_loop(listener, registry, tracer, stop2))?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and asks connection threads to wind down.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: &'static Registry,
    tracer: &'static Tracer,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let stop = Arc::clone(&stop);
                let _ = std::thread::Builder::new()
                    .name("obs-scrape-conn".into())
                    .spawn(move || serve_connection(stream, registry, tracer, stop));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Renders one response for a request payload.
fn respond(registry: &Registry, tracer: &Tracer, request: &[u8]) -> String {
    match std::str::from_utf8(request) {
        Ok(FORMAT_PROMETHEUS) => crate::prometheus::render(&registry.snapshot()),
        Ok(FORMAT_JSONL) => crate::jsonl::render(&registry.snapshot(), &tracer.snapshot()),
        Ok(other) => format!(
            "error: unknown scrape format {other:?} (expected \"{FORMAT_PROMETHEUS}\" or \"{FORMAT_JSONL}\")"
        ),
        Err(_) => "error: scrape request is not UTF-8".to_string(),
    }
}

fn serve_connection(
    mut stream: TcpStream,
    registry: &'static Registry,
    tracer: &'static Tracer,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // client closed
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => return,
        };
        let response = respond(registry, tracer, &request);
        if write_frame(&mut stream, response.as_bytes()).is_err() {
            return;
        }
    }
}

/// One-shot scrape client: connects, requests `format`, returns the
/// rendered text. The counterpart tests and CLIs use against a running
/// [`ScrapeServer`].
pub fn scrape(addr: impl ToSocketAddrs, format: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, format.as_bytes())?;
    match read_frame(&mut stream)? {
        Some(payload) => String::from_utf8(payload)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string())),
        None => Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "scrape server closed without a response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    fn leaked_tracer() -> &'static Tracer {
        Box::leak(Box::new(Tracer::new(64)))
    }

    #[test]
    fn scrape_round_trips_both_formats() {
        crate::set_enabled(true);
        let registry = leaked_registry();
        let tracer = leaked_tracer();
        registry.counter("scraped_total", &[("via", "tcp")]).add(3);
        tracer.record_span("phase:test", 1, 5);
        let server = ScrapeServer::bind_with("127.0.0.1:0", registry, tracer).unwrap();

        let prom = scrape(server.local_addr(), FORMAT_PROMETHEUS).unwrap();
        assert!(prom.contains("scraped_total{via=\"tcp\"} 3"), "{prom}");

        let jsonl = scrape(server.local_addr(), FORMAT_JSONL).unwrap();
        let (snapshot, spans) = crate::jsonl::parse(&jsonl).unwrap();
        assert_eq!(snapshot.counters[0].value, 3);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "phase:test");
    }

    #[test]
    fn one_connection_serves_many_requests() {
        crate::set_enabled(true);
        let registry = leaked_registry();
        let tracer = leaked_tracer();
        let counter = registry.counter("reqs_total", &[]);
        let server = ScrapeServer::bind_with("127.0.0.1:0", registry, tracer).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        for i in 1..=3u64 {
            counter.inc();
            write_frame(&mut stream, FORMAT_PROMETHEUS.as_bytes()).unwrap();
            let text = String::from_utf8(read_frame(&mut stream).unwrap().unwrap()).unwrap();
            assert!(text.contains(&format!("reqs_total {i}")), "{text}");
        }
    }

    #[test]
    fn unknown_format_reports_an_error_frame() {
        let registry = leaked_registry();
        let tracer = leaked_tracer();
        let server = ScrapeServer::bind_with("127.0.0.1:0", registry, tracer).unwrap();
        let text = scrape(server.local_addr(), "xml").unwrap();
        assert!(text.starts_with("error: unknown scrape format"), "{text}");
    }
}
