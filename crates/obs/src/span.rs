//! Lightweight span/event tracing with caller-supplied clocks.
//!
//! The determinism contract of the workspace forbids instrumentation
//! from *reading* time on its own: inside the simulator, "now" is
//! simulated nanoseconds owned by the event loop; in the master and the
//! RPC layer it is monotonic wall time. So this module never calls into
//! a time source — every timestamp is handed in by the caller, either
//! directly ([`Tracer::record_span`]) or through a [`Clock`]
//! implementation the *caller* chose ([`WallClock`] for control-plane
//! code, [`ManualClock`] or raw sim timestamps for the data plane).
//!
//! Finished spans land in a bounded ring buffer: memory stays fixed, the
//! oldest spans are dropped (and counted) under pressure, and the engine
//! drains the ring at run boundaries into the per-run summary.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A source of monotonic nanosecond timestamps, supplied by the caller.
///
/// Implementations must be monotonic within one tracer's lifetime but
/// carry no epoch guarantee — spans are compared within one recording,
/// never across clocks.
pub trait Clock {
    /// Current time in nanoseconds on this clock.
    fn now_ns(&self) -> u64;
}

/// Monotonic wall-clock time, anchored at construction. The clock for
/// control-plane instrumentation (master phases, RPC latency).
pub struct WallClock {
    anchor: std::time::Instant,
}

impl WallClock {
    /// A clock reading zero now.
    pub fn new() -> Self {
        Self {
            anchor: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.anchor.elapsed().as_nanos() as u64
    }
}

/// A clock advanced explicitly — an adapter for simulated time and the
/// deterministic choice for tests.
#[derive(Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock starting at `start_ns`.
    pub fn at(start_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(start_ns),
        }
    }

    /// Sets the current time.
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::Relaxed);
    }

    /// Advances the clock by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

/// One finished span (or instantaneous event, where `start_ns ==
/// end_ns`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name; static for the fixed vocabulary of engine phases,
    /// owned for names carrying identifiers (e.g. `run:3`).
    pub name: Cow<'static, str>,
    /// Start timestamp on the caller's clock.
    pub start_ns: u64,
    /// End timestamp on the same clock.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration on its own clock.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct TracerInner {
    buf: VecDeque<SpanRecord>,
    capacity: usize,
}

/// A bounded ring of finished spans.
pub struct Tracer {
    inner: Mutex<TracerInner>,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer keeping at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(TracerInner {
                buf: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Resizes the ring; excess oldest spans are dropped (and counted).
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("obs tracer poisoned");
        inner.capacity = capacity.max(1);
        while inner.buf.len() > inner.capacity {
            inner.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a finished span. A no-op while observability is disabled.
    pub fn record_span(&self, name: impl Into<Cow<'static, str>>, start_ns: u64, end_ns: u64) {
        if !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("obs tracer poisoned");
        if inner.buf.len() == inner.capacity {
            inner.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.buf.push_back(SpanRecord {
            name: name.into(),
            start_ns,
            end_ns,
        });
    }

    /// Records an instantaneous event (a zero-length span).
    pub fn record_event(&self, name: impl Into<Cow<'static, str>>, at_ns: u64) {
        self.record_span(name, at_ns, at_ns);
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("obs tracer poisoned").buf.len()
    }

    /// True if no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans dropped to the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies the buffered spans without clearing them.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .expect("obs tracer poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns all buffered spans — how the engine collects
    /// a run's spans into its per-run summary.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.inner
            .lock()
            .expect("obs tracer poisoned")
            .buf
            .drain(..)
            .collect()
    }
}

/// An in-flight span: captures the start timestamp from the caller's
/// clock, records on [`SpanTimer::finish`].
pub struct SpanTimer {
    name: Cow<'static, str>,
    start_ns: u64,
}

impl SpanTimer {
    /// Starts a span now on `clock`.
    pub fn start(clock: &impl Clock, name: impl Into<Cow<'static, str>>) -> Self {
        Self {
            name: name.into(),
            start_ns: clock.now_ns(),
        }
    }

    /// The captured start timestamp.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Finishes the span now on `clock` (which must be the clock it
    /// started on) and records it into `tracer`. Returns the duration.
    pub fn finish(self, clock: &impl Clock, tracer: &Tracer) -> u64 {
        let end_ns = clock.now_ns();
        let duration = end_ns.saturating_sub(self.start_ns);
        tracer.record_span(self.name, self.start_ns, end_ns);
        duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_the_manual_clock() {
        crate::set_enabled(true);
        let tracer = Tracer::new(16);
        let clock = ManualClock::at(100);
        let timer = SpanTimer::start(&clock, "phase:run_init");
        clock.advance(50);
        let d = timer.finish(&clock, &tracer);
        assert_eq!(d, 50);
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "phase:run_init");
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].end_ns, 150);
        assert_eq!(spans[0].duration_ns(), 50);
        assert!(tracer.is_empty());
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        crate::set_enabled(true);
        let tracer = Tracer::new(2);
        tracer.record_event("a", 1);
        tracer.record_event("b", 2);
        tracer.record_event("c", 3);
        assert_eq!(tracer.dropped(), 1);
        let names: Vec<_> = tracer.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        crate::set_enabled(true);
        let tracer = Tracer::new(8);
        for i in 0..8 {
            tracer.record_event("e", i);
        }
        tracer.set_capacity(3);
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 5);
        assert_eq!(tracer.snapshot()[0].start_ns, 5);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
