//! Observability subsystem of the ExCovery reproduction.
//!
//! The paper's framework records *everything relevant to an experiment*
//! (§IV-B: node-local events, captures, clock offsets) — this crate gives
//! the reproduction the same property at runtime: counters, latency
//! histograms, phase spans, and exporters to look at them, across both
//! the control plane (master ↔ NodeManager RPC) and the data plane (the
//! deterministic network simulator).
//!
//! Three rules keep the layer compatible with the workspace's determinism
//! contract (DESIGN.md §6):
//!
//! 1. **Caller-supplied clocks.** Nothing in this crate reads a clock.
//!    Spans and events carry timestamps handed in by the caller — the
//!    simulator passes simulated nanoseconds, the master passes monotonic
//!    wall time via [`WallClock`]. Instrumentation therefore never
//!    perturbs simulated behaviour, only describes it.
//! 2. **Observation only.** No instrumented code path branches on a
//!    metric value. Enabling or disabling the subsystem must never change
//!    an [`ExperimentOutcome::digest()`]-visible byte — the engine's
//!    `obs_digest_parity` test pins that.
//! 3. **Near-zero cost when off.** The global [`ObsConfig`] toggle gates
//!    every record operation behind one relaxed atomic load; hot loops
//!    (the simulator packet path) publish counters in batch at run
//!    boundaries instead of per event.
//!
//! [`ExperimentOutcome::digest()`]: https://docs.rs/excovery-core
//!
//! # Quick tour
//!
//! ```
//! use excovery_obs as obs;
//!
//! // Handles are cheap clones; registration is keyed by (name, labels).
//! let calls = obs::global().counter("demo_calls_total", &[("transport", "memory")]);
//! let latency = obs::global().histogram("demo_latency_ns", &[]);
//!
//! obs::set_enabled(true);
//! calls.inc();
//! latency.observe(1_500);
//!
//! let text = obs::prometheus::render(&obs::global().snapshot());
//! assert!(text.contains("demo_calls_total{transport=\"memory\"} 1"));
//! ```

pub mod frame;
pub mod jsonl;
pub mod metrics;
pub mod prometheus;
pub mod scrape;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry, Snapshot};
pub use span::{Clock, ManualClock, SpanRecord, SpanTimer, Tracer, WallClock};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Global on/off switch; see [`enabled`].
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True if observability is currently recording.
///
/// One relaxed load — the entire cost of the subsystem on any
/// instrumented path while disabled. All handle operations
/// ([`Counter::inc`], [`Histogram::observe`], [`Tracer::record_span`], …)
/// check this internally, so call sites do not need to.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide metrics registry every instrumented crate records
/// into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide span tracer.
pub fn global_tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(ObsConfig::DEFAULT_SPAN_CAPACITY))
}

/// Runtime configuration of the observability layer.
///
/// The default is **disabled**: benches and digest-sensitive test suites
/// opt in explicitly, so a freshly linked binary pays one atomic load per
/// instrumented operation and nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether metric and span recording is active.
    pub enabled: bool,
    /// Ring-buffer capacity of the global tracer; oldest spans are
    /// dropped (and counted) beyond this, keeping memory bounded.
    pub span_capacity: usize,
}

impl ObsConfig {
    /// Default span ring capacity of [`global_tracer`].
    pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

    /// Configuration with recording switched on.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Configuration with recording switched off (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Applies the configuration process-wide: sets the enable flag and
    /// resizes the global tracer ring.
    pub fn install(&self) {
        global_tracer().set_capacity(self.span_capacity);
        set_enabled(self.enabled);
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            span_capacity: Self::DEFAULT_SPAN_CAPACITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable/disable round-trip lives in `tests/toggle.rs` (its own
    // process): unit tests here share one process and only ever switch
    // recording on, so they cannot race each other through the flag.

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
