//! Prometheus text-format exporter (exposition format 0.0.4).
//!
//! [`render`] turns a [`Snapshot`] into the plain-text format every
//! Prometheus-compatible scraper understands; [`parse_text`] is the
//! matching reader used by the round-trip tests and by ad-hoc tooling
//! that wants to check a scrape without a real Prometheus.

use crate::metrics::{bucket_upper_bound, Snapshot};
use std::fmt::Write as _;

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders a snapshot in the Prometheus text format. Series order is
/// the snapshot's (deterministic) order; histograms expand into
/// cumulative `_bucket` series plus `_sum` and `_count`.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type: Option<(String, &str)> = None;
    let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
        if last_type.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((name, kind)) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_type = Some((name.to_string(), kind));
        }
    };
    for c in &snapshot.counters {
        type_line(&mut out, &c.name, "counter");
        let _ = writeln!(
            out,
            "{}{} {}",
            c.name,
            label_block(&c.labels, None),
            c.value
        );
    }
    for g in &snapshot.gauges {
        type_line(&mut out, &g.name, "gauge");
        let _ = writeln!(
            out,
            "{}{} {}",
            g.name,
            label_block(&g.labels, None),
            g.value
        );
    }
    for h in &snapshot.histograms {
        type_line(&mut out, &h.name, "histogram");
        let mut cumulative = 0u64;
        for &(i, n) in &h.value.buckets {
            cumulative += n;
            let le = match bucket_upper_bound(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                h.name,
                label_block(&h.labels, Some(("le", &le))),
                cumulative
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            h.name,
            label_block(&h.labels, Some(("le", "+Inf"))),
            h.value.count
        );
        let _ = writeln!(
            out,
            "{}_sum{} {}",
            h.name,
            label_block(&h.labels, None),
            h.value.sum
        );
        let _ = writeln!(
            out,
            "{}_count{} {}",
            h.name,
            label_block(&h.labels, None),
            h.value.count
        );
    }
    out
}

/// One parsed sample line: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric (series) name, including any `_bucket`/`_sum`/`_count`
    /// suffix.
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses exposition-format text back into samples, skipping comment
/// lines. Supports exactly what [`render`] emits (which is all the
/// round-trip tests need); malformed lines produce an error naming the
/// line.
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (series, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| format!("no value separator in {line:?}"))?;
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value
            .parse()
            .map_err(|e| format!("bad value {value:?}: {e}"))?
    };
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label block in {series:?}"))?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} not followed by a quoted value"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".into()),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("unexpected {c:?} after label value")),
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_and_parses_back() {
        crate::set_enabled(true);
        let reg = Registry::new();
        reg.counter("rpc_calls_total", &[("transport", "tcp")])
            .add(7);
        reg.gauge("queue_depth", &[]).set(-2);
        let h = reg.histogram("latency_ns", &[("phase", "run_init")]);
        h.observe(3);
        h.observe(3);
        h.observe(1000);
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE rpc_calls_total counter"));
        assert!(text.contains("rpc_calls_total{transport=\"tcp\"} 7"));
        assert!(text.contains("queue_depth -2"));
        assert!(text.contains("latency_ns_count{phase=\"run_init\"} 3"));
        let samples = parse_text(&text).unwrap();
        let get = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name)
                .collect::<Vec<_>>()
        };
        assert_eq!(get("rpc_calls_total")[0].value, 7.0);
        assert_eq!(get("queue_depth")[0].value, -2.0);
        assert_eq!(get("latency_ns_sum")[0].value, 1006.0);
        // Buckets are cumulative and end at +Inf == count.
        let buckets = get("latency_ns_bucket");
        assert_eq!(buckets.last().unwrap().value, 3.0);
        assert!(buckets
            .last()
            .unwrap()
            .labels
            .iter()
            .any(|(k, v)| k == "le" && v == "+Inf"));
    }

    #[test]
    fn label_values_are_escaped() {
        crate::set_enabled(true);
        let reg = Registry::new();
        reg.counter("weird_total", &[("v", "a\"b\\c\nd")]).inc();
        let text = render(&reg.snapshot());
        let samples = parse_text(&text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn malformed_lines_name_the_line() {
        let err = parse_text("ok 1\nbroken{x=1} 2").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
