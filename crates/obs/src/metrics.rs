//! Lock-free metric primitives and the registry that names them.
//!
//! Three instrument kinds cover everything the workspace measures:
//!
//! * [`Counter`] — monotonically increasing `u64`, sharded across
//!   cache-line-padded atomics so concurrent writers (campaign workers,
//!   per-node fan-out threads) never contend on one line.
//! * [`Gauge`] — a signed instantaneous value (queue depth, worker count).
//! * [`Histogram`] — log₂-bucketed distribution with a fixed number of
//!   buckets, so a histogram costs the same memory whether it saw ten
//!   observations or ten billion.
//!
//! Handles are `Arc`-backed clones: registration (name + label lookup
//! under a mutex) happens once at construction time, after which every
//! record operation is a couple of relaxed atomic instructions guarded by
//! the global [`enabled`](crate::enabled) flag. Label sets are expected
//! to be **low-cardinality and stable** (transport kind, phase name,
//! error kind) — the registry enforces this with a hard series cap and
//! routes any excess into a single overflow series rather than growing
//! without bound.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Writer shards per counter. Eight covers the worker counts the
/// campaign layer actually spawns without making `value()` reads slow.
pub const COUNTER_SHARDS: usize = 8;

/// Buckets per histogram: bucket `i` counts values in `[2^i, 2^(i+1))`
/// (bucket 0 also absorbs zero). 44 buckets span one nanosecond to
/// roughly 4.8 hours — beyond any duration the framework measures.
pub const HISTOGRAM_BUCKETS: usize = 44;

/// Hard cap on distinct series per registry; past it, records land in a
/// per-kind overflow series so memory stays fixed even under a
/// cardinality bug.
pub const MAX_SERIES: usize = 1024;

/// An atomic on its own cache line, so sharded writers never false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Stable per-thread shard assignment: threads take round-robin slots so
/// a fixed worker pool spreads evenly over the shards.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

struct CounterCore {
    shards: [PaddedU64; COUNTER_SHARDS],
}

/// A monotonically increasing counter. Cloning shares the underlying
/// series.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    fn new() -> Self {
        Self {
            core: Arc::new(CounterCore {
                shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
            }),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.core.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over shards).
    pub fn value(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// An instantaneous signed value.
#[derive(Clone)]
pub struct Gauge {
    core: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Self {
            core: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the gauge. A no-op while observability is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.core.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease). A no-op while disabled.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.core.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.core.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log₂-bucketed histogram of `u64` observations (typically
/// nanoseconds or byte counts).
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

/// The bucket index a value lands in: its log₂, clamped to the fixed
/// bucket range.
pub fn bucket_index(v: u64) -> usize {
    if v < 2 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Exclusive upper bound of bucket `i` (`2^(i+1)`); the last bucket is
/// unbounded and reported as `+Inf` by the Prometheus exporter.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some(1u64 << (i + 1))
    }
}

impl Histogram {
    fn new() -> Self {
        Self {
            core: Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. A no-op while observability is disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the distribution for export.
    pub fn snapshot_value(&self) -> HistogramSnapshot {
        let buckets = self
            .core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Point-in-time copy of one histogram, with only the non-empty buckets
/// as `(bucket_index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket_index, count)`, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Approximate `q`-quantile (0.0–1.0) from the bucket boundaries:
    /// returns the exclusive upper bound of the bucket holding the
    /// quantile rank (`u64::MAX` for the unbounded last bucket).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Series identity: metric name plus its sorted label pairs.
pub type SeriesKey = (String, Vec<(String, String)>);

/// One exported series of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricValue<T> {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: T,
}

/// A point-in-time copy of every series in a registry, in deterministic
/// (sorted) order — the unit both exporters consume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<MetricValue<u64>>,
    /// All gauges.
    pub gauges: Vec<MetricValue<i64>>,
    /// All histograms.
    pub histograms: Vec<MetricValue<HistogramSnapshot>>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<SeriesKey, Counter>,
    gauges: BTreeMap<SeriesKey, Gauge>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl RegistryInner {
    fn series(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

/// Names and owns every series. Lookup/creation takes a mutex; record
/// operations on the returned handles do not.
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// Series name every over-cap registration is folded into.
pub const OVERFLOW_SERIES: &str = "obs_series_overflow";

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    debug_assert!(
        !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "invalid metric name {name:?}"
    );
    let mut pairs: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    pairs.sort();
    (name.to_string(), pairs)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Returns the counter for `(name, labels)`, creating it on first
    /// use. Past [`MAX_SERIES`] the shared overflow counter is returned
    /// instead, so a cardinality bug cannot grow memory unboundedly.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if !inner.counters.contains_key(&key) && inner.series() >= MAX_SERIES {
            return inner
                .counters
                .entry(series_key(OVERFLOW_SERIES, &[]))
                .or_insert_with(Counter::new)
                .clone();
        }
        inner
            .counters
            .entry(key)
            .or_insert_with(Counter::new)
            .clone()
    }

    /// Returns the gauge for `(name, labels)`, creating it on first use;
    /// overflow behaves like [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if !inner.gauges.contains_key(&key) && inner.series() >= MAX_SERIES {
            return inner
                .gauges
                .entry(series_key(OVERFLOW_SERIES, &[]))
                .or_insert_with(Gauge::new)
                .clone();
        }
        inner.gauges.entry(key).or_insert_with(Gauge::new).clone()
    }

    /// Returns the histogram for `(name, labels)`, creating it on first
    /// use; overflow behaves like [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = series_key(name, labels);
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if !inner.histograms.contains_key(&key) && inner.series() >= MAX_SERIES {
            return inner
                .histograms
                .entry(series_key(OVERFLOW_SERIES, &[]))
                .or_insert_with(Histogram::new)
                .clone();
        }
        inner
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Number of registered series across all kinds.
    pub fn series_count(&self) -> usize {
        self.inner.lock().expect("obs registry poisoned").series()
    }

    /// Copies every series, sorted by `(name, labels)` within each kind —
    /// a deterministic export order regardless of registration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("obs registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|((name, labels), c)| MetricValue {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: c.value(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((name, labels), g)| MetricValue {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: g.value(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|((name, labels), h)| MetricValue {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: h.snapshot_value(),
                })
                .collect(),
        }
    }

    /// Zeroes every registered series (handles stay valid). Used by
    /// benches to separate workloads and by tests for isolation.
    pub fn reset_values(&self) {
        let inner = self.inner.lock().expect("obs registry poisoned");
        for c in inner.counters.values() {
            for shard in &c.core.shards {
                shard.0.store(0, Ordering::Relaxed);
            }
        }
        for g in inner.gauges.values() {
            g.core.store(0, Ordering::Relaxed);
        }
        for h in inner.histograms.values() {
            for b in &h.core.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.core.count.store(0, Ordering::Relaxed);
            h.core.sum.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording<T>(f: impl FnOnce() -> T) -> T {
        // Tests in this crate run in one process; recording is only ever
        // switched on, so parallel test threads cannot observe a
        // mid-test disable.
        crate::set_enabled(true);
        f()
    }

    #[test]
    fn counter_shards_sum_across_threads() {
        recording(|| {
            let reg = Registry::new();
            let c = reg.counter("threads_total", &[]);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let c = c.clone();
                    s.spawn(move || {
                        for _ in 0..1000 {
                            c.inc();
                        }
                    });
                }
            });
            assert_eq!(c.value(), 8000);
        });
    }

    #[test]
    fn same_key_returns_the_same_series() {
        recording(|| {
            let reg = Registry::new();
            let a = reg.counter("x_total", &[("k", "v"), ("a", "b")]);
            // Label order must not matter.
            let b = reg.counter("x_total", &[("a", "b"), ("k", "v")]);
            a.inc();
            b.add(2);
            assert_eq!(a.value(), 3);
            assert_eq!(reg.series_count(), 1);
        });
    }

    #[test]
    fn gauge_set_and_add() {
        recording(|| {
            let reg = Registry::new();
            let g = reg.gauge("depth", &[]);
            g.set(10);
            g.add(-3);
            assert_eq!(g.value(), 7);
        });
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(2));
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
        recording(|| {
            let reg = Registry::new();
            let h = reg.histogram("lat_ns", &[]);
            for v in [1u64, 3, 3, 100, 1_000_000] {
                h.observe(v);
            }
            let snap = h.snapshot_value();
            assert_eq!(snap.count, 5);
            assert_eq!(snap.sum, 1 + 3 + 3 + 100 + 1_000_000);
            assert_eq!(
                snap.buckets,
                vec![
                    (bucket_index(1), 1),
                    (bucket_index(3), 2),
                    (bucket_index(100), 1),
                    (bucket_index(1_000_000), 1)
                ]
            );
            // Median of 5 lands in the bucket of the two 3s.
            assert_eq!(snap.quantile(0.5), Some(4));
            assert_eq!(
                snap.quantile(1.0),
                Some(bucket_upper_bound(bucket_index(1_000_000)).unwrap())
            );
        });
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        recording(|| {
            let reg = Registry::new();
            reg.counter("b_total", &[]).inc();
            reg.counter("a_total", &[("z", "1")]).inc();
            reg.counter("a_total", &[("a", "1")]).inc();
            let names: Vec<String> = reg
                .snapshot()
                .counters
                .iter()
                .map(|m| format!("{}{:?}", m.name, m.labels))
                .collect();
            let mut sorted = names.clone();
            sorted.sort();
            assert_eq!(names, sorted);
        });
    }

    #[test]
    fn series_cap_routes_to_overflow() {
        recording(|| {
            let reg = Registry::new();
            for i in 0..MAX_SERIES {
                let label = i.to_string();
                reg.counter("cap_total", &[("i", &label)]).inc();
            }
            assert_eq!(reg.series_count(), MAX_SERIES);
            let overflow = reg.counter("cap_total", &[("i", "too_many")]);
            overflow.inc();
            overflow.inc();
            // The overflow handle aliases the shared overflow series.
            assert_eq!(reg.counter(OVERFLOW_SERIES, &[]).value(), 2);
            // One slot over the cap: the overflow series itself.
            assert_eq!(reg.series_count(), MAX_SERIES + 1);
        });
    }

    #[test]
    fn reset_values_keeps_handles_alive() {
        recording(|| {
            let reg = Registry::new();
            let c = reg.counter("r_total", &[]);
            let h = reg.histogram("r_ns", &[]);
            c.add(5);
            h.observe(9);
            reg.reset_values();
            assert_eq!(c.value(), 0);
            assert_eq!(h.count(), 0);
            c.inc();
            assert_eq!(c.value(), 1);
        });
    }
}
