//! Property tests for the SD wire codec: every message round-trips, and
//! arbitrary bytes never panic the decoder.

use excovery_netsim::NodeId;
use excovery_sd::model::{ServiceDescription, ServiceType};
use excovery_sd::SdMessage;
use proptest::prelude::*;

fn text() -> impl Strategy<Value = String> {
    // Includes the codec's separator characters on purpose.
    "[ -~]{0,20}"
}

fn record_strategy() -> impl Strategy<Value = ServiceDescription> {
    (
        text(),
        text(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        prop::collection::vec((text(), text()), 0..4),
    )
        .prop_map(
            |(instance, stype, node, port, ttl, attributes)| ServiceDescription {
                instance,
                stype: ServiceType::new(stype),
                provider: NodeId(node),
                service_port: port,
                attributes,
                ttl_s: ttl,
            },
        )
}

fn message_strategy() -> impl Strategy<Value = SdMessage> {
    prop_oneof![
        (any::<u64>(), text(), prop::collection::vec(text(), 0..4)).prop_map(
            |(qid, stype, known)| SdMessage::Query {
                qid,
                stype: ServiceType::new(stype),
                known
            }
        ),
        (any::<u64>(), prop::collection::vec(record_strategy(), 0..4))
            .prop_map(|(qid, records)| SdMessage::Response { qid, records }),
        record_strategy().prop_map(|record| SdMessage::Announce { record }),
        any::<u16>().prop_map(|n| SdMessage::ScmAdvert { scm: NodeId(n) }),
        (any::<u64>(), record_strategy(), any::<u32>()).prop_map(|(rid, record, lease_s)| {
            SdMessage::Register {
                rid,
                record,
                lease_s,
            }
        }),
        any::<u64>().prop_map(|rid| SdMessage::RegisterAck { rid }),
        (text(), text()).prop_map(|(instance, stype)| SdMessage::Deregister {
            instance,
            stype: ServiceType::new(stype),
        }),
        (any::<u64>(), text()).prop_map(|(qid, stype)| SdMessage::DirectedQuery {
            qid,
            stype: ServiceType::new(stype),
        }),
    ]
}

proptest! {
    /// Encode → decode is the identity for every message shape, including
    /// payloads full of separator characters.
    #[test]
    fn roundtrip(msg in message_strategy()) {
        let bytes = msg.encode();
        let back = SdMessage::decode(&bytes);
        prop_assert_eq!(back, Some(msg));
    }

    /// The decoder is total: arbitrary bytes return None or Some, never
    /// panic (robustness against corrupted packets).
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = SdMessage::decode(&bytes);
    }

    /// Mutating one byte of a valid encoding never panics either.
    #[test]
    fn bitflip_robustness(msg in message_strategy(), pos in any::<prop::sample::Index>(), flip in 1u8..255) {
        let mut bytes = msg.encode();
        if !bytes.is_empty() {
            let i = pos.index(bytes.len());
            bytes[i] ^= flip;
            let _ = SdMessage::decode(&bytes);
        }
    }
}
