//! SD substrate scenario tests beyond the single-discovery happy path:
//! directory failures, concurrent users, registration leases.

use excovery_netsim::filter::{Direction, FilterRule};
use excovery_netsim::link::LinkModel;
use excovery_netsim::sim::{ProtocolEvent, Simulator, SimulatorConfig};
use excovery_netsim::topology::Topology;
use excovery_netsim::{NodeId, SimDuration};
use excovery_sd::{
    sd_command, Role, SdAgent, SdCommand, SdConfig, ServiceDescription, ServiceType, SD_PORT,
};

fn quiet_sim(n: usize, seed: u64) -> Simulator {
    let cfg = SimulatorConfig {
        link_model: LinkModel {
            base_loss: 0.0,
            ..LinkModel::default()
        },
        ..SimulatorConfig::perfect_clocks(seed)
    };
    Simulator::new(Topology::grid(n, 1), cfg)
}

/// A 2×2 grid: SM (node 0) and SU (node 2) are adjacent, the SCM (node 1)
/// is reachable but NOT a relay on their path — so killing the SCM tests
/// the protocol fallback, not a physical partition.
fn square_sim(seed: u64) -> Simulator {
    let cfg = SimulatorConfig {
        link_model: LinkModel {
            base_loss: 0.0,
            ..LinkModel::default()
        },
        ..SimulatorConfig::perfect_clocks(seed)
    };
    Simulator::new(Topology::grid(2, 2), cfg)
}

fn install(sim: &mut Simulator, node: u16, cfg: SdConfig) {
    sim.install_agent(NodeId(node), SD_PORT, Box::new(SdAgent::new(cfg, SD_PORT)));
}

fn http() -> ServiceType {
    ServiceType::new("_http._tcp")
}

fn publish(name: &str, node: u16) -> SdCommand {
    SdCommand::StartPublish(ServiceDescription::new(name, http(), NodeId(node)))
}

fn names_on(evts: &[ProtocolEvent], node: u16) -> Vec<&str> {
    evts.iter()
        .filter(|e| e.node == NodeId(node))
        .map(|e| e.name.as_str())
        .collect()
}

#[test]
fn hybrid_survives_scm_failure() {
    // Hybrid architecture: SCM present first, then partitioned away.
    // Discovery must still succeed over the two-party path.
    let mut sim = square_sim(1);
    for n in 0..4 {
        install(&mut sim, n, SdConfig::hybrid());
    }
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::CacheManager));
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
    sim.run_for(SimDuration::from_secs(2)); // adverts heard, scm_found
    let evts = sim.drain_protocol_events();
    assert!(names_on(&evts, 2).contains(&"scm_found"));

    // SCM dies (radio off) before anything was published.
    sim.install_filter(
        NodeId(1),
        FilterRule::InterfaceDown {
            direction: Direction::Both,
        },
    );
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(5));
    let evts = sim.drain_protocol_events();
    assert!(
        names_on(&evts, 2).contains(&"sd_service_add"),
        "hybrid must fall back to multicast: {evts:?}"
    );
}

#[test]
fn pure_three_party_is_defeated_by_scm_failure() {
    // The contrast case: without the multicast fallback, losing the SCM
    // kills discovery — the centralization trade-off of Fig. 2.
    let mut sim = square_sim(2);
    for n in 0..4 {
        install(&mut sim, n, SdConfig::three_party());
    }
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::CacheManager));
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
    sim.run_for(SimDuration::from_secs(2));
    sim.install_filter(
        NodeId(1),
        FilterRule::InterfaceDown {
            direction: Direction::Both,
        },
    );
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(10));
    let evts = sim.drain_protocol_events();
    assert!(
        !names_on(&evts, 2).contains(&"sd_service_add"),
        "three-party without SCM must fail: {evts:?}"
    );
}

#[test]
fn multiple_sus_discover_concurrently() {
    let mut sim = quiet_sim(5, 3);
    for n in 0..5 {
        install(&mut sim, n, SdConfig::two_party());
    }
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    for n in 1..5 {
        sd_command(&mut sim, NodeId(n), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(n), SdCommand::StartSearch(http()));
    }
    sim.run_for(SimDuration::from_secs(5));
    let evts = sim.drain_protocol_events();
    for n in 1..5 {
        assert!(
            names_on(&evts, n).contains(&"sd_service_add"),
            "SU on node {n} must discover: {evts:?}"
        );
    }
}

#[test]
fn one_su_discovers_multiple_sms_of_same_type() {
    let mut sim = quiet_sim(4, 4);
    for n in 0..4 {
        install(&mut sim, n, SdConfig::two_party());
    }
    for n in [0u16, 1, 2] {
        sd_command(&mut sim, NodeId(n), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(n), publish(&format!("sm-{n}"), n));
    }
    sd_command(&mut sim, NodeId(3), SdCommand::Init(Role::ServiceUser));
    sd_command(&mut sim, NodeId(3), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(5));
    let evts = sim.drain_protocol_events();
    let found: std::collections::HashSet<&str> = evts
        .iter()
        .filter(|e| e.node == NodeId(3) && e.name == "sd_service_add")
        .filter_map(|e| e.params.iter().find(|(k, _)| k == "service"))
        .map(|(_, v)| v.as_str())
        .collect();
    assert_eq!(found.len(), 3, "all three SMs found: {found:?}");
}

#[test]
fn scm_registration_refresh_outlives_short_lease() {
    // A short registration lease must be refreshed by the SM so the SU
    // still finds the service long after the first lease expired.
    let mut sim = quiet_sim(3, 5);
    let cfg = SdConfig {
        registration_lease: SimDuration::from_secs(4),
        ..SdConfig::three_party()
    };
    for n in 0..3 {
        install(&mut sim, n, cfg.clone());
    }
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::CacheManager));
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
    sim.run_for(SimDuration::from_secs(2));
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    // Wait three lease periods, then search.
    sim.run_for(SimDuration::from_secs(12));
    let _ = sim.drain_protocol_events();
    sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(3));
    let evts = sim.drain_protocol_events();
    assert!(
        names_on(&evts, 2).contains(&"sd_service_add"),
        "lease must have been refreshed: {evts:?}"
    );
}

#[test]
fn scm_drops_unrefreshed_registration_after_sm_dies() {
    let mut sim = quiet_sim(3, 6);
    let cfg = SdConfig {
        registration_lease: SimDuration::from_secs(3),
        ..SdConfig::three_party()
    };
    for n in 0..3 {
        install(&mut sim, n, cfg.clone());
    }
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::CacheManager));
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
    sim.run_for(SimDuration::from_secs(2));
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    sim.run_for(SimDuration::from_secs(1));
    // SM dies silently; its lease expires at the SCM.
    sim.set_drop_all(NodeId(0), true);
    sim.run_for(SimDuration::from_secs(10));
    let _ = sim.drain_protocol_events();
    sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(5));
    let evts = sim.drain_protocol_events();
    assert!(
        !names_on(&evts, 2).contains(&"sd_service_add"),
        "expired registration must not be served: {evts:?}"
    );
}

#[test]
fn restart_after_exit_works() {
    let mut sim = quiet_sim(2, 7);
    install(&mut sim, 0, SdConfig::two_party());
    install(&mut sim, 1, SdConfig::two_party());
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(3));
    // Full exit on both sides.
    sd_command(&mut sim, NodeId(0), SdCommand::Exit);
    sd_command(&mut sim, NodeId(1), SdCommand::Exit);
    sim.run_for(SimDuration::from_secs(1));
    let _ = sim.drain_protocol_events();
    // Re-init and re-discover: no stale state may interfere.
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
    sd_command(&mut sim, NodeId(0), publish("sm-A2", 0));
    sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(5));
    let evts = sim.drain_protocol_events();
    let add = evts
        .iter()
        .find(|e| e.node == NodeId(1) && e.name == "sd_service_add")
        .expect("re-discovery after exit");
    assert!(add
        .params
        .iter()
        .any(|(k, v)| k == "service" && v == "sm-A2"));
}

#[test]
fn probing_delays_announcements_but_discovery_succeeds() {
    let mut sim = quiet_sim(2, 8);
    let cfg = SdConfig {
        probe_before_announce: true,
        ..SdConfig::two_party()
    };
    install(&mut sim, 0, cfg.clone());
    install(&mut sim, 1, cfg);
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
    // During the probe window (3 probes × 250 ms) the SM must not answer
    // queries or announce.
    sim.run_for(SimDuration::from_millis(400));
    let evts = sim.drain_protocol_events();
    assert!(
        !names_on(&evts, 1).contains(&"sd_service_add"),
        "name not established yet: {evts:?}"
    );
    sim.run_for(SimDuration::from_secs(3));
    let evts = sim.drain_protocol_events();
    assert!(names_on(&evts, 1).contains(&"sd_service_add"), "{evts:?}");
}

#[test]
fn name_conflict_is_resolved_by_renaming_one_side() {
    let mut sim = quiet_sim(3, 9);
    let cfg = SdConfig {
        probe_before_announce: true,
        ..SdConfig::two_party()
    };
    for n in 0..3 {
        install(&mut sim, n, cfg.clone());
    }
    // Two SMs claim the same instance name for the same type.
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
    sd_command(&mut sim, NodeId(0), publish("printer", 0));
    sd_command(&mut sim, NodeId(1), publish("printer", 1));
    sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_secs(10));
    let evts = sim.drain_protocol_events();
    // Exactly one conflict event fired.
    let conflicts: Vec<_> = evts
        .iter()
        .filter(|e| e.name == "sd_name_conflict")
        .collect();
    assert_eq!(conflicts.len(), 1, "{conflicts:?}");
    // The SU discovered two distinct instance names.
    let found: std::collections::HashSet<&str> = evts
        .iter()
        .filter(|e| e.node == NodeId(2) && e.name == "sd_service_add")
        .filter_map(|e| e.params.iter().find(|(k, _)| k == "service"))
        .map(|(_, v)| v.as_str())
        .collect();
    assert_eq!(
        found.len(),
        2,
        "two distinct services after renaming: {found:?}"
    );
    assert!(
        found.contains("printer"),
        "the winner keeps the name: {found:?}"
    );
    assert!(
        found.iter().any(|n| n.starts_with("printer-")),
        "the loser renamed: {found:?}"
    );
}

#[test]
fn probing_disabled_keeps_original_latency() {
    // Default config: announcement at ~50 ms, unchanged by the probing code.
    let mut sim = quiet_sim(2, 10);
    install(&mut sim, 0, SdConfig::two_party());
    install(&mut sim, 1, SdConfig::two_party());
    sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
    sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
    sd_command(&mut sim, NodeId(0), publish("sm-A", 0));
    sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
    sim.run_for(SimDuration::from_millis(200));
    let evts = sim.drain_protocol_events();
    assert!(names_on(&evts, 1).contains(&"sd_service_add"), "{evts:?}");
}
