//! The SD protocol agent.
//!
//! One [`SdAgent`] per participating node implements both the two-party
//! (mDNS-like) and three-party (SLP-like) protocol behaviour, selected by
//! [`crate::model::Architecture`]. The agent surfaces exactly the events of
//! the paper's §V through the simulator's protocol-event stream:
//! `sd_init_done`, `sd_exit_done`, `sd_start_search`, `sd_stop_search`,
//! `sd_service_add`, `sd_service_del`, `sd_service_upd`,
//! `sd_start_publish`, `sd_stop_publish`, `scm_started`, `scm_found`,
//! `scm_registration_add`, `scm_registration_del`, `scm_registration_upd`.

use crate::cache::{CacheChange, ServiceCache};
use crate::model::{Architecture, Role, SdConfig, ServiceDescription, ServiceType};
use crate::wire::SdMessage;
use excovery_netsim::{
    Agent, AgentCtx, Destination, EventParams, NodeId, Packet, Port, SimDuration,
};
use rand::Rng;
use std::collections::HashMap;

/// Counters of protocol activity (for tests and the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdStats {
    /// Multicast queries sent.
    pub queries_sent: u64,
    /// Directed (unicast) queries sent.
    pub directed_queries_sent: u64,
    /// Responses sent.
    pub responses_sent: u64,
    /// Responses suppressed by the known-answer rule.
    pub suppressed_responses: u64,
    /// Unsolicited announcements sent (including goodbyes).
    pub announces_sent: u64,
    /// Registrations sent (including retries).
    pub registrations_sent: u64,
    /// Probes sent while establishing a name.
    pub probes_sent: u64,
    /// Name conflicts detected (and resolved by renaming).
    pub name_conflicts: u64,
}

#[derive(Debug, Clone)]
struct Publication {
    desc: ServiceDescription,
    announces_left: u32,
    next_interval: SimDuration,
    registered: bool,
    /// Probes still to send before announcing (RFC 6762-style); 0 when
    /// the name is established.
    probes_left: u32,
}

#[derive(Debug, Clone)]
struct Search {
    current_interval: SimDuration,
}

#[derive(Debug, Clone)]
enum TimerPurpose {
    Announce(ServiceType),
    QueryRetry(ServiceType),
    ResponseJitter {
        qid: u64,
        to: Option<NodeId>,
        records: Vec<ServiceDescription>,
    },
    Probe(ServiceType),
    CacheExpiry,
    ScmAdvert,
    RegRetry(u64),
    RegRefresh(ServiceType),
}

#[derive(Debug, Clone)]
struct PendingReg {
    stype: ServiceType,
}

/// The service-discovery agent; install on a node's SD port.
pub struct SdAgent {
    cfg: SdConfig,
    role: Option<Role>,
    publications: HashMap<ServiceType, Publication>,
    searches: HashMap<ServiceType, Search>,
    cache: ServiceCache,
    registry: ServiceCache,
    scm_known: Option<NodeId>,
    pending_regs: HashMap<u64, PendingReg>,
    next_qid: u64,
    next_rid: u64,
    next_timer_token: u64,
    timers: HashMap<u64, TimerPurpose>,
    port: Port,
    stats: SdStats,
}

impl SdAgent {
    /// Creates an agent with the given protocol configuration, bound to
    /// `port` (usually [`crate::SD_PORT`]).
    pub fn new(cfg: SdConfig, port: Port) -> Self {
        Self {
            cfg,
            role: None,
            publications: HashMap::new(),
            searches: HashMap::new(),
            cache: ServiceCache::new(),
            registry: ServiceCache::new(),
            scm_known: None,
            pending_regs: HashMap::new(),
            next_qid: 1,
            next_rid: 1,
            next_timer_token: 1,
            timers: HashMap::new(),
            port,
            stats: SdStats::default(),
        }
    }

    /// Current role, if initialized.
    pub fn role(&self) -> Option<Role> {
        self.role
    }

    /// Protocol statistics so far.
    pub fn stats(&self) -> SdStats {
        self.stats
    }

    /// The SCM this agent currently uses, if any.
    pub fn known_scm(&self) -> Option<NodeId> {
        self.scm_known
    }

    /// Live records this agent has cached for a service type.
    pub fn cached(&self, stype: &ServiceType, ctx: &AgentCtx) -> Vec<ServiceDescription> {
        self.cache
            .lookup(stype, ctx.now())
            .into_iter()
            .cloned()
            .collect()
    }

    fn arm(&mut self, ctx: &mut AgentCtx, delay: SimDuration, purpose: TimerPurpose) -> u64 {
        let token = self.next_timer_token;
        self.next_timer_token += 1;
        self.timers.insert(token, purpose);
        ctx.set_timer(delay, token);
        token
    }

    fn uses_multicast(&self) -> bool {
        matches!(
            self.cfg.architecture,
            Architecture::TwoParty | Architecture::Hybrid
        )
    }

    fn uses_directory(&self) -> bool {
        matches!(
            self.cfg.architecture,
            Architecture::ThreeParty | Architecture::Hybrid
        )
    }

    // ---- SD actions (paper §V) -------------------------------------------

    /// `Init SD`: establishes the node's role; SCMs announce themselves.
    /// Emits `scm_started` (SCM) and `sd_init_done`.
    pub fn sd_init(&mut self, ctx: &mut AgentCtx, role: Role) {
        self.role = Some(role);
        if role == Role::CacheManager {
            ctx.emit("scm_started", EventParams::new());
            self.send_scm_advert(ctx);
            self.arm(ctx, self.cfg.scm_advert_interval, TimerPurpose::ScmAdvert);
        }
        ctx.emit("sd_init_done", [("role", role.as_str())]);
    }

    /// `Exit SD`: stops the role, all searches and publications; emits
    /// `sd_exit_done`. The node must re-init to participate again.
    pub fn sd_exit(&mut self, ctx: &mut AgentCtx) {
        let published: Vec<ServiceType> = self.publications.keys().cloned().collect();
        for st in published {
            self.stop_publish(ctx, &st);
        }
        let searches: Vec<ServiceType> = self.searches.keys().cloned().collect();
        for st in searches {
            self.stop_search(ctx, &st);
        }
        // Drop timers by forgetting their purposes; stale fires are ignored.
        self.timers.clear();
        self.role = None;
        self.scm_known = None;
        self.cache.clear();
        self.registry.clear();
        self.pending_regs.clear();
        ctx.emit("sd_exit_done", EventParams::new());
    }

    /// `Start searching`: begins a continuous discovery for `stype`.
    /// Emits `sd_start_search`, then `sd_service_add` per discovery.
    pub fn start_search(&mut self, ctx: &mut AgentCtx, stype: ServiceType) {
        ctx.emit("sd_start_search", [("stype", stype.0.clone())]);
        // Passively cached records count as discovered immediately.
        let already: Vec<ServiceDescription> = self
            .cache
            .lookup(&stype, ctx.now())
            .into_iter()
            .cloned()
            .collect();
        for d in already {
            self.emit_service_event(ctx, "sd_service_add", &d);
        }
        self.searches.insert(
            stype.clone(),
            Search {
                current_interval: self.cfg.query_interval,
            },
        );
        self.arm(
            ctx,
            self.cfg.first_query_delay,
            TimerPurpose::QueryRetry(stype),
        );
    }

    /// `Stop searching`. Emits `sd_stop_search`.
    pub fn stop_search(&mut self, ctx: &mut AgentCtx, stype: &ServiceType) {
        if self.searches.remove(stype).is_some() {
            self.timers
                .retain(|_, p| !matches!(p, TimerPurpose::QueryRetry(st) if st == stype));
            ctx.emit("sd_stop_search", [("stype", stype.0.clone())]);
        }
    }

    /// `Start publishing`: publishes a service instance. Emits
    /// `sd_start_publish`.
    pub fn start_publish(&mut self, ctx: &mut AgentCtx, desc: ServiceDescription) {
        ctx.emit(
            "sd_start_publish",
            [
                ("service", desc.instance.clone()),
                ("stype", desc.stype.0.clone()),
            ],
        );
        let stype = desc.stype.clone();
        let probing = self.cfg.probe_before_announce && self.uses_multicast();
        self.publications.insert(
            stype.clone(),
            Publication {
                desc,
                announces_left: self.cfg.announce_count,
                next_interval: self.cfg.announce_interval,
                registered: false,
                probes_left: if probing { self.cfg.probe_count } else { 0 },
            },
        );
        if self.uses_multicast() {
            if probing {
                // Establish name uniqueness before announcing.
                self.arm(ctx, SimDuration::ZERO, TimerPurpose::Probe(stype.clone()));
            } else {
                self.arm(
                    ctx,
                    self.cfg.first_announce_delay,
                    TimerPurpose::Announce(stype.clone()),
                );
            }
        }
        if self.uses_directory() && self.scm_known.is_some() {
            self.register_publication(ctx, &stype);
        }
    }

    /// `Stop publishing`: gracefully stops, sending goodbye announcements
    /// and SCM deregistrations. Emits `sd_stop_publish`.
    pub fn stop_publish(&mut self, ctx: &mut AgentCtx, stype: &ServiceType) {
        let Some(publication) = self.publications.remove(stype) else {
            return;
        };
        if self.uses_multicast() {
            let goodbye = SdMessage::Announce {
                record: publication.desc.goodbye(),
            };
            ctx.send(Destination::Multicast, self.port, goodbye.encode());
            self.stats.announces_sent += 1;
        }
        if let (true, Some(scm)) = (self.uses_directory(), self.scm_known) {
            let msg = SdMessage::Deregister {
                instance: publication.desc.instance.clone(),
                stype: stype.clone(),
            };
            ctx.send(Destination::Unicast(scm), self.port, msg.encode());
        }
        self.timers.retain(|_, p| {
            !matches!(p, TimerPurpose::Announce(st) | TimerPurpose::RegRefresh(st) if st == stype)
        });
        ctx.emit(
            "sd_stop_publish",
            [
                ("service", publication.desc.instance.clone()),
                ("stype", stype.0.clone()),
            ],
        );
    }

    /// `Update publication`: changes a published description. Emits
    /// `sd_service_upd` *before* the update is executed (paper §V).
    pub fn update_publication(&mut self, ctx: &mut AgentCtx, desc: ServiceDescription) {
        ctx.emit(
            "sd_service_upd",
            [
                ("service", desc.instance.clone()),
                ("stype", desc.stype.0.clone()),
            ],
        );
        let stype = desc.stype.clone();
        if let Some(p) = self.publications.get_mut(&stype) {
            p.desc = desc;
            p.announces_left = self.cfg.announce_count;
            p.next_interval = self.cfg.announce_interval;
            p.registered = false;
        } else {
            return;
        }
        if self.uses_multicast() {
            self.arm(
                ctx,
                SimDuration::ZERO,
                TimerPurpose::Announce(stype.clone()),
            );
        }
        if self.uses_directory() && self.scm_known.is_some() {
            self.register_publication(ctx, &stype);
        }
    }

    // ---- internals --------------------------------------------------------

    fn emit_service_event(&self, ctx: &mut AgentCtx, name: &'static str, d: &ServiceDescription) {
        ctx.emit(
            name,
            [
                ("service", d.instance.clone()),
                ("stype", d.stype.0.clone()),
                ("provider", d.provider.to_string()),
            ],
        );
    }

    fn send_scm_advert(&mut self, ctx: &mut AgentCtx) {
        let msg = SdMessage::ScmAdvert { scm: ctx.node() };
        ctx.send(Destination::Multicast, self.port, msg.encode());
    }

    fn send_query(&mut self, ctx: &mut AgentCtx, stype: &ServiceType) {
        if self.uses_multicast() {
            let qid = self.alloc_qid(ctx);
            let known = if self.cfg.known_answer_suppression {
                self.cache.known_answers(stype, ctx.now())
            } else {
                Vec::new()
            };
            let msg = SdMessage::Query {
                qid,
                stype: stype.clone(),
                known,
            };
            ctx.send(Destination::Multicast, self.port, msg.encode());
            self.stats.queries_sent += 1;
        }
        if let (true, Some(scm)) = (self.uses_directory(), self.scm_known) {
            let qid = self.alloc_qid(ctx);
            let msg = SdMessage::DirectedQuery {
                qid,
                stype: stype.clone(),
            };
            ctx.send(Destination::Unicast(scm), self.port, msg.encode());
            self.stats.directed_queries_sent += 1;
        }
    }

    fn alloc_qid(&mut self, ctx: &AgentCtx) -> u64 {
        let qid = (u64::from(ctx.node().0) << 32) | self.next_qid;
        self.next_qid += 1;
        qid
    }

    fn register_publication(&mut self, ctx: &mut AgentCtx, stype: &ServiceType) {
        let Some(scm) = self.scm_known else { return };
        let Some(p) = self.publications.get(stype) else {
            return;
        };
        let rid = self.next_rid;
        self.next_rid += 1;
        let lease_s = (self.cfg.registration_lease.as_millis() / 1000).max(1) as u32;
        let msg = SdMessage::Register {
            rid,
            record: p.desc.clone(),
            lease_s,
        };
        ctx.send(Destination::Unicast(scm), self.port, msg.encode());
        self.stats.registrations_sent += 1;
        self.pending_regs.insert(
            rid,
            PendingReg {
                stype: stype.clone(),
            },
        );
        self.arm(
            ctx,
            self.cfg.registration_retry,
            TimerPurpose::RegRetry(rid),
        );
    }

    fn rearm_cache_expiry(&mut self, ctx: &mut AgentCtx) {
        if let Some(next) = self.cache.next_expiry() {
            let delay = next.saturating_since(ctx.now()) + SimDuration::from_millis(1);
            self.arm(ctx, delay, TimerPurpose::CacheExpiry);
        }
    }

    /// Detects a name conflict: another provider claims an instance name
    /// we are publishing. Resolves by renaming (mDNS appends a counter),
    /// emitting `sd_name_conflict`, and restarting the establish cycle.
    fn check_name_conflict(&mut self, ctx: &mut AgentCtx, record: &ServiceDescription) {
        if record.is_goodbye() || record.provider == ctx.node() {
            return;
        }
        let Some(p) = self.publications.get_mut(&record.stype) else {
            return;
        };
        if p.desc.instance != record.instance || p.desc.provider == record.provider {
            return;
        }
        // Tie-break: the lexicographically greater (instance, node) yields
        // — deterministic, so exactly one side renames.
        let ours = (p.desc.instance.clone(), ctx.node().0);
        let theirs = (record.instance.clone(), record.provider.0);
        if ours < theirs {
            return; // we keep the name; the other side renames
        }
        let old = p.desc.instance.clone();
        let new = format!("{old}-{}", ctx.node().0 + 2);
        let announce_count = self.cfg.announce_count;
        let announce_interval = self.cfg.announce_interval;
        let probing = matches!(
            self.cfg.architecture,
            crate::model::Architecture::TwoParty | crate::model::Architecture::Hybrid
        ) && self.cfg.probe_before_announce;
        let probe_count = self.cfg.probe_count;
        p.desc.instance = new.clone();
        p.announces_left = announce_count;
        p.next_interval = announce_interval;
        p.registered = false;
        p.probes_left = if probing { probe_count } else { 0 };
        self.stats.name_conflicts += 1;
        let stype = record.stype.clone();
        ctx.emit(
            "sd_name_conflict",
            [("old", old), ("new", new), ("stype", stype.0.clone())],
        );
        if self.uses_multicast() {
            if probing {
                self.arm(ctx, SimDuration::ZERO, TimerPurpose::Probe(stype));
            } else {
                self.arm(
                    ctx,
                    self.cfg.first_announce_delay,
                    TimerPurpose::Announce(stype),
                );
            }
        }
    }

    fn absorb_records(&mut self, ctx: &mut AgentCtx, records: &[ServiceDescription]) {
        for r in records {
            self.check_name_conflict(ctx, r);
        }
        for r in records {
            let change = self.cache.merge(r, ctx.now());
            if self.searches.contains_key(&r.stype) {
                match change {
                    CacheChange::Added => self.emit_service_event(ctx, "sd_service_add", r),
                    CacheChange::Updated => self.emit_service_event(ctx, "sd_service_upd", r),
                    CacheChange::Removed => self.emit_service_event(ctx, "sd_service_del", r),
                    CacheChange::Refreshed | CacheChange::Ignored => {}
                }
            }
        }
        self.rearm_cache_expiry(ctx);
    }

    fn handle_query(
        &mut self,
        ctx: &mut AgentCtx,
        qid: u64,
        stype: &ServiceType,
        known: &[String],
    ) {
        // Only publishing SMs answer multicast queries; SCMs answer only
        // directed queries (three-party discovery is directed by design).
        let Some(p) = self.publications.get(stype) else {
            return;
        };
        if p.probes_left > 0 {
            return; // name not established yet (probing phase)
        }
        if self.cfg.known_answer_suppression && known.contains(&p.desc.instance) {
            self.stats.suppressed_responses += 1;
            return;
        }
        // Response jitter avoids synchronized responder collisions.
        let jitter_ns = if self.cfg.response_jitter_max > SimDuration::ZERO {
            ctx.rng()
                .gen_range(0..=self.cfg.response_jitter_max.as_nanos())
        } else {
            0
        };
        let records = vec![p.desc.clone()];
        self.arm(
            ctx,
            SimDuration::from_nanos(jitter_ns),
            TimerPurpose::ResponseJitter {
                qid,
                to: None,
                records,
            },
        );
    }

    fn handle_directed_query(
        &mut self,
        ctx: &mut AgentCtx,
        qid: u64,
        stype: &ServiceType,
        from: NodeId,
    ) {
        if self.role != Some(Role::CacheManager) {
            return;
        }
        let records: Vec<ServiceDescription> = self
            .registry
            .lookup(stype, ctx.now())
            .into_iter()
            .cloned()
            .collect();
        let msg = SdMessage::Response { qid, records };
        ctx.send(Destination::Unicast(from), self.port, msg.encode());
        self.stats.responses_sent += 1;
    }

    fn handle_register(
        &mut self,
        ctx: &mut AgentCtx,
        rid: u64,
        record: &ServiceDescription,
        lease_s: u32,
        from: NodeId,
    ) {
        if self.role != Some(Role::CacheManager) {
            return;
        }
        let mut leased = record.clone();
        leased.ttl_s = lease_s;
        let change = self.registry.merge(&leased, ctx.now());
        let event = match change {
            CacheChange::Added => Some("scm_registration_add"),
            CacheChange::Updated => Some("scm_registration_upd"),
            _ => None,
        };
        if let Some(name) = event {
            ctx.emit(
                name,
                [
                    ("service", record.instance.clone()),
                    ("registrant", from.to_string()),
                ],
            );
        }
        ctx.send(
            Destination::Unicast(from),
            self.port,
            SdMessage::RegisterAck { rid }.encode(),
        );
    }

    fn handle_deregister(&mut self, ctx: &mut AgentCtx, instance: &str, stype: &ServiceType) {
        if self.role != Some(Role::CacheManager) {
            return;
        }
        let mut goodbye = ServiceDescription::new(instance.to_string(), stype.clone(), NodeId(0));
        goodbye.ttl_s = 0;
        if self
            .registry
            .merge(&goodbye, excovery_netsim::SimTime::ZERO)
            == CacheChange::Removed
        {
            ctx.emit("scm_registration_del", [("service", instance.to_string())]);
        }
    }

    fn handle_scm_advert(&mut self, ctx: &mut AgentCtx, scm: NodeId) {
        if self.role == Some(Role::CacheManager) || !self.uses_directory() {
            return;
        }
        if self.scm_known.is_none() {
            self.scm_known = Some(scm);
            ctx.emit("scm_found", [("scm", scm.to_string())]);
            // Register any publications now that a directory exists.
            let stypes: Vec<ServiceType> = self
                .publications
                .iter()
                .filter(|(_, p)| !p.registered)
                .map(|(st, _)| st.clone())
                .collect();
            for st in stypes {
                self.register_publication(ctx, &st);
            }
            // Fire directed queries for ongoing searches immediately.
            let searching: Vec<ServiceType> = self.searches.keys().cloned().collect();
            for st in searching {
                let qid = self.alloc_qid(ctx);
                let msg = SdMessage::DirectedQuery { qid, stype: st };
                ctx.send(Destination::Unicast(scm), self.port, msg.encode());
                self.stats.directed_queries_sent += 1;
            }
        }
    }
}

impl Agent for SdAgent {
    fn on_packet(&mut self, ctx: &mut AgentCtx, pkt: &Packet) {
        let Some(msg) = SdMessage::decode(pkt.payload.as_bytes()) else {
            return; // garbage is dropped, as a real stack would
        };
        match msg {
            SdMessage::Query { qid, stype, known } => self.handle_query(ctx, qid, &stype, &known),
            SdMessage::Response { qid: _, records } => self.absorb_records(ctx, &records),
            SdMessage::Announce { record } => self.absorb_records(ctx, &[record]),
            SdMessage::ScmAdvert { scm } => self.handle_scm_advert(ctx, scm),
            SdMessage::Register {
                rid,
                record,
                lease_s,
            } => self.handle_register(ctx, rid, &record, lease_s, pkt.src),
            SdMessage::RegisterAck { rid } => {
                if let Some(pending) = self.pending_regs.remove(&rid) {
                    if let Some(p) = self.publications.get_mut(&pending.stype) {
                        p.registered = true;
                    }
                    // Refresh before the lease expires.
                    let refresh = self.cfg.registration_lease.mul_f64(0.5);
                    self.arm(ctx, refresh, TimerPurpose::RegRefresh(pending.stype));
                }
            }
            SdMessage::Deregister { instance, stype } => {
                self.handle_deregister(ctx, &instance, &stype)
            }
            SdMessage::DirectedQuery { qid, stype } => {
                self.handle_directed_query(ctx, qid, &stype, pkt.src)
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx, token: u64) {
        let Some(purpose) = self.timers.remove(&token) else {
            return; // cancelled or superseded
        };
        match purpose {
            TimerPurpose::Announce(stype) => {
                let Some(p) = self.publications.get_mut(&stype) else {
                    return;
                };
                if p.announces_left == 0 {
                    return;
                }
                p.announces_left -= 1;
                let record = p.desc.clone();
                let interval = p.next_interval;
                p.next_interval = p.next_interval.mul_f64(2.0);
                let more = p.announces_left > 0;
                ctx.send(
                    Destination::Multicast,
                    self.port,
                    SdMessage::Announce { record }.encode(),
                );
                self.stats.announces_sent += 1;
                if more {
                    self.arm(ctx, interval, TimerPurpose::Announce(stype));
                }
            }
            TimerPurpose::QueryRetry(stype) => {
                if !self.searches.contains_key(&stype) {
                    return;
                }
                self.send_query(ctx, &stype);
                let s = self.searches.get_mut(&stype).unwrap();
                let interval = s.current_interval;
                let next = s.current_interval.mul_f64(self.cfg.query_backoff);
                s.current_interval = next.min(self.cfg.max_query_interval);
                self.arm(ctx, interval, TimerPurpose::QueryRetry(stype));
            }
            TimerPurpose::ResponseJitter { qid, to, records } => {
                let dst = match to {
                    Some(node) => Destination::Unicast(node),
                    None => Destination::Multicast,
                };
                ctx.send(
                    dst,
                    self.port,
                    SdMessage::Response { qid, records }.encode(),
                );
                self.stats.responses_sent += 1;
            }
            TimerPurpose::Probe(stype) => {
                let Some(p) = self.publications.get_mut(&stype) else {
                    return;
                };
                if p.probes_left == 0 {
                    return; // superseded (e.g. renamed meanwhile)
                }
                p.probes_left -= 1;
                let remaining = p.probes_left;
                let qid = self.alloc_qid(ctx);
                let msg = SdMessage::Query {
                    qid,
                    stype: stype.clone(),
                    known: Vec::new(),
                };
                ctx.send(Destination::Multicast, self.port, msg.encode());
                self.stats.probes_sent += 1;
                if remaining > 0 {
                    self.arm(ctx, self.cfg.probe_interval, TimerPurpose::Probe(stype));
                } else {
                    // Name won: start the announcement schedule.
                    self.arm(
                        ctx,
                        self.cfg.first_announce_delay,
                        TimerPurpose::Announce(stype),
                    );
                }
            }
            TimerPurpose::CacheExpiry => {
                let lapsed = self.cache.expire(ctx.now());
                for d in lapsed {
                    if self.searches.contains_key(&d.stype) {
                        self.emit_service_event(ctx, "sd_service_del", &d);
                    }
                }
                self.rearm_cache_expiry(ctx);
            }
            TimerPurpose::ScmAdvert => {
                if self.role == Some(Role::CacheManager) {
                    self.send_scm_advert(ctx);
                    self.arm(ctx, self.cfg.scm_advert_interval, TimerPurpose::ScmAdvert);
                }
            }
            TimerPurpose::RegRetry(rid) => {
                if let Some(pending) = self.pending_regs.remove(&rid) {
                    // Not acked in time: re-register from scratch.
                    self.register_publication(ctx, &pending.stype);
                }
            }
            TimerPurpose::RegRefresh(stype) => {
                if self.publications.contains_key(&stype) {
                    self.register_publication(ctx, &stype);
                }
            }
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{sd_command, SdCommand};
    use crate::SD_PORT;
    use excovery_netsim::link::LinkModel;
    use excovery_netsim::sim::{ProtocolEvent, Simulator, SimulatorConfig};
    use excovery_netsim::topology::Topology;
    use excovery_netsim::SimTime;

    fn quiet_sim(n: usize, seed: u64) -> Simulator {
        let cfg = SimulatorConfig {
            link_model: LinkModel {
                base_loss: 0.0,
                ..LinkModel::default()
            },
            ..SimulatorConfig::perfect_clocks(seed)
        };
        Simulator::new(Topology::chain(n), cfg)
    }

    fn install(sim: &mut Simulator, node: u16, cfg: SdConfig) {
        sim.install_agent(NodeId(node), SD_PORT, Box::new(SdAgent::new(cfg, SD_PORT)));
    }

    fn events(sim: &mut Simulator) -> Vec<ProtocolEvent> {
        sim.drain_protocol_events()
    }

    fn names_on(evts: &[ProtocolEvent], node: u16) -> Vec<&str> {
        evts.iter()
            .filter(|e| e.node == NodeId(node))
            .map(|e| e.name.as_str())
            .collect()
    }

    fn http() -> ServiceType {
        ServiceType::new("_http._tcp")
    }

    fn publish_cmd(instance: &str, node: u16) -> SdCommand {
        SdCommand::StartPublish(ServiceDescription::new(instance, http(), NodeId(node)))
    }

    #[test]
    fn two_party_one_shot_discovery() {
        let mut sim = quiet_sim(2, 1);
        install(&mut sim, 0, SdConfig::two_party());
        install(&mut sim, 1, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(5));
        let evts = events(&mut sim);
        let su = names_on(&evts, 1);
        assert!(su.contains(&"sd_init_done"), "{su:?}");
        assert!(su.contains(&"sd_start_search"));
        assert!(su.contains(&"sd_service_add"), "{su:?}");
        let add = evts
            .iter()
            .find(|e| e.name == "sd_service_add" && e.node == NodeId(1))
            .unwrap();
        assert!(add
            .params
            .iter()
            .any(|(k, v)| k == "service" && v == "sm-A"));
    }

    #[test]
    fn discovery_time_is_subsecond_when_idle() {
        let mut sim = quiet_sim(2, 2);
        install(&mut sim, 0, SdConfig::two_party());
        install(&mut sim, 1, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        // Let announcements settle, then search.
        sim.run_for(SimDuration::from_secs(10));
        let _ = events(&mut sim);
        let search_start = sim.now();
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(2));
        let evts = events(&mut sim);
        let add = evts
            .iter()
            .find(|e| e.name == "sd_service_add")
            .expect("discovered");
        let t_r = add.local_time.saturating_since(SimTime::ZERO).as_nanos() as i64
            - search_start.as_nanos() as i64;
        assert!(t_r >= 0, "clock is perfect, local == reference");
        assert!(
            t_r < 1_000_000_000,
            "t_R = {t_r} ns, expected < 1 s when idle"
        );
    }

    #[test]
    fn passive_discovery_from_cached_announcement() {
        let mut sim = quiet_sim(2, 3);
        install(&mut sim, 0, SdConfig::two_party());
        install(&mut sim, 1, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        sim.run_for(SimDuration::from_secs(5)); // announcements heard passively
        let _ = events(&mut sim);
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        // No simulated time passes: the cached record is reported at once.
        let evts = events(&mut sim);
        assert!(names_on(&evts, 1).contains(&"sd_service_add"), "{evts:?}");
    }

    #[test]
    fn goodbye_triggers_service_del() {
        let mut sim = quiet_sim(2, 4);
        install(&mut sim, 0, SdConfig::two_party());
        install(&mut sim, 1, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(3));
        let _ = events(&mut sim);
        sd_command(&mut sim, NodeId(0), SdCommand::StopPublish(http()));
        sim.run_for(SimDuration::from_secs(1));
        let evts = events(&mut sim);
        assert!(names_on(&evts, 0).contains(&"sd_stop_publish"));
        assert!(names_on(&evts, 1).contains(&"sd_service_del"), "{evts:?}");
    }

    #[test]
    fn ttl_expiry_triggers_service_del() {
        let mut sim = quiet_sim(2, 5);
        let cfg = SdConfig {
            announce_count: 1,
            ..SdConfig::two_party()
        };
        install(&mut sim, 0, cfg.clone());
        install(&mut sim, 1, cfg);
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        let mut desc = ServiceDescription::new("sm-A", http(), NodeId(0));
        desc.ttl_s = 2; // short-lived record
        sd_command(&mut sim, NodeId(0), SdCommand::StartPublish(desc));
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(1));
        // Kill the SM silently (no goodbye): partition it.
        sim.set_drop_all(NodeId(0), true);
        sim.run_for(SimDuration::from_secs(5));
        let evts = events(&mut sim);
        assert!(names_on(&evts, 1).contains(&"sd_service_del"), "{evts:?}");
    }

    #[test]
    fn known_answer_suppression_reduces_responses() {
        fn responses_with(kas: bool) -> u64 {
            let mut sim = quiet_sim(2, 6);
            let cfg = SdConfig {
                known_answer_suppression: kas,
                ..SdConfig::two_party()
            };
            install(&mut sim, 0, cfg.clone());
            install(&mut sim, 1, cfg);
            sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
            sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
            sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
            sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
            sim.run_for(SimDuration::from_secs(30));
            sim.with_agent_mut(NodeId(0), SD_PORT, |agent, _| {
                agent
                    .as_any_mut()
                    .downcast_ref::<SdAgent>()
                    .unwrap()
                    .stats()
                    .responses_sent
            })
            .unwrap()
        }
        let with = responses_with(true);
        let without = responses_with(false);
        assert!(with < without, "suppression {with} !< plain {without}");
    }

    #[test]
    fn three_party_discovery_via_scm() {
        let mut sim = quiet_sim(3, 7);
        install(&mut sim, 0, SdConfig::three_party());
        install(&mut sim, 1, SdConfig::three_party());
        install(&mut sim, 2, SdConfig::three_party());
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::CacheManager));
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
        sim.run_for(SimDuration::from_secs(4)); // adverts propagate
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        sim.run_for(SimDuration::from_secs(1)); // registration completes
        sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(5));
        let evts = events(&mut sim);
        assert!(names_on(&evts, 1).contains(&"scm_started"));
        assert!(
            names_on(&evts, 1).contains(&"scm_registration_add"),
            "{evts:?}"
        );
        assert!(names_on(&evts, 0).contains(&"scm_found"));
        assert!(names_on(&evts, 2).contains(&"scm_found"));
        assert!(names_on(&evts, 2).contains(&"sd_service_add"), "{evts:?}");
        // Pure three-party SU must not have sent multicast queries.
        let stats = sim
            .with_agent_mut(NodeId(2), SD_PORT, |agent, _| {
                agent
                    .as_any_mut()
                    .downcast_ref::<SdAgent>()
                    .unwrap()
                    .stats()
            })
            .unwrap();
        assert_eq!(stats.queries_sent, 0);
        assert!(stats.directed_queries_sent > 0);
    }

    #[test]
    fn hybrid_works_without_scm_then_uses_it() {
        let mut sim = quiet_sim(3, 8);
        install(&mut sim, 0, SdConfig::hybrid());
        install(&mut sim, 2, SdConfig::hybrid());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(3));
        let evts = events(&mut sim);
        assert!(
            names_on(&evts, 2).contains(&"sd_service_add"),
            "hybrid discovers two-party without SCM: {evts:?}"
        );
        // Now an SCM appears; both sides find it.
        install(&mut sim, 1, SdConfig::hybrid());
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::CacheManager));
        sim.run_for(SimDuration::from_secs(5));
        let evts = events(&mut sim);
        assert!(names_on(&evts, 0).contains(&"scm_found"), "{evts:?}");
        assert!(names_on(&evts, 2).contains(&"scm_found"));
    }

    #[test]
    fn exit_emits_done_and_resets_role() {
        let mut sim = quiet_sim(1, 9);
        install(&mut sim, 0, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), SdCommand::StartSearch(http()));
        sd_command(&mut sim, NodeId(0), SdCommand::Exit);
        let evts = events(&mut sim);
        let names = names_on(&evts, 0);
        assert!(names.contains(&"sd_stop_search"));
        assert!(names.contains(&"sd_exit_done"));
        let role = sim
            .with_agent_mut(NodeId(0), SD_PORT, |agent, _| {
                agent.as_any_mut().downcast_ref::<SdAgent>().unwrap().role()
            })
            .unwrap();
        assert_eq!(role, None);
    }

    #[test]
    fn multihop_discovery_works() {
        let mut sim = quiet_sim(5, 10);
        for n in 0..5 {
            install(&mut sim, n, SdConfig::two_party());
        }
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(4), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-far", 0));
        sd_command(&mut sim, NodeId(4), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(5));
        let evts = events(&mut sim);
        assert!(names_on(&evts, 4).contains(&"sd_service_add"), "{evts:?}");
    }

    #[test]
    fn update_publication_emits_upd_on_searching_su() {
        let mut sim = quiet_sim(2, 11);
        install(&mut sim, 0, SdConfig::two_party());
        install(&mut sim, 1, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(3));
        let _ = events(&mut sim);
        let mut updated = ServiceDescription::new("sm-A", http(), NodeId(0));
        updated.service_port = 8080;
        sd_command(&mut sim, NodeId(0), SdCommand::UpdatePublication(updated));
        sim.run_for(SimDuration::from_secs(2));
        let evts = events(&mut sim);
        assert!(
            names_on(&evts, 0).contains(&"sd_service_upd"),
            "SM-side event"
        );
        assert!(
            names_on(&evts, 1).contains(&"sd_service_upd"),
            "SU-side event: {evts:?}"
        );
    }

    #[test]
    fn search_for_absent_service_finds_nothing() {
        let mut sim = quiet_sim(2, 12);
        install(&mut sim, 1, SdConfig::two_party());
        sd_command(&mut sim, NodeId(1), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(1), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(10));
        let evts = events(&mut sim);
        assert!(!names_on(&evts, 1).contains(&"sd_service_add"));
    }

    #[test]
    fn query_backoff_is_exponential() {
        let mut sim = quiet_sim(1, 13);
        install(&mut sim, 0, SdConfig::two_party());
        sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceUser));
        sd_command(&mut sim, NodeId(0), SdCommand::StartSearch(http()));
        sim.run_for(SimDuration::from_secs(16));
        let queries = sim
            .with_agent_mut(NodeId(0), SD_PORT, |agent, _| {
                agent
                    .as_any_mut()
                    .downcast_ref::<SdAgent>()
                    .unwrap()
                    .stats()
                    .queries_sent
            })
            .unwrap();
        // Queries at ~0.02, 1.02, 3.02, 7.02, 15.02 s → 5 within 16 s.
        assert_eq!(queries, 5, "exponential backoff schedule");
    }

    #[test]
    fn deterministic_two_party_run() {
        fn run(seed: u64) -> Vec<(excovery_netsim::EventName, u64)> {
            let mut sim = quiet_sim(3, seed);
            for n in 0..3 {
                install(&mut sim, n, SdConfig::two_party());
            }
            sd_command(&mut sim, NodeId(0), SdCommand::Init(Role::ServiceManager));
            sd_command(&mut sim, NodeId(2), SdCommand::Init(Role::ServiceUser));
            sd_command(&mut sim, NodeId(0), publish_cmd("sm-A", 0));
            sd_command(&mut sim, NodeId(2), SdCommand::StartSearch(http()));
            sim.run_for(SimDuration::from_secs(10));
            events(&mut sim)
                .into_iter()
                .map(|e| (e.name, e.local_time.as_nanos()))
                .collect()
        }
        assert_eq!(run(99), run(99));
    }
}
