//! SD roles, service descriptions and protocol configuration.

use excovery_netsim::{NodeId, SimDuration};

/// The role a node plays in the SD process (Dabrowski taxonomy, §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Service user: discovers services on behalf of a user.
    ServiceUser,
    /// Service manager: publishes services on behalf of a provider.
    ServiceManager,
    /// Service cache manager: caches descriptions of multiple SMs.
    CacheManager,
}

impl Role {
    /// The role string used in descriptions and events.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::ServiceUser => "SU",
            Role::ServiceManager => "SM",
            Role::CacheManager => "SCM",
        }
    }

    /// Parses a role string (`SU`, `SM`, `SCM`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "SU" => Some(Role::ServiceUser),
            "SM" => Some(Role::ServiceManager),
            "SCM" => Some(Role::CacheManager),
            _ => None,
        }
    }
}

/// The discovery architecture (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Decentralized: SUs and SMs communicate directly (multicast).
    TwoParty,
    /// Centralized: discovery via one or more SCMs (directed).
    ThreeParty,
    /// Adaptive: two-party until an SCM is discovered at runtime.
    Hybrid,
}

impl Architecture {
    /// The architecture string used in descriptions.
    pub fn as_str(self) -> &'static str {
        match self {
            Architecture::TwoParty => "two-party",
            Architecture::ThreeParty => "three-party",
            Architecture::Hybrid => "hybrid",
        }
    }

    /// Parses an architecture string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "two-party" => Some(Architecture::TwoParty),
            "three-party" => Some(Architecture::ThreeParty),
            "hybrid" => Some(Architecture::Hybrid),
            _ => None,
        }
    }
}

/// An abstract service class, e.g. `_http._tcp`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceType(pub String);

impl ServiceType {
    /// Creates a service type.
    pub fn new(s: impl Into<String>) -> Self {
        Self(s.into())
    }
}

impl std::fmt::Display for ServiceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A concrete service instance description (§III-A): SM identity, type,
/// interface location and optional attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Instance name — the SM identity (unique per provider).
    pub instance: String,
    /// Service type provided.
    pub stype: ServiceType,
    /// Network address of the provider.
    pub provider: NodeId,
    /// Service port at the provider.
    pub service_port: u16,
    /// Additional attributes (TXT-record style).
    pub attributes: Vec<(String, String)>,
    /// Record time-to-live in seconds (0 announces a removal — "goodbye").
    pub ttl_s: u32,
}

impl ServiceDescription {
    /// Creates a plain description with the default TTL of 120 s
    /// (mDNS's common value for host records).
    pub fn new(instance: impl Into<String>, stype: ServiceType, provider: NodeId) -> Self {
        Self {
            instance: instance.into(),
            stype,
            provider,
            service_port: 80,
            attributes: Vec::new(),
            ttl_s: 120,
        }
    }

    /// The same record with TTL 0 — the goodbye form.
    pub fn goodbye(&self) -> Self {
        Self {
            ttl_s: 0,
            ..self.clone()
        }
    }

    /// True if this record announces removal.
    pub fn is_goodbye(&self) -> bool {
        self.ttl_s == 0
    }
}

/// Tunable protocol parameters.
///
/// Defaults follow mDNS (RFC 6762) and SLP conventions scaled to the
/// experiment timescales of the paper's case study.
#[derive(Debug, Clone)]
pub struct SdConfig {
    /// Discovery architecture.
    pub architecture: Architecture,
    /// Delay before the first unsolicited announcement of a publication.
    pub first_announce_delay: SimDuration,
    /// Number of unsolicited announcements per publication.
    pub announce_count: u32,
    /// Interval between unsolicited announcements (doubles each time,
    /// mDNS-style).
    pub announce_interval: SimDuration,
    /// Delay of the first query after `Start searching`.
    pub first_query_delay: SimDuration,
    /// Interval after the first query; multiplied by `query_backoff` after
    /// each retransmission.
    pub query_interval: SimDuration,
    /// Backoff multiplier for successive queries (mDNS: 2.0).
    pub query_backoff: f64,
    /// Queries never space out further than this.
    pub max_query_interval: SimDuration,
    /// Maximum random response jitter of responders (mDNS: 20–120 ms for
    /// shared records; we draw uniform in [0, max]).
    pub response_jitter_max: SimDuration,
    /// Interval of SCM presence adverts (three-party/hybrid).
    pub scm_advert_interval: SimDuration,
    /// Registration lease granted by SCMs.
    pub registration_lease: SimDuration,
    /// Retransmission interval for unacknowledged registrations.
    pub registration_retry: SimDuration,
    /// Known-answer suppression: responders stay quiet if the query lists
    /// their record (with TTL above half) as already known.
    pub known_answer_suppression: bool,
    /// Probe for name uniqueness before announcing (RFC 6762 §8.1-style):
    /// the publisher queries for its own instance and renames on conflict.
    pub probe_before_announce: bool,
    /// Number of probes sent before the name is considered won.
    pub probe_count: u32,
    /// Interval between probes (mDNS: 250 ms).
    pub probe_interval: SimDuration,
}

impl Default for SdConfig {
    fn default() -> Self {
        Self {
            architecture: Architecture::TwoParty,
            first_announce_delay: SimDuration::from_millis(50),
            announce_count: 3,
            announce_interval: SimDuration::from_secs(1),
            first_query_delay: SimDuration::from_millis(20),
            query_interval: SimDuration::from_secs(1),
            query_backoff: 2.0,
            max_query_interval: SimDuration::from_secs(60),
            response_jitter_max: SimDuration::from_millis(120),
            scm_advert_interval: SimDuration::from_secs(3),
            registration_lease: SimDuration::from_secs(60),
            registration_retry: SimDuration::from_millis(500),
            known_answer_suppression: true,
            probe_before_announce: false,
            probe_count: 3,
            probe_interval: SimDuration::from_millis(250),
        }
    }
}

impl SdConfig {
    /// Two-party defaults.
    pub fn two_party() -> Self {
        Self::default()
    }

    /// Three-party defaults.
    pub fn three_party() -> Self {
        Self {
            architecture: Architecture::ThreeParty,
            ..Self::default()
        }
    }

    /// Hybrid defaults.
    pub fn hybrid() -> Self {
        Self {
            architecture: Architecture::Hybrid,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_roundtrip() {
        for r in [Role::ServiceUser, Role::ServiceManager, Role::CacheManager] {
            assert_eq!(Role::parse(r.as_str()), Some(r));
        }
        assert_eq!(Role::parse("XX"), None);
    }

    #[test]
    fn architecture_roundtrip() {
        for a in [
            Architecture::TwoParty,
            Architecture::ThreeParty,
            Architecture::Hybrid,
        ] {
            assert_eq!(Architecture::parse(a.as_str()), Some(a));
        }
        assert_eq!(Architecture::parse("four-party"), None);
    }

    #[test]
    fn goodbye_semantics() {
        let d = ServiceDescription::new("web-1", ServiceType::new("_http._tcp"), NodeId(3));
        assert!(!d.is_goodbye());
        let g = d.goodbye();
        assert!(g.is_goodbye());
        assert_eq!(g.instance, d.instance);
        assert_eq!(g.stype, d.stype);
    }

    #[test]
    fn config_presets() {
        assert_eq!(SdConfig::two_party().architecture, Architecture::TwoParty);
        assert_eq!(
            SdConfig::three_party().architecture,
            Architecture::ThreeParty
        );
        assert_eq!(SdConfig::hybrid().architecture, Architecture::Hybrid);
    }

    #[test]
    fn service_type_display() {
        assert_eq!(ServiceType::new("_ipp._tcp").to_string(), "_ipp._tcp");
    }
}
