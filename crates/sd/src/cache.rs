//! The local service cache kept by SUs, SMs and SCMs.
//!
//! Most SDPs implement a local cache to reduce network load (§III-A); this
//! one tracks record expiry (TTL), supports the known-answer list of
//! outgoing queries, and reports add/remove/update transitions so the agent
//! can emit `sd_service_add` / `sd_service_del` / `sd_service_upd` events.

use crate::model::{ServiceDescription, ServiceType};
use excovery_netsim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Outcome of merging a record into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheChange {
    /// The instance was not known before.
    Added,
    /// The instance was known; description content changed.
    Updated,
    /// The instance was known; only the expiry was refreshed.
    Refreshed,
    /// A goodbye (TTL 0) removed the instance.
    Removed,
    /// A goodbye for an unknown instance: nothing happened.
    Ignored,
}

#[derive(Debug, Clone)]
struct Entry {
    desc: ServiceDescription,
    expires: SimTime,
}

/// TTL-aware service cache.
#[derive(Debug, Clone, Default)]
pub struct ServiceCache {
    entries: HashMap<(ServiceType, String), Entry>,
}

impl ServiceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges a received record, returning what changed.
    pub fn merge(&mut self, desc: &ServiceDescription, now: SimTime) -> CacheChange {
        let key = (desc.stype.clone(), desc.instance.clone());
        if desc.is_goodbye() {
            return if self.entries.remove(&key).is_some() {
                CacheChange::Removed
            } else {
                CacheChange::Ignored
            };
        }
        let expires = now + SimDuration::from_secs(u64::from(desc.ttl_s));
        match self.entries.get_mut(&key) {
            None => {
                self.entries.insert(
                    key,
                    Entry {
                        desc: desc.clone(),
                        expires,
                    },
                );
                CacheChange::Added
            }
            Some(e) => {
                let content_changed = e.desc.service_port != desc.service_port
                    || e.desc.attributes != desc.attributes
                    || e.desc.provider != desc.provider;
                e.expires = expires;
                if content_changed {
                    e.desc = desc.clone();
                    CacheChange::Updated
                } else {
                    CacheChange::Refreshed
                }
            }
        }
    }

    /// Removes expired entries, returning the descriptions that lapsed.
    pub fn expire(&mut self, now: SimTime) -> Vec<ServiceDescription> {
        let mut lapsed = Vec::new();
        self.entries.retain(|_, e| {
            if e.expires <= now {
                lapsed.push(e.desc.clone());
                false
            } else {
                true
            }
        });
        lapsed.sort_by(|a, b| (&a.stype, &a.instance).cmp(&(&b.stype, &b.instance)));
        lapsed
    }

    /// Live records of a service type, sorted by instance name.
    pub fn lookup(&self, stype: &ServiceType, now: SimTime) -> Vec<&ServiceDescription> {
        let mut out: Vec<&ServiceDescription> = self
            .entries
            .values()
            .filter(|e| &e.desc.stype == stype && e.expires > now)
            .map(|e| &e.desc)
            .collect();
        out.sort_by(|a, b| a.instance.cmp(&b.instance));
        out
    }

    /// Instance names for the known-answer section of a query: live records
    /// of `stype` whose remaining TTL exceeds half the original (RFC 6762
    /// §7.1 — records nearing expiry are not suppressed).
    pub fn known_answers(&self, stype: &ServiceType, now: SimTime) -> Vec<String> {
        let mut out: Vec<String> = self
            .entries
            .values()
            .filter(|e| {
                &e.desc.stype == stype && {
                    let total = SimDuration::from_secs(u64::from(e.desc.ttl_s));
                    let remaining = e.expires.saturating_since(now);
                    remaining.as_nanos() * 2 > total.as_nanos()
                }
            })
            .map(|e| e.desc.instance.clone())
            .collect();
        out.sort();
        out
    }

    /// The earliest expiry instant of any entry (to arm the expiry timer).
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries.values().map(|e| e.expires).min()
    }

    /// Number of live entries (including any not yet expired-swept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// All live records regardless of type (SCM responses, diagnostics).
    pub fn all(&self, now: SimTime) -> Vec<&ServiceDescription> {
        let mut out: Vec<&ServiceDescription> = self
            .entries
            .values()
            .filter(|e| e.expires > now)
            .map(|e| &e.desc)
            .collect();
        out.sort_by(|a, b| (&a.stype, &a.instance).cmp(&(&b.stype, &b.instance)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_netsim::NodeId;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn desc(name: &str, ttl: u32) -> ServiceDescription {
        let mut d = ServiceDescription::new(name, ServiceType::new("_http._tcp"), NodeId(1));
        d.ttl_s = ttl;
        d
    }

    #[test]
    fn add_then_lookup() {
        let mut c = ServiceCache::new();
        assert_eq!(c.merge(&desc("a", 10), t(0)), CacheChange::Added);
        let found = c.lookup(&ServiceType::new("_http._tcp"), t(5));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].instance, "a");
        assert!(c.lookup(&ServiceType::new("_other._udp"), t(5)).is_empty());
    }

    #[test]
    fn refresh_vs_update() {
        let mut c = ServiceCache::new();
        c.merge(&desc("a", 10), t(0));
        assert_eq!(c.merge(&desc("a", 10), t(5)), CacheChange::Refreshed);
        let mut changed = desc("a", 10);
        changed.service_port = 8080;
        assert_eq!(c.merge(&changed, t(6)), CacheChange::Updated);
    }

    #[test]
    fn goodbye_removes() {
        let mut c = ServiceCache::new();
        c.merge(&desc("a", 10), t(0));
        assert_eq!(c.merge(&desc("a", 0), t(1)), CacheChange::Removed);
        assert!(c.is_empty());
        assert_eq!(c.merge(&desc("ghost", 0), t(1)), CacheChange::Ignored);
    }

    #[test]
    fn expiry_sweep() {
        let mut c = ServiceCache::new();
        c.merge(&desc("a", 10), t(0));
        c.merge(&desc("b", 100), t(0));
        assert!(c.expire(t(5)).is_empty());
        let lapsed = c.expire(t(11));
        assert_eq!(lapsed.len(), 1);
        assert_eq!(lapsed[0].instance, "a");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lookup_hides_expired_before_sweep() {
        let mut c = ServiceCache::new();
        c.merge(&desc("a", 10), t(0));
        assert!(c.lookup(&ServiceType::new("_http._tcp"), t(11)).is_empty());
        assert_eq!(c.len(), 1, "not swept yet");
    }

    #[test]
    fn known_answer_half_ttl_rule() {
        let mut c = ServiceCache::new();
        c.merge(&desc("fresh", 100), t(0));
        c.merge(&desc("stale", 10), t(0));
        // At t=6, "stale" has 4 s of 10 left (<half) and must not be listed;
        // "fresh" has 94 of 100 left.
        let known = c.known_answers(&ServiceType::new("_http._tcp"), t(6));
        assert_eq!(known, vec!["fresh"]);
    }

    #[test]
    fn next_expiry_is_minimum() {
        let mut c = ServiceCache::new();
        assert_eq!(c.next_expiry(), None);
        c.merge(&desc("a", 50), t(0));
        c.merge(&desc("b", 20), t(0));
        assert_eq!(c.next_expiry(), Some(t(20)));
    }

    #[test]
    fn all_sorted() {
        let mut c = ServiceCache::new();
        c.merge(&desc("zeta", 10), t(0));
        c.merge(&desc("alpha", 10), t(0));
        let names: Vec<&str> = c.all(t(1)).iter().map(|d| d.instance.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        c.clear();
        assert!(c.is_empty());
    }
}
