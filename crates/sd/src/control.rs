//! External control of SD agents — the SD actions of paper §V.
//!
//! The NodeManager receives `sd_*` actions over XML-RPC and must drive its
//! local protocol agent. [`sd_command`] delivers such a command into the
//! agent installed on a simulator node, between event-loop steps.

use crate::agent::SdAgent;
use crate::model::{Role, ServiceDescription, ServiceType};
use crate::SD_PORT;
use excovery_netsim::{NodeId, Simulator};

/// The SD actions a node process can execute (paper §V).
#[derive(Debug, Clone, PartialEq)]
pub enum SdCommand {
    /// `Init SD` with the node's role.
    Init(Role),
    /// `Exit SD`.
    Exit,
    /// `Start searching` for a service type.
    StartSearch(ServiceType),
    /// `Stop searching` for a service type.
    StopSearch(ServiceType),
    /// `Start publishing` a service instance.
    StartPublish(ServiceDescription),
    /// `Stop publishing` a service type.
    StopPublish(ServiceType),
    /// `Update publication` with a changed description.
    UpdatePublication(ServiceDescription),
}

/// Applies a command to the SD agent on `node` (port [`SD_PORT`]).
///
/// Returns `false` if no SD agent is installed there.
pub fn sd_command(sim: &mut Simulator, node: NodeId, cmd: SdCommand) -> bool {
    sd_command_on_port(sim, node, SD_PORT, cmd)
}

/// Applies a command to the SD agent on an explicit port.
pub fn sd_command_on_port(sim: &mut Simulator, node: NodeId, port: u16, cmd: SdCommand) -> bool {
    sim.with_agent_mut(node, port, move |agent, ctx| {
        let Some(sd) = agent.as_any_mut().downcast_mut::<SdAgent>() else {
            return false;
        };
        match cmd {
            SdCommand::Init(role) => sd.sd_init(ctx, role),
            SdCommand::Exit => sd.sd_exit(ctx),
            SdCommand::StartSearch(st) => sd.start_search(ctx, st),
            SdCommand::StopSearch(st) => sd.stop_search(ctx, &st),
            SdCommand::StartPublish(desc) => sd.start_publish(ctx, desc),
            SdCommand::StopPublish(st) => sd.stop_publish(ctx, &st),
            SdCommand::UpdatePublication(desc) => sd.update_publication(ctx, desc),
        }
        true
    })
    .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SdConfig;
    use excovery_netsim::sim::SimulatorConfig;
    use excovery_netsim::topology::Topology;

    #[test]
    fn command_to_empty_node_returns_false() {
        let mut sim = Simulator::new(Topology::chain(2), SimulatorConfig::perfect_clocks(1));
        assert!(!sd_command(&mut sim, NodeId(0), SdCommand::Exit));
    }

    #[test]
    fn command_to_wrong_agent_type_returns_false() {
        struct Other;
        impl excovery_netsim::Agent for Other {
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut sim = Simulator::new(Topology::chain(1), SimulatorConfig::perfect_clocks(1));
        sim.install_agent(NodeId(0), SD_PORT, Box::new(Other));
        assert!(!sd_command(&mut sim, NodeId(0), SdCommand::Exit));
    }

    #[test]
    fn command_reaches_agent() {
        let mut sim = Simulator::new(Topology::chain(1), SimulatorConfig::perfect_clocks(1));
        sim.install_agent(
            NodeId(0),
            SD_PORT,
            Box::new(SdAgent::new(SdConfig::two_party(), SD_PORT)),
        );
        assert!(sd_command(
            &mut sim,
            NodeId(0),
            SdCommand::Init(Role::ServiceUser)
        ));
        let evts = sim.drain_protocol_events();
        assert!(evts.iter().any(|e| e.name == "sd_init_done"));
    }
}
