//! # excovery-sd
//!
//! The service-discovery substrate of the case study (paper §III and §V).
//!
//! Implements the general SD model of Dabrowski et al. with the three roles
//! *service user* (SU), *service manager* (SM) and *service cache manager*
//! (SCM), in three architectures:
//!
//! * **two-party** (decentralized): an mDNS/Zeroconf-like protocol on port
//!   5353 — unsolicited multicast announcements, multicast queries with
//!   exponential backoff, multicast responses with jitter, TTL caches,
//!   known-answer suppression and goodbye packets;
//! * **three-party** (centralized): an SLP-like directory protocol on port
//!   427 — SCM adverts, unicast registrations with acknowledgement and
//!   lease refresh, directed queries;
//! * **hybrid**: both at once, preferring the SCM once discovered.
//!
//! Like the paper's modified Avahi, responses carry the id of the query
//! they answer, so request/response pairs can be associated in packet-level
//! analysis (§VI-A).
//!
//! The protocols run as [`excovery_netsim::Agent`]s; the SD actions of §V
//! (`Init SD`, `Start searching`, …) are issued through [`control`] and
//! surface the paper's events (`sd_init_done`, `sd_service_add`, …) via the
//! simulator's protocol-event stream.

pub mod agent;
pub mod cache;
pub mod control;
pub mod model;
pub mod wire;

pub use agent::SdAgent;
pub use control::{sd_command, SdCommand};
pub use model::{Architecture, Role, SdConfig, ServiceDescription, ServiceType};
pub use wire::SdMessage;

/// Well-known port of the two-party (mDNS-like) protocol.
pub const MDNS_PORT: u16 = 5353;
/// Well-known port of the three-party (SLP-like) protocol.
pub const DIRECTORY_PORT: u16 = 427;
/// Port the SD agent binds in this implementation (both protocols are
/// multiplexed by message type; the agent listens on one port).
pub const SD_PORT: u16 = 5353;
