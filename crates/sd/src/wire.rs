//! Wire format of the SD protocols.
//!
//! A compact line-oriented text codec: one message per packet, fields
//! separated by `|`, list elements by `,`, with percent-escaping for the
//! separator characters. Text keeps captured payloads human-readable in the
//! stored `Packets` table — the paper requires the complete, unaltered
//! content to be recorded, and readable content makes the stored
//! experiments genuinely reusable.
//!
//! Every query carries a `qid` and responses echo it, reproducing the
//! request/response association the authors patched into Avahi (§VI-A).

use crate::model::{ServiceDescription, ServiceType};
use excovery_netsim::NodeId;

/// A service record as carried on the wire.
pub type Record = ServiceDescription;

/// Messages of both SD protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdMessage {
    /// Multicast query for a service type (two-party active discovery).
    /// `known` lists instance names already cached (known-answer
    /// suppression).
    Query {
        /// Query identifier for request/response association.
        qid: u64,
        /// The service type searched for.
        stype: ServiceType,
        /// Instances the querier already knows with fresh TTL.
        known: Vec<String>,
    },
    /// Response to a query (multicast in two-party, unicast from SCM).
    Response {
        /// Identifier of the query being answered; 0 for unsolicited.
        qid: u64,
        /// Matching records.
        records: Vec<Record>,
    },
    /// Unsolicited announcement (also goodbye when TTL is 0).
    Announce {
        /// The announced record.
        record: Record,
    },
    /// SCM presence advertisement (three-party/hybrid).
    ScmAdvert {
        /// The advertising cache manager.
        scm: NodeId,
    },
    /// Registration of a record at an SCM (unicast).
    Register {
        /// Registration id for ack association.
        rid: u64,
        /// The record to register.
        record: Record,
        /// Requested lease in seconds.
        lease_s: u32,
    },
    /// Acknowledgement of a registration.
    RegisterAck {
        /// The acknowledged registration id.
        rid: u64,
    },
    /// Revocation of a registration at an SCM.
    Deregister {
        /// Instance name.
        instance: String,
        /// Service type.
        stype: ServiceType,
    },
    /// Directed query to an SCM (unicast).
    DirectedQuery {
        /// Query identifier.
        qid: u64,
        /// The service type searched for.
        stype: ServiceType,
    },
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            ',' => out.push_str("%2C"),
            ';' => out.push_str("%3B"),
            '=' => out.push_str("%3D"),
            '\n' => out.push_str("%0A"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?;
        let lo = chars.next()?;
        let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16).ok()?;
        out.push(byte as char);
    }
    Some(out)
}

fn encode_record(r: &Record) -> String {
    let attrs = r
        .attributes
        .iter()
        .map(|(k, v)| format!("{}={}", esc(k), esc(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{};{};{};{};{};{}",
        esc(&r.instance),
        esc(&r.stype.0),
        r.provider.0,
        r.service_port,
        r.ttl_s,
        attrs
    )
}

fn decode_record(s: &str) -> Option<Record> {
    let mut parts = s.splitn(6, ';');
    let instance = unesc(parts.next()?)?;
    let stype = ServiceType::new(unesc(parts.next()?)?);
    let provider = NodeId(parts.next()?.parse().ok()?);
    let service_port = parts.next()?.parse().ok()?;
    let ttl_s = parts.next()?.parse().ok()?;
    let attrs_raw = parts.next().unwrap_or("");
    let mut attributes = Vec::new();
    if !attrs_raw.is_empty() {
        for kv in attrs_raw.split(',') {
            let (k, v) = kv.split_once('=')?;
            attributes.push((unesc(k)?, unesc(v)?));
        }
    }
    Some(Record {
        instance,
        stype,
        provider,
        service_port,
        attributes,
        ttl_s,
    })
}

impl SdMessage {
    /// Encodes the message to payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let text = match self {
            SdMessage::Query { qid, stype, known } => {
                // Explicit count disambiguates an empty list from a list
                // holding one empty name.
                let joined = known.iter().map(|k| esc(k)).collect::<Vec<_>>().join(",");
                format!("QRY|{qid}|{}|{}|{joined}", esc(&stype.0), known.len())
            }
            SdMessage::Response { qid, records } => {
                let recs = records
                    .iter()
                    .map(encode_record)
                    .collect::<Vec<_>>()
                    .join("\n");
                format!("RSP|{qid}|{recs}")
            }
            SdMessage::Announce { record } => format!("ANN|{}", encode_record(record)),
            SdMessage::ScmAdvert { scm } => format!("ADV|{}", scm.0),
            SdMessage::Register {
                rid,
                record,
                lease_s,
            } => {
                format!("REG|{rid}|{lease_s}|{}", encode_record(record))
            }
            SdMessage::RegisterAck { rid } => format!("ACK|{rid}"),
            SdMessage::Deregister { instance, stype } => {
                format!("DRG|{}|{}", esc(instance), esc(&stype.0))
            }
            SdMessage::DirectedQuery { qid, stype } => {
                format!("DQR|{qid}|{}", esc(&stype.0))
            }
        };
        text.into_bytes()
    }

    /// Decodes a message from payload bytes; `None` on any malformation
    /// (robust parsers drop garbage silently, like real SDP stacks).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let (tag, rest) = text.split_once('|')?;
        match tag {
            "QRY" => {
                let mut p = rest.splitn(4, '|');
                let qid = p.next()?.parse().ok()?;
                let stype = ServiceType::new(unesc(p.next()?)?);
                let count: usize = p.next()?.parse().ok()?;
                let known_raw = p.next().unwrap_or("");
                let known = if count == 0 {
                    Vec::new()
                } else {
                    let known: Vec<String> =
                        known_raw.split(',').map(unesc).collect::<Option<_>>()?;
                    if known.len() != count {
                        return None;
                    }
                    known
                };
                Some(SdMessage::Query { qid, stype, known })
            }
            "RSP" => {
                let (qid_raw, recs_raw) = rest.split_once('|')?;
                let qid = qid_raw.parse().ok()?;
                let records = if recs_raw.is_empty() {
                    Vec::new()
                } else {
                    recs_raw
                        .split('\n')
                        .map(decode_record)
                        .collect::<Option<Vec<_>>>()?
                };
                Some(SdMessage::Response { qid, records })
            }
            "ANN" => Some(SdMessage::Announce {
                record: decode_record(rest)?,
            }),
            "ADV" => Some(SdMessage::ScmAdvert {
                scm: NodeId(rest.parse().ok()?),
            }),
            "REG" => {
                let mut p = rest.splitn(3, '|');
                let rid = p.next()?.parse().ok()?;
                let lease_s = p.next()?.parse().ok()?;
                let record = decode_record(p.next()?)?;
                Some(SdMessage::Register {
                    rid,
                    record,
                    lease_s,
                })
            }
            "ACK" => Some(SdMessage::RegisterAck {
                rid: rest.parse().ok()?,
            }),
            "DRG" => {
                let (inst, st) = rest.split_once('|')?;
                Some(SdMessage::Deregister {
                    instance: unesc(inst)?,
                    stype: ServiceType::new(unesc(st)?),
                })
            }
            "DQR" => {
                let (qid_raw, st) = rest.split_once('|')?;
                Some(SdMessage::DirectedQuery {
                    qid: qid_raw.parse().ok()?,
                    stype: ServiceType::new(unesc(st)?),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> Record {
        let mut r = ServiceDescription::new(
            "printer, 2nd floor",
            ServiceType::new("_ipp._tcp"),
            NodeId(7),
        );
        r.service_port = 631;
        r.attributes = vec![
            ("paper".into(), "A4|letter".into()),
            ("duplex".into(), "yes".into()),
        ];
        r.ttl_s = 120;
        r
    }

    fn roundtrip(m: SdMessage) {
        let bytes = m.encode();
        let back = SdMessage::decode(&bytes)
            .unwrap_or_else(|| panic!("decode failed for {:?}", String::from_utf8_lossy(&bytes)));
        assert_eq!(back, m);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(SdMessage::Query {
            qid: 42,
            stype: ServiceType::new("_http._tcp"),
            known: vec!["web-1".into(), "web,2".into()],
        });
        roundtrip(SdMessage::Query {
            qid: 0,
            stype: ServiceType::new("t"),
            known: vec![],
        });
        roundtrip(SdMessage::Response {
            qid: 42,
            records: vec![record(), record()],
        });
        roundtrip(SdMessage::Response {
            qid: 1,
            records: vec![],
        });
        roundtrip(SdMessage::Announce { record: record() });
        roundtrip(SdMessage::Announce {
            record: record().goodbye(),
        });
        roundtrip(SdMessage::ScmAdvert {
            scm: NodeId(65_000),
        });
        roundtrip(SdMessage::Register {
            rid: 9,
            record: record(),
            lease_s: 60,
        });
        roundtrip(SdMessage::RegisterAck { rid: 9 });
        roundtrip(SdMessage::Deregister {
            instance: "printer, 2nd floor".into(),
            stype: ServiceType::new("_ipp._tcp"),
        });
        roundtrip(SdMessage::DirectedQuery {
            qid: 3,
            stype: ServiceType::new("_x|y._udp"),
        });
    }

    #[test]
    fn record_without_attributes_roundtrips() {
        let mut r = record();
        r.attributes.clear();
        roundtrip(SdMessage::Announce { record: r });
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert_eq!(SdMessage::decode(b""), None);
        assert_eq!(SdMessage::decode(b"HELLO"), None);
        assert_eq!(SdMessage::decode(b"XXX|1|2"), None);
        assert_eq!(SdMessage::decode(b"QRY|notanumber|t|0|"), None);
        assert_eq!(
            SdMessage::decode(b"QRY|1|t|2|onlyone"),
            None,
            "count mismatch"
        );
        assert_eq!(SdMessage::decode(b"ANN|broken"), None);
        assert_eq!(SdMessage::decode(&[0xFF, 0xFE, b'|']), None);
        assert_eq!(SdMessage::decode(b"ACK|"), None);
    }

    #[test]
    fn escaping_handles_separators() {
        assert_eq!(esc("a|b,c;d%e=f"), "a%7Cb%2Cc%3Bd%25e%3Df");
        assert_eq!(unesc("a%7Cb%2Cc%3Bd%25e%3Df").unwrap(), "a|b,c;d%e=f");
        assert_eq!(unesc("%zz"), None, "bad hex digits");
        assert_eq!(unesc("%7"), None, "truncated escape");
    }

    #[test]
    fn qid_is_preserved_for_association() {
        // The whole point of the Avahi modification: responses must carry
        // the query id so request/response pairs can be matched.
        let q = SdMessage::Query {
            qid: 77,
            stype: ServiceType::new("_t"),
            known: vec![],
        };
        let bytes = q.encode();
        let qid = match SdMessage::decode(&bytes).unwrap() {
            SdMessage::Query { qid, .. } => qid,
            _ => unreachable!(),
        };
        let r = SdMessage::Response {
            qid,
            records: vec![],
        };
        match SdMessage::decode(&r.encode()).unwrap() {
            SdMessage::Response { qid, .. } => assert_eq!(qid, 77),
            _ => unreachable!(),
        }
    }
}
