//! In-process equivalence and fairness properties of the experiment
//! server.
//!
//! * **Concurrency equivalence** — N campaigns executed concurrently by
//!   the fair-share scheduler produce exactly the per-campaign digests
//!   of serial, stand-alone executions of the same descriptions.
//! * **Fairness** — two tenants with unequal campaigns both make
//!   progress in every scheduler round while both have work.
//! * **Restart replay** — dropping the server and reopening the same
//!   repository resumes every campaign bit-exactly, and the durable
//!   submit key still dedups across the restart.
//! * **Obs parity** — the observability layer (queue gauges, campaign
//!   counters, scheduling-latency histogram) must not influence
//!   results: digests are identical with recording on and off.

use std::path::PathBuf;
use std::sync::Arc;

use excovery_core::{EngineConfig, ExperiMaster};
use excovery_desc::process::{EventSelector, ProcessAction};
use excovery_desc::{xmlio, ExperimentDescription};
use excovery_rpc::{JobState, PlanSpec, SubmitRequest};
use excovery_server::{
    preset_config, ExperimentServer, Scheduler, SchedulerConfig, ServerClient, ServerConfig,
    ServerRepo,
};
use parking_lot::Mutex;

/// The paper's two-party SD experiment, trimmed for test speed (no
/// traffic factors) and reseeded per scenario — the same abbreviation
/// the engine's chaos-equivalence suite uses.
fn desc_with_seed(reps: u64, seed: u64) -> ExperimentDescription {
    let mut d = ExperimentDescription::paper_two_party_sd(reps);
    d.factors
        .factors
        .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
    d.env_processes[0].actions = vec![
        ProcessAction::EventFlag {
            value: "ready_to_init".into(),
        },
        ProcessAction::WaitForEvent(EventSelector::named("done")),
    ];
    d.seed = seed;
    d
}

fn unique_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "excovery-server-eq-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn submit(repo: &Arc<Mutex<ServerRepo>>, tenant: &str, preset: &str, reps: u64, seed: u64) -> u64 {
    let req = SubmitRequest {
        tenant: tenant.into(),
        preset: preset.into(),
        description_xml: xmlio::to_xml(&desc_with_seed(reps, seed)),
        submit_key: format!("{tenant}-{preset}-{reps}-{seed}"),
    };
    let (job_id, created) = repo.lock().submit(&req).expect("submit");
    assert!(created);
    job_id
}

/// Digest of a stand-alone, uninterrupted execution on the same preset.
fn reference_digest(reps: u64, seed: u64, preset: &str) -> u64 {
    let cfg: EngineConfig = preset_config(preset).expect("preset");
    let mut master = ExperiMaster::new(desc_with_seed(reps, seed), cfg).expect("master");
    master.execute().expect("reference execution").digest()
}

#[test]
fn concurrent_campaigns_match_their_serial_digests() {
    let root = unique_root("concurrent");
    let repo = Arc::new(Mutex::new(ServerRepo::open(&root).unwrap()));
    let jobs = [
        (
            submit(&repo, "alice", "grid_default", 2, 11),
            2,
            11,
            "grid_default",
        ),
        (submit(&repo, "bob", "wired_lan", 3, 22), 3, 22, "wired_lan"),
        (
            submit(&repo, "carol", "grid_default", 4, 33),
            4,
            33,
            "grid_default",
        ),
    ];
    let mut sched = Scheduler::new(
        Arc::clone(&repo),
        SchedulerConfig {
            workers: 4,
            slice_runs: 2,
        },
    );
    sched.drain().expect("drain");
    for (job_id, reps, seed, preset) in jobs {
        let rec = repo.lock().job(job_id).unwrap().clone();
        assert_eq!(rec.state, JobState::Completed, "job {job_id}: {rec:?}");
        assert_eq!(rec.runs_completed, rec.runs_total);
        assert_eq!(
            rec.digest,
            Some(reference_digest(reps, seed, preset)),
            "job {job_id} digest must equal its serial reference"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unequal_tenants_both_progress_every_round() {
    let root = unique_root("fairness");
    let repo = Arc::new(Mutex::new(ServerRepo::open(&root).unwrap()));
    let long = submit(&repo, "alice", "grid_default", 6, 44);
    let short = submit(&repo, "bob", "grid_default", 2, 55);
    // One worker: fairness must come from the pick, not the parallelism.
    let mut sched = Scheduler::new(
        Arc::clone(&repo),
        SchedulerConfig {
            workers: 1,
            slice_runs: 1,
        },
    );
    // While both tenants have runnable work, every round advances both.
    for round in 0..2 {
        let report = sched.tick().expect("tick");
        assert_eq!(
            report.tenants_progressed(),
            vec!["alice", "bob"],
            "round {round} must advance both tenants: {report:?}"
        );
    }
    assert_eq!(repo.lock().job(short).unwrap().state, JobState::Completed);
    sched.drain().expect("drain");
    let alice = repo.lock().job(long).unwrap().clone();
    let bob = repo.lock().job(short).unwrap().clone();
    assert_eq!(alice.state, JobState::Completed);
    assert_eq!(alice.digest, Some(reference_digest(6, 44, "grid_default")));
    assert_eq!(bob.digest, Some(reference_digest(2, 55, "grid_default")));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn restart_replays_the_journal_and_resumes_bit_exactly() {
    let root = unique_root("restart");
    let key_req = |tenant: &str| SubmitRequest {
        tenant: tenant.into(),
        preset: "grid_default".into(),
        description_xml: xmlio::to_xml(&desc_with_seed(4, 66)),
        submit_key: "stable-key".into(),
    };
    {
        let repo = Arc::new(Mutex::new(ServerRepo::open(&root).unwrap()));
        let (job_id, created) = repo.lock().submit(&key_req("alice")).unwrap();
        assert!(created);
        assert_eq!(job_id, 1);
        let mut sched = Scheduler::new(
            Arc::clone(&repo),
            SchedulerConfig {
                workers: 1,
                slice_runs: 2,
            },
        );
        let report = sched.tick().unwrap();
        assert_eq!(report.slices.len(), 1);
        assert_eq!(report.slices[0].runs_after, 2);
        // Server dropped here, campaign half done.
    }
    let repo = Arc::new(Mutex::new(ServerRepo::open(&root).unwrap()));
    {
        let rec = repo.lock().job(1).unwrap().clone();
        assert_eq!(rec.state, JobState::Running);
        assert_eq!(rec.runs_completed, 2);
    }
    // The durable dedup key survives the restart.
    let (job_id, created) = repo.lock().submit(&key_req("alice")).unwrap();
    assert!(!created);
    assert_eq!(job_id, 1);
    let mut sched = Scheduler::new(
        Arc::clone(&repo),
        SchedulerConfig {
            workers: 1,
            slice_runs: 2,
        },
    );
    sched.drain().unwrap();
    let rec = repo.lock().job(1).unwrap().clone();
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.digest, Some(reference_digest(4, 66, "grid_default")));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn obs_recording_does_not_influence_digests() {
    let run_with_obs = |enabled: bool, tag: &str| -> u64 {
        excovery_obs::set_enabled(enabled);
        let root = unique_root(tag);
        let repo = Arc::new(Mutex::new(ServerRepo::open(&root).unwrap()));
        let job = submit(&repo, "alice", "grid_default", 2, 77);
        let mut sched = Scheduler::new(
            Arc::clone(&repo),
            SchedulerConfig {
                workers: 2,
                slice_runs: 1,
            },
        );
        sched.drain().unwrap();
        let digest = repo.lock().job(job).unwrap().digest.expect("completed");
        excovery_obs::set_enabled(false);
        let _ = std::fs::remove_dir_all(&root);
        digest
    };
    let on = run_with_obs(true, "obs-on");
    let off = run_with_obs(false, "obs-off");
    assert_eq!(on, off);
    assert_eq!(on, reference_digest(2, 77, "grid_default"));
}

#[test]
fn standing_queries_serve_live_campaign_progress() {
    let root = unique_root("standing");
    let cfg = ServerConfig {
        scheduler: SchedulerConfig {
            workers: 1,
            slice_runs: 1,
        },
        ..ServerConfig::default()
    };
    let mut server = ExperimentServer::start(&root, cfg).expect("start");
    let client = ServerClient::connect_root(&root).expect("connect");
    let (job_id, _) = client
        .submit(&SubmitRequest {
            tenant: "alice".into(),
            preset: "grid_default".into(),
            description_xml: xmlio::to_xml(&desc_with_seed(3, 99)),
            submit_key: "standing-key".into(),
        })
        .expect("submit");
    let plan = PlanSpec {
        table: "RunInfos".into(),
        group_by: vec!["RunID".into()],
        aggs: vec![excovery_rpc::AggSpec {
            op: excovery_rpc::AggOp::Count,
            column: None,
            name: Some("nodes".into()),
            q: None,
        }],
        sort_by: Some("RunID".into()),
        ..Default::default()
    };
    // Queued, nothing executed: an empty frame, not a fault.
    let empty = client.query(job_id, &plan).expect("query queued job");
    assert!(empty.columns.is_empty() && empty.rows.is_empty(), "{empty:?}");
    // Poll the live view after every slice; each frame must have one
    // group per completed run.
    let mut live_rows = Vec::new();
    loop {
        server.tick().expect("tick");
        let status = client.status(job_id).expect("status");
        if status.state != JobState::Running {
            break;
        }
        let frame = client.query(job_id, &plan).expect("query running job");
        assert_eq!(
            frame.rows.len() as u64,
            status.runs_completed,
            "one group per completed run: {frame:?}"
        );
        live_rows = frame.rows.clone();
    }
    assert_eq!(client.status(job_id).unwrap().state, JobState::Completed);
    assert_eq!(
        server.standing().query_count(job_id),
        0,
        "completed jobs retire their standing state"
    );
    // The completed package's answer extends the last live frame — the
    // runs both views saw agree cell for cell.
    let final_frame = client.query(job_id, &plan).expect("query completed job");
    assert_eq!(final_frame.rows.len(), 3);
    assert!(!live_rows.is_empty(), "the campaign was observed mid-flight");
    assert_eq!(
        &final_frame.rows[..live_rows.len()],
        &live_rows[..],
        "live frames are a prefix of the final frame"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rpc_round_trip_submits_queries_and_downloads() {
    let root = unique_root("rpc");
    // A tiny results page forces the package download through many
    // `job.results` round trips — the paging real packages need to stay
    // under the 16 MiB frame cap.
    let cfg = ServerConfig {
        results_page_bytes: 1024,
        ..ServerConfig::default()
    };
    let mut server = ExperimentServer::start(&root, cfg).expect("start");
    let client = ServerClient::connect_root(&root).expect("connect via endpoint file");
    let (job_id, created) = client
        .submit(&SubmitRequest {
            tenant: "alice".into(),
            preset: "grid_default".into(),
            description_xml: xmlio::to_xml(&desc_with_seed(2, 88)),
            submit_key: "rpc-key".into(),
        })
        .expect("submit");
    assert!(created);
    // Resubmission over the wire dedups to the original id.
    let (again, created_again) = client
        .submit(&SubmitRequest {
            tenant: "alice".into(),
            preset: "grid_default".into(),
            description_xml: xmlio::to_xml(&desc_with_seed(2, 88)),
            submit_key: "rpc-key".into(),
        })
        .expect("resubmit");
    assert_eq!((again, created_again), (job_id, false));

    let status = client.status(job_id).expect("status");
    assert_eq!(status.state, JobState::Queued);
    assert_eq!(status.runs_total, 2);

    // Deterministic drive: tick the scheduler to completion in-process.
    while !matches!(
        client.status(job_id).unwrap().state,
        JobState::Completed | JobState::Failed
    ) {
        server.tick().expect("tick");
    }
    let status = client.status(job_id).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.digest, Some(reference_digest(2, 88, "grid_default")));

    // Remote analysis: table listing and a server-side query plan.
    let tables = client.tables(job_id).expect("tables");
    assert!(tables.iter().any(|t| t == "Events"), "{tables:?}");
    let frame = client
        .query(
            job_id,
            &PlanSpec {
                table: "RunInfos".into(),
                group_by: vec!["RunID".into()],
                aggs: vec![excovery_rpc::AggSpec {
                    op: excovery_rpc::AggOp::Count,
                    column: None,
                    name: Some("nodes".into()),
                    q: None,
                }],
                sort_by: Some("RunID".into()),
                ..Default::default()
            },
        )
        .expect("query.run");
    assert_eq!(frame.rows.len(), 2, "one group per run: {frame:?}");

    // Package download round-trips through the store layer.
    let results = client.results(job_id).expect("results");
    assert_eq!(results.status.digest, status.digest);
    let tmp = root.join("downloaded.expdb");
    std::fs::write(&tmp, &results.package).unwrap();
    let db = excovery_store::Database::load(&tmp).expect("downloaded package loads");
    assert!(db.table_names().contains(&"Events"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
