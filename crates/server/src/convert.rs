//! Bridges between the rpc wire types and the query crate: cell values,
//! result frames, and server-side execution of serialized query plans.

use excovery_query::{col, lit, Agg, Dataset, Expr, Frame, Value as QueryValue};
use excovery_rpc::{AggOp, AggSpec, CellValue, FilterOp, FilterSpec, PlanSpec, WireFrame};
use excovery_store::Database;

use crate::ServerError;

/// Wire cell → query value.
pub fn cell_to_value(c: &CellValue) -> QueryValue {
    match c {
        CellValue::Null => QueryValue::Null,
        CellValue::I64(v) => QueryValue::I64(*v),
        CellValue::F64(v) => QueryValue::F64(*v),
        CellValue::Str(s) => QueryValue::Str(s.clone()),
        CellValue::Bytes(b) => QueryValue::Bytes(b.clone()),
    }
}

/// Query value → wire cell.
pub fn value_to_cell(v: &QueryValue) -> CellValue {
    match v {
        QueryValue::Null => CellValue::Null,
        QueryValue::I64(i) => CellValue::I64(*i),
        QueryValue::F64(f) => CellValue::F64(*f),
        QueryValue::Str(s) => CellValue::Str(s.clone()),
        QueryValue::Bytes(b) => CellValue::Bytes(b.clone()),
    }
}

/// Query frame → wire frame (row-major copy).
pub fn frame_to_wire(f: &Frame) -> WireFrame {
    WireFrame {
        columns: f.columns.clone(),
        rows: f
            .rows
            .iter()
            .map(|r| r.iter().map(value_to_cell).collect())
            .collect(),
    }
}

fn filter_expr(f: &FilterSpec) -> Expr {
    let lhs = col(&f.column);
    let rhs = lit(cell_to_value(&f.value));
    match f.op {
        FilterOp::Eq => lhs.eq(rhs),
        FilterOp::Ne => lhs.ne(rhs),
        FilterOp::Lt => lhs.lt(rhs),
        FilterOp::Le => lhs.le(rhs),
        FilterOp::Gt => lhs.gt(rhs),
        FilterOp::Ge => lhs.ge(rhs),
    }
}

fn agg_of(a: &AggSpec) -> Result<Agg, ServerError> {
    let input = || {
        a.column
            .clone()
            .ok_or_else(|| ServerError::Query(format!("{} needs an input column", a.op.as_str())))
    };
    let agg = match a.op {
        AggOp::Count => Agg::count(),
        AggOp::Sum => Agg::sum(input()?),
        AggOp::Mean => Agg::mean(input()?),
        AggOp::Min => Agg::min(input()?),
        AggOp::Max => Agg::max(input()?),
    };
    Ok(match &a.name {
        Some(n) => agg.named(n),
        None => agg,
    })
}

/// Executes a serialized plan against a level-3 package: the server side
/// of `query.run`. The plan maps 1:1 onto the query crate's `Scan`
/// builder chain.
pub fn run_plan(db: &Database, plan: &PlanSpec) -> Result<WireFrame, ServerError> {
    let dataset = Dataset::from_database(db).map_err(|e| ServerError::Query(e.to_string()))?;
    let mut scan = dataset.scan(&plan.table);
    if let Some(f) = &plan.filter {
        scan = scan.filter(filter_expr(f));
    }
    if !plan.group_by.is_empty() {
        scan = scan.group_by(plan.group_by.iter().map(String::as_str));
    }
    if !plan.aggs.is_empty() {
        let aggs = plan
            .aggs
            .iter()
            .map(agg_of)
            .collect::<Result<Vec<_>, _>>()?;
        scan = scan.agg(aggs);
    }
    if !plan.select.is_empty() {
        scan = scan.select(plan.select.iter().map(String::as_str));
    }
    if let Some(s) = &plan.sort_by {
        scan = scan.sort_by(s);
    }
    let frame = scan
        .collect()
        .map_err(|e| ServerError::Query(e.to_string()))?;
    Ok(frame_to_wire(&frame))
}
