//! Bridges between the rpc wire types and the query crate.
//!
//! Historically this module hand-mapped a second plan dialect
//! (`FilterSpec`, a private `AggOp` match) onto the query builder; that
//! duplicate vocabulary is gone. [`excovery_rpc::PlanSpec`] is the one
//! serializable logical-plan type, and the query crate itself owns every
//! conversion — this module only re-exports them and adapts error types,
//! so the server cannot drift from local execution semantics.

use excovery_query::Dataset;
use excovery_rpc::{PlanSpec, WireFrame};
use excovery_store::Database;

use crate::ServerError;

/// Wire cell → query value (the query crate's canonical conversion).
pub use excovery_query::cell_to_value;
/// Query value → wire cell (the query crate's canonical conversion).
pub use excovery_query::value_to_cell;

/// Query frame → wire frame, cell for cell: floats keep their bit
/// patterns, so wire digest equality ⇔ frame digest equality.
pub use excovery_query::frame_to_wire;

/// Executes a serialized plan against a level-3 package: the server side
/// of `query.run` for completed jobs. One thin call into the unified
/// plan API — the exact code path `Scan::collect` and standing queries
/// use, so a remote frame is bit-identical to a local one.
pub fn run_plan(db: &Database, plan: &PlanSpec) -> Result<WireFrame, ServerError> {
    let dataset = Dataset::from_database(db).map_err(|e| ServerError::Query(e.to_string()))?;
    let frame = dataset
        .run_spec(plan)
        .map_err(|e| ServerError::Query(e.to_string()))?;
    Ok(frame_to_wire(&frame))
}
