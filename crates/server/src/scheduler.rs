//! The fair-share campaign scheduler.
//!
//! Work is metered in *slices*: a bounded number of runs executed by a
//! resuming [`ExperiMaster`] against the job's level-2 hierarchy. Each
//! [`Scheduler::tick`] picks at least one slice for **every** tenant
//! with runnable work (round-robin, rotating the starting tenant across
//! ticks), fills any remaining worker slots by continuing the rotation,
//! and executes the picked slices on the campaign worker pool
//! ([`run_indexed`], sized by `EXCOVERY_WORKERS` like campaign
//! sharding). With one worker the slices of a round simply serialize —
//! fairness is a property of the pick, not of the parallelism.
//!
//! Crash safety leans entirely on the engine's resume model: every run
//! is journalled in level 2 before its completion marker lands, outcomes
//! are resume-invariant, and each slice runs under a freshly journalled
//! master epoch ([`ServerRepo::begin_slice`]). A server killed at any
//! point — even mid-run — resumes the campaign bit-exactly, and the
//! final digest equals an uninterrupted execution. The completion order
//! (package the level-3 database, *then* journal `Completed`) makes the
//! last window safe too: a crash between the two re-executes a zero-run
//! slice that restores all outcomes and repackages deterministically.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

use excovery_core::master::{EngineConfig, ExperiMaster};
use excovery_desc::xmlio;
use excovery_netsim::campaign::{run_indexed, workers_from_env};
use excovery_obs::{global, Counter, Gauge, Histogram};
use excovery_rpc::{JobId, JobState};
use parking_lot::Mutex;

use crate::repo::{is_terminal, ServerRepo, SliceOutcome};
use crate::standing::StandingRegistry;
use crate::ServerError;

/// Resolves a preset name from [`crate::PRESETS`] to its engine
/// configuration.
pub fn preset_config(name: &str) -> Result<EngineConfig, ServerError> {
    match name {
        "grid_default" => Ok(EngineConfig::grid_default()),
        "wired_lan" => Ok(EngineConfig::wired_lan()),
        "lossy_mesh" => Ok(EngineConfig::lossy_mesh()),
        other => Err(ServerError::UnknownPreset(other.to_string())),
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker-pool width; `0` = auto (available parallelism), the same
    /// contract as campaign sharding's `EXCOVERY_WORKERS`.
    pub workers: usize,
    /// Runs per slice. Smaller slices interleave tenants more finely at
    /// the cost of more master incarnations.
    pub slice_runs: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: workers_from_env(),
            slice_runs: 2,
        }
    }
}

/// One executed slice, as reported by [`Scheduler::tick`].
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// The job the slice ran for.
    pub job_id: JobId,
    /// Its tenant.
    pub tenant: String,
    /// Completed runs before the slice.
    pub runs_before: u64,
    /// Completed runs after the slice.
    pub runs_after: u64,
    /// Job state after the slice.
    pub state: JobState,
}

/// Everything one tick executed.
#[derive(Debug, Clone, Default)]
pub struct RoundReport {
    /// Executed slices, in pick order.
    pub slices: Vec<SliceReport>,
}

impl RoundReport {
    /// `true` when the tick found nothing runnable.
    pub fn is_idle(&self) -> bool {
        self.slices.is_empty()
    }

    /// Tenants whose completed-run count advanced this round (sorted,
    /// deduplicated) — the quantity the fairness property speaks about.
    pub fn tenants_progressed(&self) -> Vec<&str> {
        let mut t: Vec<&str> = self
            .slices
            .iter()
            .filter(|s| s.runs_after > s.runs_before || is_terminal(s.state))
            .map(|s| s.tenant.as_str())
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// Everything a slice needs, captured under the repository lock at pick
/// time so execution runs lock-free.
struct SlicePlan {
    job_id: JobId,
    tenant: String,
    epoch: u64,
    preset: String,
    runs_total: u64,
    runs_before: u64,
    description_path: PathBuf,
    l2_root: PathBuf,
    package_path: PathBuf,
}

struct SchedulerMetrics {
    queue_depth: Gauge,
    active: Gauge,
    completed: Counter,
    failed: Counter,
    schedule_latency: Histogram,
}

impl SchedulerMetrics {
    fn new() -> Self {
        let reg = global();
        SchedulerMetrics {
            queue_depth: reg.gauge("server_queue_depth", &[]),
            active: reg.gauge("server_active_campaigns", &[]),
            completed: reg.counter("server_campaigns_completed_total", &[]),
            failed: reg.counter("server_campaigns_failed_total", &[]),
            schedule_latency: reg.histogram("server_job_schedule_latency_ns", &[]),
        }
    }
}

/// The fair-share scheduler over one [`ServerRepo`].
pub struct Scheduler {
    repo: Arc<Mutex<ServerRepo>>,
    cfg: SchedulerConfig,
    rotation: usize,
    metrics: SchedulerMetrics,
    standing: Arc<StandingRegistry>,
}

impl Scheduler {
    /// Creates a scheduler over `repo` with its own (private) standing
    /// registry.
    pub fn new(repo: Arc<Mutex<ServerRepo>>, cfg: SchedulerConfig) -> Self {
        Self::with_standing(repo, cfg, Arc::new(StandingRegistry::new()))
    }

    /// Creates a scheduler that feeds completed slices into a shared
    /// standing registry (the rpc front serves live frames from it).
    pub fn with_standing(
        repo: Arc<Mutex<ServerRepo>>,
        cfg: SchedulerConfig,
        standing: Arc<StandingRegistry>,
    ) -> Self {
        Scheduler {
            repo,
            cfg,
            rotation: 0,
            metrics: SchedulerMetrics::new(),
            standing,
        }
    }

    /// The standing registry this scheduler refreshes.
    pub fn standing(&self) -> &Arc<StandingRegistry> {
        &self.standing
    }

    /// Executes one scheduling round; returns what ran. An empty report
    /// means the repository had nothing runnable.
    pub fn tick(&mut self) -> Result<RoundReport, ServerError> {
        let plans = self.pick_slices()?;
        if plans.is_empty() {
            self.update_gauges();
            return Ok(RoundReport::default());
        }
        let slice_runs = self.cfg.slice_runs;
        let standing = self.standing.as_ref();
        let outcomes = run_indexed(self.cfg.workers, plans.len(), |i| {
            execute_slice(&plans[i], slice_runs, standing)
        });
        let mut slices = Vec::with_capacity(plans.len());
        {
            let mut repo = self.repo.lock();
            for (plan, outcome) in plans.iter().zip(&outcomes) {
                repo.record_slice(plan.job_id, outcome)?;
                if is_terminal(outcome.state) {
                    // Terminal jobs are served from their packaged
                    // database; standing state is no longer needed.
                    self.standing.retire(plan.job_id);
                }
                match outcome.state {
                    JobState::Completed => self.metrics.completed.inc(),
                    JobState::Failed => self.metrics.failed.inc(),
                    _ => {}
                }
                slices.push(SliceReport {
                    job_id: plan.job_id,
                    tenant: plan.tenant.clone(),
                    runs_before: plan.runs_before,
                    runs_after: outcome.runs_completed,
                    state: outcome.state,
                });
            }
        }
        self.update_gauges();
        Ok(RoundReport { slices })
    }

    /// Ticks until the repository has nothing runnable; returns the
    /// number of non-idle rounds. Deterministic drive for tests and the
    /// CLI's one-shot mode.
    pub fn drain(&mut self) -> Result<usize, ServerError> {
        let mut rounds = 0;
        loop {
            if self.tick()?.is_idle() {
                return Ok(rounds);
            }
            rounds += 1;
        }
    }

    /// Fair pick: every tenant with runnable work gets one slice, then
    /// remaining worker slots continue the round-robin. Claims epochs
    /// and captures slice plans under one repository lock.
    fn pick_slices(&mut self) -> Result<Vec<SlicePlan>, ServerError> {
        let mut repo = self.repo.lock();
        let mut queues: BTreeMap<String, VecDeque<JobId>> = BTreeMap::new();
        for j in repo.jobs() {
            if !is_terminal(j.state) {
                queues
                    .entry(j.tenant.clone())
                    .or_default()
                    .push_back(j.job_id);
            }
        }
        if queues.is_empty() {
            return Ok(Vec::new());
        }
        let tenants: Vec<String> = queues.keys().cloned().collect();
        let slots = resolve_workers(self.cfg.workers).max(tenants.len());
        let start = self.rotation % tenants.len();
        self.rotation = self.rotation.wrapping_add(1);
        let mut picked = Vec::new();
        let mut idx = start;
        let mut misses = 0;
        while picked.len() < slots && misses < tenants.len() {
            let tenant = &tenants[idx % tenants.len()];
            idx += 1;
            match queues.get_mut(tenant).and_then(VecDeque::pop_front) {
                Some(job_id) => {
                    picked.push(job_id);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        let mut plans = Vec::with_capacity(picked.len());
        for job_id in picked {
            let epoch = repo.begin_slice(job_id)?;
            if let Some(t0) = repo.take_submit_instant(job_id) {
                self.metrics
                    .schedule_latency
                    .observe(t0.elapsed().as_nanos() as u64);
            }
            let rec = repo.job(job_id)?;
            plans.push(SlicePlan {
                job_id,
                tenant: rec.tenant.clone(),
                epoch,
                preset: rec.preset.clone(),
                runs_total: rec.runs_total,
                runs_before: rec.runs_completed,
                description_path: repo.description_path(job_id),
                l2_root: repo.l2_root(job_id),
                package_path: repo.package_path(job_id),
            });
        }
        Ok(plans)
    }

    fn update_gauges(&self) {
        let repo = self.repo.lock();
        self.metrics.queue_depth.set(repo.queue_depth() as i64);
        self.metrics.active.set(repo.active_count() as i64);
    }
}

fn resolve_workers(workers: usize) -> usize {
    if workers != 0 {
        workers
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Runs one slice; an engine failure becomes a `Failed` outcome rather
/// than an error, so one broken campaign never wedges the round.
fn execute_slice(plan: &SlicePlan, slice_runs: u64, standing: &StandingRegistry) -> SliceOutcome {
    match run_slice(plan, slice_runs, standing) {
        Ok(outcome) => outcome,
        Err(e) => SliceOutcome {
            runs_completed: plan.runs_before,
            state: JobState::Failed,
            digest: None,
            error: Some(e.to_string()),
        },
    }
}

fn run_slice(
    plan: &SlicePlan,
    slice_runs: u64,
    standing: &StandingRegistry,
) -> Result<SliceOutcome, ServerError> {
    let xml = std::fs::read_to_string(&plan.description_path)
        .map_err(|e| ServerError::Storage(format!("read description: {e}")))?;
    let desc = xmlio::from_xml(&xml).map_err(|e| ServerError::Description(e.to_string()))?;
    let mut cfg = preset_config(&plan.preset)?;
    cfg.l2_root = Some(plan.l2_root.clone());
    cfg.keep_l2 = true;
    cfg.resume = true;
    cfg.epoch = plan.epoch;
    cfg.max_runs = Some((plan.runs_before + slice_runs).min(plan.runs_total));
    let mut master =
        ExperiMaster::new(desc, cfg).map_err(|e| ServerError::Engine(e.to_string()))?;
    let outcome = master
        .execute()
        .map_err(|e| ServerError::Engine(e.to_string()))?;
    let done = outcome.runs.len() as u64;
    if done >= plan.runs_total {
        // Package first, then journal Completed: a crash between the two
        // re-runs a zero-run slice that repackages deterministically.
        outcome.database.save(&plan.package_path)?;
        Ok(SliceOutcome {
            runs_completed: done,
            state: JobState::Completed,
            digest: Some(outcome.digest()),
            error: None,
        })
    } else {
        // Feed the cumulative snapshot into the job's standing queries:
        // each rescans only partitions (runs) it has not seen yet.
        standing.refresh(plan.job_id, &outcome.database)?;
        Ok(SliceOutcome {
            runs_completed: done,
            state: JobState::Running,
            digest: None,
            error: None,
        })
    }
}
