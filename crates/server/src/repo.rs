//! The on-disk level-4 campaign repository.
//!
//! Layout under the repository root:
//!
//! ```text
//! root/
//!   queue.json            crash-durable job journal (atomic temp+rename)
//!   endpoint              bound rpc address of the serving daemon
//!   jobs/<id>/
//!     description.xml     the submitted level-1 artifact, verbatim
//!     l2/                 the campaign's level-2 run hierarchy
//!     results.expdb       the packaged level-3 database, once complete
//! ```
//!
//! `queue.json` is the single source of truth for job metadata. It is
//! rewritten atomically (via [`excovery_store::atomic_write`]) after
//! every state transition, so a SIGKILL at any instant leaves either the
//! old or the new journal — never a torn one. What the journal does
//! *not* record — how many runs of a `Running` job actually finished —
//! is recovered on [`ServerRepo::open`] from the level-2 completion
//! markers, the same journal a resuming `ExperiMaster` trusts.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use excovery_desc::xmlio;
use excovery_rpc::{JobId, JobState, JobStatus, SubmitRequest};
use excovery_store::level2::Level2Store;
use excovery_store::{atomic_write, JsonValue};

use crate::ServerError;

/// `true` for states that will never be scheduled again.
pub fn is_terminal(state: JobState) -> bool {
    matches!(state, JobState::Completed | JobState::Failed)
}

/// Experiment id a single job's package is ingested under — the same id
/// `Dataset::from_database` uses, so frames computed from a standing
/// query and from a one-shot scan of the packaged database agree bit
/// for bit.
pub const DEFAULT_EXPERIMENT: &str = "default";

/// One journalled campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Monotonic server-assigned id.
    pub job_id: JobId,
    /// Submitting tenant — the fair-share unit.
    pub tenant: String,
    /// Experiment name from the description.
    pub name: String,
    /// Engine preset the campaign runs on.
    pub preset: String,
    /// Durable dedup key of the submission.
    pub submit_key: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Master incarnations spent on this job so far. Incremented and
    /// journalled **before** each slice executes, so no two masters —
    /// including one orphaned by a SIGKILL — ever share an epoch, and
    /// their idempotency keys can never collide.
    pub epochs: u64,
    /// Total runs in the campaign's treatment plan.
    pub runs_total: u64,
    /// Runs whose level-2 completion marker has landed.
    pub runs_completed: u64,
    /// `ExperimentOutcome::digest()` once completed.
    pub digest: Option<u64>,
    /// Engine error if the job failed.
    pub error: Option<String>,
}

/// What one executed slice reports back to the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceOutcome {
    /// Completed runs after the slice (restored + executed).
    pub runs_completed: u64,
    /// Resulting state: `Running`, `Completed` or `Failed`.
    pub state: JobState,
    /// Final digest, set exactly when `state` is `Completed`.
    pub digest: Option<u64>,
    /// Engine error, set exactly when `state` is `Failed`.
    pub error: Option<String>,
}

/// The level-4 repository: journalled jobs plus their on-disk artifacts.
pub struct ServerRepo {
    root: PathBuf,
    next_job_id: JobId,
    jobs: Vec<JobRecord>,
    /// In-memory submission instants for the scheduling-latency
    /// histogram; deliberately not journalled (a restored job's latency
    /// would measure downtime, not scheduling).
    submitted_at: HashMap<JobId, Instant>,
}

impl ServerRepo {
    /// Opens (or initializes) the repository at `root`, replaying the
    /// journal. For every non-terminal job the completed-run count is
    /// recovered from its level-2 completion markers, so a repository
    /// killed mid-campaign reports accurate progress immediately.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ServerError> {
        let root = root.into();
        std::fs::create_dir_all(root.join("jobs"))
            .map_err(|e| ServerError::Storage(format!("create {}: {e}", root.display())))?;
        let mut repo = ServerRepo {
            root,
            next_job_id: 1,
            jobs: Vec::new(),
            submitted_at: HashMap::new(),
        };
        let queue = repo.queue_path();
        if queue.exists() {
            let raw = std::fs::read_to_string(&queue)
                .map_err(|e| ServerError::Storage(format!("read queue.json: {e}")))?;
            let doc = JsonValue::parse(&raw)
                .map_err(|e| ServerError::Storage(format!("queue.json: {e}")))?;
            repo.next_job_id = doc
                .get("next_job_id")
                .and_then(JsonValue::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ServerError::Storage("queue.json: bad next_job_id".into()))?;
            for item in doc.get("jobs").and_then(JsonValue::as_array).unwrap_or(&[]) {
                let rec = record_from_json(item)
                    .ok_or_else(|| ServerError::Storage("queue.json: bad job record".into()))?;
                repo.jobs.push(rec);
            }
            for i in 0..repo.jobs.len() {
                if is_terminal(repo.jobs[i].state) {
                    continue;
                }
                let l2 = Level2Store::open(repo.l2_root(repo.jobs[i].job_id))?;
                let done = l2.journal_runs().map(|r| r.len() as u64).unwrap_or(0);
                repo.jobs[i].runs_completed = done;
                repo.jobs[i].state = if done > 0 {
                    JobState::Running
                } else {
                    JobState::Queued
                };
            }
            repo.save()?;
        }
        Ok(repo)
    }

    /// Repository root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the journal file.
    pub fn queue_path(&self) -> PathBuf {
        self.root.join("queue.json")
    }

    /// Path of the daemon's bound-address file under `root`.
    pub fn endpoint_path(root: &Path) -> PathBuf {
        root.join("endpoint")
    }

    /// Directory holding one job's artifacts.
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.root.join("jobs").join(id.to_string())
    }

    /// The submitted level-1 description.
    pub fn description_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("description.xml")
    }

    /// The job's level-2 run hierarchy.
    pub fn l2_root(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("l2")
    }

    /// The packaged level-3 database.
    pub fn package_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("results.expdb")
    }

    /// Accepts a submission. The description must parse and the preset
    /// must be known; the journal entry and the description file are
    /// durable before this returns. A key seen before (per tenant)
    /// dedups: the original id is returned with `created = false`.
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<(JobId, bool), ServerError> {
        if let Some(existing) = self
            .jobs
            .iter()
            .find(|j| j.tenant == req.tenant && j.submit_key == req.submit_key)
        {
            return Ok((existing.job_id, false));
        }
        if !crate::PRESETS.contains(&req.preset.as_str()) {
            return Err(ServerError::UnknownPreset(req.preset.clone()));
        }
        let desc = xmlio::from_xml(&req.description_xml)
            .map_err(|e| ServerError::Description(e.to_string()))?;
        let runs_total = desc.plan().runs.len() as u64;
        let job_id = self.next_job_id;
        self.next_job_id += 1;
        std::fs::create_dir_all(self.job_dir(job_id))
            .map_err(|e| ServerError::Storage(format!("create job dir: {e}")))?;
        atomic_write(
            &self.description_path(job_id),
            req.description_xml.as_bytes(),
        )?;
        self.jobs.push(JobRecord {
            job_id,
            tenant: req.tenant.clone(),
            name: desc.name.clone(),
            preset: req.preset.clone(),
            submit_key: req.submit_key.clone(),
            state: JobState::Queued,
            epochs: 0,
            runs_total,
            runs_completed: 0,
            digest: None,
            error: None,
        });
        self.submitted_at.insert(job_id, Instant::now());
        self.save()?;
        Ok((job_id, true))
    }

    /// All journalled jobs, in id order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// One job's record.
    pub fn job(&self, id: JobId) -> Result<&JobRecord, ServerError> {
        self.jobs
            .iter()
            .find(|j| j.job_id == id)
            .ok_or(ServerError::UnknownJob(id))
    }

    /// One job's wire status.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServerError> {
        Ok(record_status(self.job(id)?))
    }

    /// Every job's wire status, in id order.
    pub fn statuses(&self) -> Vec<JobStatus> {
        self.jobs.iter().map(record_status).collect()
    }

    /// Jobs that still want scheduling.
    pub fn queue_depth(&self) -> usize {
        self.jobs.iter().filter(|j| !is_terminal(j.state)).count()
    }

    /// Jobs currently mid-campaign.
    pub fn active_count(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    /// Claims the next master epoch for a slice of `id` and journals the
    /// claim **before** returning it — the crash-safety half of the
    /// epoch contract (see [`JobRecord::epochs`]).
    pub fn begin_slice(&mut self, id: JobId) -> Result<u64, ServerError> {
        let rec = self.job_mut(id)?;
        if is_terminal(rec.state) {
            return Err(ServerError::Storage(format!(
                "job {id} is {} and cannot be scheduled",
                rec.state
            )));
        }
        let epoch = rec.epochs;
        rec.epochs += 1;
        rec.state = JobState::Running;
        self.save()?;
        Ok(epoch)
    }

    /// Takes the submission instant for the scheduling-latency metric
    /// (first slice only; journal-restored jobs have none).
    pub fn take_submit_instant(&mut self, id: JobId) -> Option<Instant> {
        self.submitted_at.remove(&id)
    }

    /// Journals the result of an executed slice.
    pub fn record_slice(&mut self, id: JobId, outcome: &SliceOutcome) -> Result<(), ServerError> {
        let rec = self.job_mut(id)?;
        rec.runs_completed = outcome.runs_completed;
        rec.state = outcome.state;
        rec.digest = outcome.digest;
        rec.error = outcome.error.clone();
        self.save()
    }

    fn job_mut(&mut self, id: JobId) -> Result<&mut JobRecord, ServerError> {
        self.jobs
            .iter_mut()
            .find(|j| j.job_id == id)
            .ok_or(ServerError::UnknownJob(id))
    }

    fn save(&self) -> Result<(), ServerError> {
        let doc = JsonValue::Object(vec![
            (
                "next_job_id".into(),
                JsonValue::Str(self.next_job_id.to_string()),
            ),
            (
                "jobs".into(),
                JsonValue::Array(self.jobs.iter().map(record_to_json).collect()),
            ),
        ]);
        atomic_write(&self.queue_path(), doc.to_string().as_bytes())?;
        Ok(())
    }
}

fn record_status(r: &JobRecord) -> JobStatus {
    JobStatus {
        job_id: r.job_id,
        tenant: r.tenant.clone(),
        name: r.name.clone(),
        preset: r.preset.clone(),
        state: r.state,
        runs_total: r.runs_total,
        runs_completed: r.runs_completed,
        digest: r.digest,
        error: r.error.clone(),
    }
}

// u64 fields travel as decimal strings, like the rpc codecs: the journal
// must round-trip digests above i64::MAX exactly.
fn record_to_json(r: &JobRecord) -> JsonValue {
    let mut members = vec![
        ("job_id".into(), JsonValue::Str(r.job_id.to_string())),
        ("tenant".into(), JsonValue::str(&r.tenant)),
        ("name".into(), JsonValue::str(&r.name)),
        ("preset".into(), JsonValue::str(&r.preset)),
        ("submit_key".into(), JsonValue::str(&r.submit_key)),
        ("state".into(), JsonValue::str(r.state.as_str())),
        ("epochs".into(), JsonValue::Str(r.epochs.to_string())),
        (
            "runs_total".into(),
            JsonValue::Str(r.runs_total.to_string()),
        ),
        (
            "runs_completed".into(),
            JsonValue::Str(r.runs_completed.to_string()),
        ),
    ];
    if let Some(d) = r.digest {
        members.push(("digest".into(), JsonValue::Str(d.to_string())));
    }
    if let Some(e) = &r.error {
        members.push(("error".into(), JsonValue::str(e)));
    }
    JsonValue::Object(members)
}

fn record_from_json(v: &JsonValue) -> Option<JobRecord> {
    let u64_of =
        |key: &str| -> Option<u64> { v.get(key).and_then(JsonValue::as_str)?.parse().ok() };
    let str_of = |key: &str| -> Option<String> {
        v.get(key).and_then(JsonValue::as_str).map(str::to_string)
    };
    Some(JobRecord {
        job_id: u64_of("job_id")?,
        tenant: str_of("tenant")?,
        name: str_of("name")?,
        preset: str_of("preset")?,
        submit_key: str_of("submit_key")?,
        state: JobState::parse(v.get("state")?.as_str()?)?,
        epochs: u64_of("epochs")?,
        runs_total: u64_of("runs_total")?,
        runs_completed: u64_of("runs_completed")?,
        digest: match v.get("digest") {
            None => None,
            Some(d) => Some(d.as_str()?.parse().ok()?),
        },
        error: match v.get("error") {
            None => None,
            Some(e) => Some(e.as_str()?.to_string()),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use excovery_desc::ExperimentDescription;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "excovery-repo-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(key: &str) -> SubmitRequest {
        // The paper's two-party SD experiment, trimmed of the traffic
        // factors so the plan is exactly one run per replication.
        let mut d = ExperimentDescription::paper_two_party_sd(2);
        d.factors
            .factors
            .retain(|f| f.id != "fact_bw" && f.id != "fact_pairs");
        SubmitRequest {
            tenant: "alice".into(),
            preset: "grid_default".into(),
            description_xml: xmlio::to_xml(&d),
            submit_key: key.into(),
        }
    }

    #[test]
    fn submit_assigns_monotonic_ids_and_dedups_on_the_key() {
        let root = tmp_root("dedup");
        let mut repo = ServerRepo::open(&root).unwrap();
        let (a, created_a) = repo.submit(&request("k1")).unwrap();
        let (b, created_b) = repo.submit(&request("k2")).unwrap();
        let (a2, created_a2) = repo.submit(&request("k1")).unwrap();
        assert!(created_a && created_b && !created_a2);
        assert_eq!((a, b, a2), (1, 2, 1));
        assert_eq!(repo.job(a).unwrap().runs_total, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn journal_replay_restores_jobs_and_the_dedup_table() {
        let root = tmp_root("replay");
        {
            let mut repo = ServerRepo::open(&root).unwrap();
            repo.submit(&request("k1")).unwrap();
            let epoch = repo.begin_slice(1).unwrap();
            assert_eq!(epoch, 0);
        }
        let mut repo = ServerRepo::open(&root).unwrap();
        // No run completed, so the replay demotes the claim to Queued —
        // but the epoch stays burned.
        assert_eq!(repo.job(1).unwrap().state, JobState::Queued);
        assert_eq!(repo.job(1).unwrap().epochs, 1);
        let (id, created) = repo.submit(&request("k1")).unwrap();
        assert_eq!((id, created), (1, false));
        assert_eq!(repo.begin_slice(1).unwrap(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submit_rejects_bad_presets_and_bad_xml() {
        let root = tmp_root("reject");
        let mut repo = ServerRepo::open(&root).unwrap();
        let mut bad = request("k1");
        bad.preset = "marsbase".into();
        assert!(matches!(
            repo.submit(&bad),
            Err(ServerError::UnknownPreset(_))
        ));
        let mut garbled = request("k2");
        garbled.description_xml = "<not an experiment>".into();
        assert!(matches!(
            repo.submit(&garbled),
            Err(ServerError::Description(_))
        ));
        assert!(repo.jobs().is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn record_json_roundtrips_including_large_digests() {
        let rec = JobRecord {
            job_id: 7,
            tenant: "t".into(),
            name: "n".into(),
            preset: "wired_lan".into(),
            submit_key: "k".into(),
            state: JobState::Completed,
            epochs: 3,
            runs_total: 12,
            runs_completed: 12,
            digest: Some(u64::MAX - 1),
            error: None,
        };
        assert_eq!(record_from_json(&record_to_json(&rec)), Some(rec));
    }
}
