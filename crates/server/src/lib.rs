//! # excovery-server
//!
//! The experiment *server*: a daemon that accepts level-1 experiment
//! descriptions over the framed rpc protocol, persists them in a
//! level-4 campaign repository, executes them concurrently under a
//! fair-share scheduler, and serves remote analysis queries against the
//! finished level-3 packages.
//!
//! The paper's storage model (§IV-F, Table I) stops at level 4 — "a
//! repository integrating multiple experiments" — without realizing it.
//! This crate is that realization, extended into a long-running service
//! the way the paper's testbed deployment (§VI) implies: experimenters
//! hand descriptions to a central coordinator and fetch conditioned
//! results later.
//!
//! Structure:
//!
//! * [`repo`] — the on-disk L4 repository: a crash-durable `queue.json`
//!   journal (atomic temp+rename writes), one directory per job holding
//!   the level-1 description, the level-2 run hierarchy and the packaged
//!   level-3 database. Submissions carry a durable idempotency key;
//!   resubmitting the same key returns the original [`excovery_rpc::JobId`].
//! * [`scheduler`] — the fair-share scheduler. Each tick gives every
//!   tenant with runnable work at least one *slice* (a bounded number of
//!   runs executed by a resuming [`excovery_core::master::ExperiMaster`]),
//!   interleaved round-robin and executed on the campaign worker pool.
//!   Because every run is journalled in level 2 and outcomes are
//!   resume-invariant, a server killed mid-campaign resumes bit-exactly:
//!   the final `ExperimentOutcome::digest()` equals an uninterrupted
//!   reference execution.
//! * [`server`] — the rpc front: `job.submit`/`job.status`/`job.list`/
//!   `job.results` plus `query.tables`/`query.run`, which executes
//!   serialized query plans server-side and ships `Frame`s back over the
//!   wire. `query.run` against a *running* job answers from the standing
//!   registry — a live, incrementally refreshed view of the campaign.
//! * [`standing`] — [`StandingRegistry`]: per-job
//!   [`excovery_query::StandingQuery`] instances the scheduler refreshes
//!   after every slice, giving clients progress frames bit-identical to
//!   a one-shot scan of the runs completed so far.
//! * [`client`] — [`ServerClient`], the typed client used by the
//!   `excovery` CLI verbs (`serve`, `submit`, `status`, `results`) and
//!   the integration tests.
//! * [`convert`] — thin adapters over the query crate's canonical
//!   wire conversions; [`excovery_rpc::PlanSpec`] is the one
//!   serializable plan vocabulary end-to-end.

pub mod client;
pub mod convert;
pub mod repo;
pub mod scheduler;
pub mod server;
pub mod standing;

pub use client::ServerClient;
pub use convert::{cell_to_value, frame_to_wire, run_plan, value_to_cell};
pub use repo::{is_terminal, JobRecord, ServerRepo, SliceOutcome, DEFAULT_EXPERIMENT};
pub use scheduler::{preset_config, RoundReport, Scheduler, SchedulerConfig, SliceReport};
pub use server::{read_endpoint, ExperimentServer, ServerConfig};
pub use standing::StandingRegistry;

/// Engine presets a submission may name (see
/// [`scheduler::preset_config`]).
pub const PRESETS: &[&str] = &["grid_default", "wired_lan", "lossy_mesh"];

/// Errors of the server subsystem.
#[derive(Debug)]
pub enum ServerError {
    /// Filesystem or journal failure in the L4 repository.
    Storage(String),
    /// The submitted description XML did not parse.
    Description(String),
    /// The submission named a preset outside [`PRESETS`].
    UnknownPreset(String),
    /// No job with this id exists.
    UnknownJob(excovery_rpc::JobId),
    /// Results were requested for a job that has not completed.
    NotCompleted(excovery_rpc::JobId),
    /// The experiment engine failed while executing a slice.
    Engine(String),
    /// A remote query plan failed to execute.
    Query(String),
    /// Client-side rpc failure.
    Rpc(excovery_rpc::RpcError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Storage(m) => write!(f, "storage: {m}"),
            ServerError::Description(m) => write!(f, "description: {m}"),
            ServerError::UnknownPreset(p) => write!(f, "unknown preset '{p}'"),
            ServerError::UnknownJob(id) => write!(f, "no such job {id}"),
            ServerError::NotCompleted(id) => write!(f, "job {id} has not completed"),
            ServerError::Engine(m) => write!(f, "engine: {m}"),
            ServerError::Query(m) => write!(f, "query: {m}"),
            ServerError::Rpc(e) => write!(f, "rpc: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<excovery_store::StoreError> for ServerError {
    fn from(e: excovery_store::StoreError) -> Self {
        ServerError::Storage(e.to_string())
    }
}

impl From<excovery_rpc::RpcError> for ServerError {
    fn from(e: excovery_rpc::RpcError) -> Self {
        ServerError::Rpc(e)
    }
}
