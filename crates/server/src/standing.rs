//! Standing queries over running campaigns.
//!
//! `query.run` historically served completed packages only; a live
//! campaign was a black box until its last run landed. The
//! [`StandingRegistry`] closes that gap: the scheduler feeds each job's
//! cumulative database snapshot in after every slice, and any plan a
//! client asks about while the job is still running becomes a
//! [`excovery_query::StandingQuery`] that refreshes incrementally —
//! completed-run partitions are scanned once, ever, no matter how many
//! times the client polls or how many slices land.
//!
//! Frames served this way are **bit-identical** to a one-shot
//! `run_plan` over the same snapshot (the incremental layer's
//! determinism contract), so a client polling a running job and a
//! client querying the finished package can never disagree about the
//! runs both have seen.

use std::collections::HashMap;

use excovery_query::StandingQuery;
use excovery_rpc::{pack_plan, JobId, MethodCall, PlanSpec, WireFrame};
use excovery_store::Database;
use parking_lot::Mutex;

use crate::convert::frame_to_wire;
use crate::ServerError;

/// Per-job standing state.
#[derive(Default)]
struct JobStanding {
    /// The job's latest cumulative database, kept so a plan registered
    /// *between* slices starts from the runs already completed instead
    /// of an empty frame.
    snapshot: Option<Database>,
    /// Plan key (canonical wire XML) → maintained standing query.
    queries: HashMap<String, StandingQuery>,
}

/// Standing queries of all running jobs, shared by the scheduler (which
/// refreshes) and the rpc front (which serves).
#[derive(Default)]
pub struct StandingRegistry {
    jobs: Mutex<HashMap<JobId, JobStanding>>,
}

/// The canonical identity of a plan: its packed wire XML. Two plans
/// serialize identically iff they are the same plan, so this is the
/// dedup key for standing queries.
fn plan_key(plan: &PlanSpec) -> String {
    MethodCall::new("q", vec![pack_plan(plan)]).to_xml()
}

impl StandingRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a job's cumulative database snapshot in: every standing
    /// query registered for the job rescans only partitions it has not
    /// seen. Called by the scheduler after each slice.
    pub fn refresh(&self, id: JobId, db: &Database) -> Result<(), ServerError> {
        let mut jobs = self.jobs.lock();
        let standing = jobs.entry(id).or_default();
        for query in standing.queries.values_mut() {
            query
                .ingest_package(crate::repo::DEFAULT_EXPERIMENT, db)
                .map_err(|e| ServerError::Query(e.to_string()))?;
        }
        standing.snapshot = Some(db.clone());
        Ok(())
    }

    /// Serves `plan` for a job that has not completed: registers a
    /// standing query on first sight (seeded from the job's latest
    /// snapshot, if any slice has landed), then returns its current
    /// frame. Before any slice has landed the frame is empty — zero
    /// columns, zero rows — and fills in as the campaign progresses.
    pub fn frame(&self, id: JobId, plan: &PlanSpec) -> Result<WireFrame, ServerError> {
        let mut jobs = self.jobs.lock();
        let standing = jobs.entry(id).or_default();
        let key = plan_key(plan);
        if !standing.queries.contains_key(&key) {
            let mut query = StandingQuery::new(plan.clone());
            if let Some(db) = &standing.snapshot {
                query
                    .ingest_package(crate::repo::DEFAULT_EXPERIMENT, db)
                    .map_err(|e| ServerError::Query(e.to_string()))?;
            }
            standing.queries.insert(key.clone(), query);
        }
        let query = &standing.queries[&key];
        if query.refreshes() == 0 {
            // Nothing ingested yet: the plan's table cannot exist. An
            // empty frame (not a fault) tells the client to poll again.
            return Ok(WireFrame {
                columns: Vec::new(),
                rows: Vec::new(),
            });
        }
        let frame = query
            .frame()
            .map_err(|e| ServerError::Query(e.to_string()))?;
        Ok(frame_to_wire(&frame))
    }

    /// Drops a job's standing state (terminal jobs are served from their
    /// packaged database instead).
    pub fn retire(&self, id: JobId) {
        self.jobs.lock().remove(&id);
    }

    /// Number of standing queries currently maintained for a job.
    pub fn query_count(&self, id: JobId) -> usize {
        self.jobs
            .lock()
            .get(&id)
            .map_or(0, |s| s.queries.len())
    }
}
