//! The rpc front of the experiment server: method handlers, the
//! listening daemon, and its deterministic test drive.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use excovery_rpc::{
    job, pack_frame, pack_results_page, pack_status, pack_status_list, pack_submit_response,
    unpack_plan, unpack_submit, Fault, JobId, JobState, MethodCall, ResultsPage, ServerRegistry,
    TcpRpcServer, Value, FAULT_INTERNAL_ERROR, FAULT_PARSE_ERROR,
};
use excovery_store::{atomic_write, Database};
use parking_lot::Mutex;

use crate::convert::run_plan;
use crate::repo::ServerRepo;
use crate::scheduler::{RoundReport, Scheduler, SchedulerConfig};
use crate::standing::StandingRegistry;
use crate::ServerError;

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; `127.0.0.1:0` binds an ephemeral port that is
    /// published in the repository's `endpoint` file.
    pub addr: String,
    /// Scheduler knobs.
    pub scheduler: SchedulerConfig,
    /// Sleep between scheduler rounds when nothing is runnable.
    pub poll: Duration,
    /// Page size for `job.results` downloads. Packages larger than one
    /// page ship in multiple round trips; the default keeps each frame
    /// under the wire codec's 16 MiB cap after Base64 expansion.
    pub results_page_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
            poll: Duration::from_millis(20),
            results_page_bytes: job::RESULTS_PAGE_BYTES,
        }
    }
}

/// A running experiment server: bound rpc endpoint plus the scheduler
/// over the level-4 repository. Dropping it stops the listener; jobs
/// stay journalled and resume on the next start.
pub struct ExperimentServer {
    repo: Arc<Mutex<ServerRepo>>,
    scheduler: Scheduler,
    standing: Arc<StandingRegistry>,
    rpc: TcpRpcServer,
    poll: Duration,
}

impl ExperimentServer {
    /// Opens (or replays) the repository at `root`, binds the rpc
    /// endpoint and publishes its address in `root/endpoint`. The
    /// scheduler does not run yet: drive it with [`Self::tick`] (tests)
    /// or [`Self::run`] (daemon).
    pub fn start(root: impl Into<PathBuf>, cfg: ServerConfig) -> Result<Self, ServerError> {
        let root = root.into();
        let repo = Arc::new(Mutex::new(ServerRepo::open(&root)?));
        let standing = Arc::new(StandingRegistry::new());
        let registry = build_registry(
            Arc::clone(&repo),
            Arc::clone(&standing),
            cfg.results_page_bytes.max(1),
        );
        let rpc = TcpRpcServer::bind(cfg.addr.as_str(), registry)
            .map_err(|e| ServerError::Storage(format!("bind {}: {e}", cfg.addr)))?;
        atomic_write(
            &ServerRepo::endpoint_path(&root),
            rpc.local_addr().to_string().as_bytes(),
        )?;
        let scheduler =
            Scheduler::with_standing(Arc::clone(&repo), cfg.scheduler, Arc::clone(&standing));
        Ok(ExperimentServer {
            repo,
            scheduler,
            standing,
            rpc,
            poll: cfg.poll,
        })
    }

    /// The bound rpc address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.rpc.local_addr()
    }

    /// The shared repository handle (introspection, tests).
    pub fn repo(&self) -> &Arc<Mutex<ServerRepo>> {
        &self.repo
    }

    /// The standing-query registry serving live campaign frames.
    pub fn standing(&self) -> &Arc<StandingRegistry> {
        &self.standing
    }

    /// Executes one scheduler round (deterministic drive).
    pub fn tick(&mut self) -> Result<RoundReport, ServerError> {
        self.scheduler.tick()
    }

    /// Serves until `stop` returns `true`, sleeping [`ServerConfig::poll`]
    /// between idle rounds.
    pub fn run_until(&mut self, stop: impl Fn() -> bool) -> Result<(), ServerError> {
        while !stop() {
            if self.tick()?.is_idle() {
                std::thread::sleep(self.poll);
            }
        }
        Ok(())
    }

    /// Serves forever (the CLI daemon loop; killed by signal).
    pub fn run(&mut self) -> Result<(), ServerError> {
        self.run_until(|| false)
    }

    /// Stops accepting rpc connections.
    pub fn shutdown(&self) {
        self.rpc.shutdown();
    }
}

/// Reads the bound address a serving daemon published under `root`.
pub fn read_endpoint(root: &Path) -> Result<String, ServerError> {
    std::fs::read_to_string(ServerRepo::endpoint_path(root))
        .map(|s| s.trim().to_string())
        .map_err(|e| ServerError::Storage(format!("read endpoint: {e}")))
}

fn fault_of(e: ServerError) -> Fault {
    let code = match &e {
        ServerError::Description(_) | ServerError::UnknownPreset(_) => FAULT_PARSE_ERROR,
        _ => FAULT_INTERNAL_ERROR,
    };
    Fault::new(code, e.to_string())
}

fn job_id_param(params: &[Value], method: &str) -> Result<JobId, Fault> {
    params
        .first()
        .and_then(Value::as_str)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            Fault::new(
                FAULT_PARSE_ERROR,
                format!("{method}: expected a job id string parameter"),
            )
        })
}

fn completed_package(repo: &ServerRepo, id: JobId) -> Result<(PathBuf, JobState), ServerError> {
    let rec = repo.job(id)?;
    if rec.state != JobState::Completed {
        return Err(ServerError::NotCompleted(id));
    }
    Ok((repo.package_path(id), rec.state))
}

fn build_registry(
    repo: Arc<Mutex<ServerRepo>>,
    standing: Arc<StandingRegistry>,
    page_bytes: u64,
) -> Arc<Mutex<ServerRegistry>> {
    let mut reg = ServerRegistry::new();

    let r = Arc::clone(&repo);
    reg.register(job::JOB_SUBMIT, move |params| {
        let call = MethodCall::new(job::JOB_SUBMIT, params.to_vec());
        let req = unpack_submit(&call)?;
        let (job_id, created) = r.lock().submit(&req).map_err(fault_of)?;
        Ok(pack_submit_response(job_id, created))
    });

    let r = Arc::clone(&repo);
    reg.register(job::JOB_STATUS, move |params| {
        let id = job_id_param(params, job::JOB_STATUS)?;
        let status = r.lock().status(id).map_err(fault_of)?;
        Ok(pack_status(&status))
    });

    let r = Arc::clone(&repo);
    reg.register(job::JOB_LIST, move |_params| {
        Ok(pack_status_list(&r.lock().statuses()))
    });

    let r = Arc::clone(&repo);
    reg.register(job::JOB_RESULTS, move |params| {
        let id = job_id_param(params, job::JOB_RESULTS)?;
        // Optional second parameter: the page offset (decimal string).
        let offset = match params.get(1) {
            None => 0,
            Some(v) => v
                .as_str()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    Fault::new(
                        FAULT_PARSE_ERROR,
                        format!("{}: offset must be a u64 string", job::JOB_RESULTS),
                    )
                })?,
        };
        let (status, package_path) = {
            let repo = r.lock();
            let (path, _) = completed_package(&repo, id).map_err(fault_of)?;
            (repo.status(id).map_err(fault_of)?, path)
        };
        let chunk_err =
            |e: std::io::Error| fault_of(ServerError::Storage(format!("read package: {e}")));
        let mut file = std::fs::File::open(&package_path).map_err(chunk_err)?;
        let total = file.metadata().map_err(chunk_err)?.len();
        let len = total.saturating_sub(offset.min(total)).min(page_bytes);
        let mut chunk = vec![0u8; len as usize];
        use std::io::{Read, Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset.min(total)))
            .map_err(chunk_err)?;
        file.read_exact(&mut chunk).map_err(chunk_err)?;
        Ok(pack_results_page(&ResultsPage {
            status,
            total,
            offset: offset.min(total),
            chunk,
        }))
    });

    let r = Arc::clone(&repo);
    reg.register(job::QUERY_TABLES, move |params| {
        let id = job_id_param(params, job::QUERY_TABLES)?;
        let path = {
            let repo = r.lock();
            completed_package(&repo, id).map_err(fault_of)?.0
        };
        let db =
            Database::load(&path).map_err(|e| fault_of(ServerError::Storage(e.to_string())))?;
        Ok(Value::Array(
            db.table_names().into_iter().map(Value::str).collect(),
        ))
    });

    let r = Arc::clone(&repo);
    reg.register(job::QUERY_RUN, move |params| {
        let id = job_id_param(params, job::QUERY_RUN)?;
        let plan_value = params.get(1).ok_or_else(|| {
            Fault::new(
                FAULT_PARSE_ERROR,
                format!("{}: expected [job id, plan]", job::QUERY_RUN),
            )
        })?;
        let plan = unpack_plan(plan_value)?;
        let state = {
            let repo = r.lock();
            repo.job(id).map_err(fault_of)?.state
        };
        let frame = match state {
            // Completed jobs answer from the packaged level-3 database.
            JobState::Completed => {
                let path = {
                    let repo = r.lock();
                    completed_package(&repo, id).map_err(fault_of)?.0
                };
                let db = Database::load(&path)
                    .map_err(|e| fault_of(ServerError::Storage(e.to_string())))?;
                run_plan(&db, &plan).map_err(fault_of)?
            }
            JobState::Failed => return Err(fault_of(ServerError::NotCompleted(id))),
            // Queued/running jobs answer from the standing registry:
            // a live, incrementally refreshed view of the campaign so
            // far (empty until the first slice lands).
            _ => standing.frame(id, &plan).map_err(fault_of)?,
        };
        Ok(pack_frame(&frame))
    });

    Arc::new(Mutex::new(reg))
}
