//! Typed client for the experiment server, used by the `excovery` CLI
//! verbs and the integration tests.

use std::path::Path;

use excovery_rpc::{
    job, pack_plan, pack_submit, response_to_result, unpack_frame, unpack_results_page,
    unpack_status, unpack_status_list, unpack_submit_response, JobId, JobResults, JobStatus,
    MethodCall, PlanSpec, RpcError, SubmitRequest, TcpOptions, TcpTransport, Transport, Value,
    WireFrame,
};

use crate::server::read_endpoint;
use crate::ServerError;

/// A connection to a running experiment server.
pub struct ServerClient {
    transport: TcpTransport,
}

impl ServerClient {
    /// Connects to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Self, ServerError> {
        // Analysis calls (query.*, job.results pages) load multi-ten-MB
        // packages server-side before answering, so the per-call budget
        // is far above the control-plane default.
        let opts = TcpOptions {
            call_timeout: std::time::Duration::from_secs(120),
            ..TcpOptions::default()
        };
        Ok(ServerClient {
            transport: TcpTransport::connect(addr, opts)?,
        })
    }

    /// Connects to the daemon serving the repository at `root`, via its
    /// published `endpoint` file.
    pub fn connect_root(root: &Path) -> Result<Self, ServerError> {
        Self::connect(&read_endpoint(root)?)
    }

    fn call(&self, call: MethodCall) -> Result<Value, ServerError> {
        let resp = self.transport.call(&call)?;
        Ok(response_to_result(resp)?)
    }

    /// Submits a campaign; returns `(job id, created)`. `created` is
    /// `false` when the submit key dedup'd to an earlier job.
    pub fn submit(&self, req: &SubmitRequest) -> Result<(JobId, bool), ServerError> {
        let v = self.call(pack_submit(req))?;
        Ok(unpack_submit_response(&v)?)
    }

    /// One job's status.
    pub fn status(&self, id: JobId) -> Result<JobStatus, ServerError> {
        let v = self.call(MethodCall::new(
            job::JOB_STATUS,
            vec![Value::str(id.to_string())],
        ))?;
        Ok(unpack_status(&v)?)
    }

    /// All jobs' statuses, in id order.
    pub fn list(&self) -> Result<Vec<JobStatus>, ServerError> {
        let v = self.call(MethodCall::new(job::JOB_LIST, Vec::new()))?;
        Ok(unpack_status_list(&v)?)
    }

    /// Final status plus the packaged level-3 database of a completed
    /// job, assembled from as many `job.results` pages as the package
    /// needs (each page stays under the 16 MiB frame cap).
    pub fn results(&self, id: JobId) -> Result<JobResults, ServerError> {
        let mut package = Vec::new();
        loop {
            let v = self.call(MethodCall::new(
                job::JOB_RESULTS,
                vec![
                    Value::str(id.to_string()),
                    Value::str(package.len().to_string()),
                ],
            ))?;
            let page = unpack_results_page(&v)?;
            if page.offset != package.len() as u64 {
                return Err(ServerError::Rpc(RpcError::Codec(format!(
                    "job.results: expected page at offset {}, got {}",
                    package.len(),
                    page.offset
                ))));
            }
            if page.chunk.is_empty() && page.total != page.offset {
                return Err(ServerError::Rpc(RpcError::Codec(
                    "job.results: empty page before the end of the package".into(),
                )));
            }
            package.extend_from_slice(&page.chunk);
            if package.len() as u64 >= page.total {
                return Ok(JobResults {
                    status: page.status,
                    package,
                });
            }
        }
    }

    /// Table names of a completed job's package.
    pub fn tables(&self, id: JobId) -> Result<Vec<String>, ServerError> {
        let v = self.call(MethodCall::new(
            job::QUERY_TABLES,
            vec![Value::str(id.to_string())],
        ))?;
        match &v {
            Value::Array(items) => items
                .iter()
                .map(|t| {
                    t.as_str().map(str::to_string).ok_or_else(|| {
                        ServerError::Rpc(excovery_rpc::RpcError::Codec(
                            "query.tables: non-string table name".into(),
                        ))
                    })
                })
                .collect(),
            _ => Err(ServerError::Rpc(excovery_rpc::RpcError::Codec(
                "query.tables: expected an array".into(),
            ))),
        }
    }

    /// Runs a serialized query plan server-side against a completed
    /// job's package.
    pub fn query(&self, id: JobId, plan: &PlanSpec) -> Result<WireFrame, ServerError> {
        let v = self.call(MethodCall::new(
            job::QUERY_RUN,
            vec![Value::str(id.to_string()), pack_plan(plan)],
        ))?;
        Ok(unpack_frame(&v)?)
    }
}
