//! Error type for XML parsing and validation.

use std::fmt;

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// An error raised while parsing or validating XML.
///
/// Every parse error carries the 1-based line and column where the problem
/// was detected so experiment-description mistakes can be reported precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Classification of the failure.
    pub kind: XmlErrorKind,
    /// Human-readable explanation.
    pub message: String,
    /// 1-based line of the error, 0 if not applicable.
    pub line: usize,
    /// 1-based column of the error, 0 if not applicable.
    pub column: usize,
}

/// Classification of an [`XmlError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XmlErrorKind {
    /// The byte stream was not well-formed XML.
    Syntax,
    /// An end tag did not match the open element.
    TagMismatch,
    /// The document ended inside an open construct.
    UnexpectedEof,
    /// An entity or character reference could not be resolved.
    BadReference,
    /// A structural expectation failed (e.g. missing required child).
    Validation,
}

impl XmlError {
    /// Creates a new error at the given position.
    pub fn new(kind: XmlErrorKind, message: impl Into<String>, line: usize, column: usize) -> Self {
        Self {
            kind,
            message: message.into(),
            line,
            column,
        }
    }

    /// Creates a validation error without position information.
    pub fn validation(message: impl Into<String>) -> Self {
        Self::new(XmlErrorKind::Validation, message, 0, 0)
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{:?} at {}:{}: {}",
                self.kind, self.line, self.column, self.message
            )
        } else {
            write!(f, "{:?}: {}", self.kind, self.message)
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(XmlErrorKind::Syntax, "unexpected '<'", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("unexpected '<'"), "{s}");
    }

    #[test]
    fn validation_has_no_position() {
        let e = XmlError::validation("missing child");
        assert_eq!(e.line, 0);
        assert!(!e.to_string().contains("0:0"));
    }
}
