//! Entity escaping and unescaping.
//!
//! Handles the five predefined XML entities (`&lt;`, `&gt;`, `&amp;`,
//! `&apos;`, `&quot;`) and decimal/hexadecimal character references
//! (`&#108;`, `&#x6C;`).

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use std::borrow::Cow;

/// Replacement for one text-context byte, or `None` if it passes through.
fn text_escape(b: u8) -> Option<&'static str> {
    match b {
        b'&' => Some("&amp;"),
        b'<' => Some("&lt;"),
        b'>' => Some("&gt;"),
        _ => None,
    }
}

/// Replacement for one attribute-context byte, or `None` if it passes
/// through.
fn attr_escape(b: u8) -> Option<&'static str> {
    match b {
        b'&' => Some("&amp;"),
        b'<' => Some("&lt;"),
        b'>' => Some("&gt;"),
        b'"' => Some("&quot;"),
        b'\'' => Some("&apos;"),
        b'\n' => Some("&#10;"),
        b'\t' => Some("&#9;"),
        _ => None,
    }
}

/// Escapes with `table`, borrowing the input when nothing needs escaping.
///
/// Every byte `table` replaces is ASCII, so the byte scan never matches
/// inside a multi-byte UTF-8 sequence and `first` is a char boundary.
fn escape_with(s: &str, table: fn(u8) -> Option<&'static str>) -> Cow<'_, str> {
    let Some(first) = s.bytes().position(|b| table(b).is_some()) else {
        return Cow::Borrowed(s);
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match u8::try_from(c).ok().and_then(table) {
            Some(rep) => out.push_str(rep),
            None => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escapes a string for use as element text content.
///
/// Only `&`, `<` and `>` are replaced; quotes are legal inside text.
/// Returns the input unchanged (and unallocated) when it contains none of
/// them — the common case for event names and numeric parameter values.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, text_escape)
}

/// Escapes a string for use inside a double-quoted attribute value.
///
/// Borrows the input when nothing needs escaping, like [`escape_text`].
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, attr_escape)
}

/// Resolves entity and character references in raw text.
///
/// `line`/`column` are used only for error reporting.
pub fn unescape(s: &str, line: usize, column: usize) -> XmlResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let end = rest.find(';').ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::BadReference,
                "unterminated entity reference",
                line,
                column,
            )
        })?;
        let name = &rest[..end];
        let resolved = resolve_entity(name).ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::BadReference,
                format!("unknown entity '&{name};'"),
                line,
                column,
            )
        })?;
        out.push(resolved);
        // Skip the entity body plus the ';'.
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let body = name.strip_prefix('#')?;
            let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                body.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let raw = "a < b && c > d";
        let esc = escape_text(raw);
        assert_eq!(esc, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&esc, 1, 1).unwrap(), raw);
    }

    #[test]
    fn roundtrip_attr_quotes() {
        let raw = "say \"hi\" & 'bye'";
        let esc = escape_attr(raw);
        assert!(!esc.contains('"'));
        assert_eq!(unescape(&esc, 1, 1).unwrap(), raw);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#108;&#x6C;&#X6C;", 1, 1).unwrap(), "lll");
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(unescape("&nope;", 1, 1).is_err());
    }

    #[test]
    fn unterminated_entity_is_error() {
        assert!(unescape("a &lt b", 1, 1).is_err());
    }

    #[test]
    fn bad_codepoint_is_error() {
        // 0xD800 is a surrogate, not a valid char.
        assert!(unescape("&#xD800;", 1, 1).is_err());
    }

    #[test]
    fn plain_string_passthrough() {
        assert_eq!(unescape("hello", 1, 1).unwrap(), "hello");
    }

    #[test]
    fn attr_escapes_whitespace_controls() {
        assert_eq!(escape_attr("a\tb\nc"), "a&#9;b&#10;c");
    }

    #[test]
    fn clean_text_borrows_input() {
        let raw = "plain text with spaces, quotes \" and unicode äöü";
        assert!(matches!(escape_text(raw), Cow::Borrowed(s) if std::ptr::eq(s, raw)));
    }

    #[test]
    fn clean_attr_borrows_input() {
        let raw = "run-17_treatment=fact_loss";
        assert!(matches!(escape_attr(raw), Cow::Borrowed(s) if std::ptr::eq(s, raw)));
    }

    #[test]
    fn dirty_input_allocates_once_escaped() {
        assert!(matches!(escape_text("a&b"), Cow::Owned(_)));
        assert!(matches!(escape_attr("a\"b"), Cow::Owned(_)));
    }

    #[test]
    fn multibyte_around_escapes_survive() {
        assert_eq!(escape_text("ä<ö>ü&ß"), "ä&lt;ö&gt;ü&amp;ß");
        assert_eq!(escape_attr("日\"本"), "日&quot;本");
        // Escapable char after a clean multi-byte prefix.
        assert_eq!(escape_text("héllo & wörld"), "héllo &amp; wörld");
    }

    #[test]
    fn escape_at_boundaries() {
        assert_eq!(escape_text("<x"), "&lt;x");
        assert_eq!(escape_text("x>"), "x&gt;");
        assert_eq!(escape_text("&"), "&amp;");
        assert_eq!(escape_text(""), "");
    }
}
