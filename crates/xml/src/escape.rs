//! Entity escaping and unescaping.
//!
//! Handles the five predefined XML entities (`&lt;`, `&gt;`, `&amp;`,
//! `&apos;`, `&quot;`) and decimal/hexadecimal character references
//! (`&#108;`, `&#x6C;`).

use crate::error::{XmlError, XmlErrorKind, XmlResult};

/// Escapes a string for use as element text content.
///
/// Only `&`, `<` and `>` are replaced; quotes are legal inside text.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolves entity and character references in raw text.
///
/// `line`/`column` are used only for error reporting.
pub fn unescape(s: &str, line: usize, column: usize) -> XmlResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &s[i + 1..];
        let end = rest.find(';').ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::BadReference,
                "unterminated entity reference",
                line,
                column,
            )
        })?;
        let name = &rest[..end];
        let resolved = resolve_entity(name).ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::BadReference,
                format!("unknown entity '&{name};'"),
                line,
                column,
            )
        })?;
        out.push(resolved);
        // Skip the entity body plus the ';'.
        for _ in 0..=end {
            chars.next();
        }
    }
    Ok(out)
}

fn resolve_entity(name: &str) -> Option<char> {
    match name {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let body = name.strip_prefix('#')?;
            let code = if let Some(hex) = body.strip_prefix('x').or_else(|| body.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                body.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let raw = "a < b && c > d";
        let esc = escape_text(raw);
        assert_eq!(esc, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&esc, 1, 1).unwrap(), raw);
    }

    #[test]
    fn roundtrip_attr_quotes() {
        let raw = "say \"hi\" & 'bye'";
        let esc = escape_attr(raw);
        assert!(!esc.contains('"'));
        assert_eq!(unescape(&esc, 1, 1).unwrap(), raw);
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#108;&#x6C;&#X6C;", 1, 1).unwrap(), "lll");
    }

    #[test]
    fn unknown_entity_is_error() {
        assert!(unescape("&nope;", 1, 1).is_err());
    }

    #[test]
    fn unterminated_entity_is_error() {
        assert!(unescape("a &lt b", 1, 1).is_err());
    }

    #[test]
    fn bad_codepoint_is_error() {
        // 0xD800 is a surrogate, not a valid char.
        assert!(unescape("&#xD800;", 1, 1).is_err());
    }

    #[test]
    fn plain_string_passthrough() {
        assert_eq!(unescape("hello", 1, 1).unwrap(), "hello");
    }

    #[test]
    fn attr_escapes_whitespace_controls() {
        assert_eq!(escape_attr("a\tb\nc"), "a&#9;b&#10;c");
    }
}
