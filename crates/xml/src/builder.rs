//! Fluent construction of XML trees.
//!
//! ```
//! use excovery_xml::ElementBuilder;
//! let e = ElementBuilder::new("factor")
//!     .attr("id", "fact_pairs")
//!     .attr("usage", "random")
//!     .child(ElementBuilder::new("levels")
//!         .text_child("level", "5")
//!         .text_child("level", "20"))
//!     .build();
//! assert_eq!(e.find_all("levels/level").len(), 2);
//! ```

use crate::node::{Element, Node};

/// Builder for [`Element`] trees.
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    element: Element,
}

impl ElementBuilder {
    /// Starts a builder for an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            element: Element::new(name),
        }
    }

    /// Adds an attribute.
    pub fn attr(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.element.set_attr(name, value.to_string());
        self
    }

    /// Appends a child built by another builder.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.element.push(child.build());
        self
    }

    /// Appends an already-built child element.
    pub fn child_element(mut self, child: Element) -> Self {
        self.element.push(child);
        self
    }

    /// Appends a text node.
    pub fn text(mut self, text: impl ToString) -> Self {
        self.element.push_text(text.to_string());
        self
    }

    /// Convenience: appends `<name>text</name>`.
    pub fn text_child(mut self, name: impl Into<String>, text: impl ToString) -> Self {
        self.element
            .push(Element::with_text(name, text.to_string()));
        self
    }

    /// Appends a comment node.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.element.children.push(Node::Comment(text.into()));
        self
    }

    /// Appends children from an iterator of builders.
    pub fn children(mut self, iter: impl IntoIterator<Item = ElementBuilder>) -> Self {
        for c in iter {
            self.element.push(c.build());
        }
        self
    }

    /// Applies `f` only when `cond` holds; keeps fluent chains linear.
    pub fn when(self, cond: bool, f: impl FnOnce(Self) -> Self) -> Self {
        if cond {
            f(self)
        } else {
            self
        }
    }

    /// Finishes and returns the element.
    pub fn build(self) -> Element {
        self.element
    }
}

impl From<ElementBuilder> for Element {
    fn from(b: ElementBuilder) -> Self {
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_element_string, WriteOptions};

    #[test]
    fn builds_nested_structure() {
        let e = ElementBuilder::new("actor")
            .attr("id", "actor0")
            .attr("name", "SM")
            .child(
                ElementBuilder::new("sd_actions")
                    .child(ElementBuilder::new("sd_init"))
                    .child(ElementBuilder::new("sd_start_publish")),
            )
            .build();
        assert_eq!(e.attr("name"), Some("SM"));
        assert_eq!(e.find_all("sd_actions/*".trim_end_matches("/*")).len(), 1);
        assert!(e.find("sd_actions/sd_init").is_some());
    }

    #[test]
    fn when_branches() {
        let with = ElementBuilder::new("a")
            .when(true, |b| b.attr("x", 1))
            .build();
        let without = ElementBuilder::new("a")
            .when(false, |b| b.attr("x", 1))
            .build();
        assert_eq!(with.attr("x"), Some("1"));
        assert_eq!(without.attr("x"), None);
    }

    #[test]
    fn children_from_iterator() {
        let e = ElementBuilder::new("levels")
            .children((0..3).map(|i| ElementBuilder::new("level").text(i)))
            .build();
        let texts: Vec<String> = e.elements_named("level").map(|l| l.text()).collect();
        assert_eq!(texts, vec!["0", "1", "2"]);
    }

    #[test]
    fn comment_is_preserved_in_output() {
        let e = ElementBuilder::new("f")
            .comment(" datarate generated load ")
            .build();
        let s = write_element_string(&e, &WriteOptions::compact());
        assert!(s.contains("<!-- datarate generated load -->"), "{s}");
    }
}
