//! Recursive-descent XML parser.
//!
//! Hand-written over a byte cursor; tracks line/column for error messages.
//! Parses the subset documented in the crate root.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::escape::unescape;
use crate::node::{Document, Element, Node};

/// Parses a complete XML document and returns it with declaration metadata.
pub fn parse_document(input: &str) -> XmlResult<Document> {
    let mut p = Parser::new(input);
    p.skip_bom();
    let (version, encoding) = p.parse_prolog()?;
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err(XmlErrorKind::Syntax, "content after document element"));
    }
    let mut doc = Document::new(root);
    doc.version = version;
    doc.encoding = encoding;
    Ok(doc)
}

/// Parses a complete XML document (convenience alias of [`parse_document`]).
pub fn parse(input: &str) -> XmlResult<Document> {
    parse_document(input)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, kind: XmlErrorKind, msg: impl Into<String>) -> XmlError {
        XmlError::new(kind, msg, self.line, self.col)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_bom(&mut self) {
        if self.bytes[self.pos..].starts_with(&[0xEF, 0xBB, 0xBF]) {
            self.pos += 3;
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Parses an optional `<?xml ...?>` declaration.
    fn parse_prolog(&mut self) -> XmlResult<(Option<String>, Option<String>)> {
        self.skip_ws();
        if !self.starts_with("<?xml") {
            return Ok((None, None));
        }
        self.bump_n(5);
        let mut version = None;
        let mut encoding = None;
        loop {
            self.skip_ws();
            if self.starts_with("?>") {
                self.bump_n(2);
                break;
            }
            if self.at_end() {
                return Err(self.err(XmlErrorKind::UnexpectedEof, "unterminated XML declaration"));
            }
            let name = self.parse_name()?;
            self.skip_ws();
            self.expect(b'=')?;
            self.skip_ws();
            let value = self.parse_quoted()?;
            match name.as_str() {
                "version" => version = Some(value),
                "encoding" => encoding = Some(value),
                _ => {} // standalone etc. are accepted and ignored
            }
        }
        Ok((version, encoding))
    }

    /// Skips whitespace, comments, PIs and DOCTYPE between top-level items.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.parse_comment()?;
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> XmlResult<()> {
        self.bump_n(2);
        loop {
            if self.starts_with("?>") {
                self.bump_n(2);
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.err(
                    XmlErrorKind::UnexpectedEof,
                    "unterminated processing instruction",
                ));
            }
        }
    }

    fn skip_doctype(&mut self) -> XmlResult<()> {
        // Internal subsets with nested brackets are tolerated with a depth counter.
        let mut depth = 0usize;
        loop {
            match self.bump() {
                Some(b'[') => depth += 1,
                Some(b']') => depth = depth.saturating_sub(1),
                Some(b'>') if depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(XmlErrorKind::UnexpectedEof, "unterminated DOCTYPE")),
            }
        }
    }

    fn parse_comment(&mut self) -> XmlResult<Node> {
        debug_assert!(self.starts_with("<!--"));
        self.bump_n(4);
        let start = self.pos;
        loop {
            if self.starts_with("-->") {
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err(XmlErrorKind::Syntax, "comment is not valid UTF-8"))?
                    .to_string();
                self.bump_n(3);
                return Ok(Node::Comment(text));
            }
            if self.bump().is_none() {
                return Err(self.err(XmlErrorKind::UnexpectedEof, "unterminated comment"));
            }
        }
    }

    fn expect(&mut self, b: u8) -> XmlResult<()> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(
                XmlErrorKind::Syntax,
                format!(
                    "expected '{}', found {:?}",
                    b as char,
                    self.peek().map(|c| c as char)
                ),
            ))
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        match self.peek() {
            Some(b) if Self::is_name_start(b) => {
                self.bump();
            }
            _ => return Err(self.err(XmlErrorKind::Syntax, "expected a name")),
        }
        while matches!(self.peek(), Some(b) if Self::is_name_char(b)) {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err(XmlErrorKind::Syntax, "name is not valid UTF-8"))?
            .to_string())
    }

    fn parse_quoted(&mut self) -> XmlResult<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err(XmlErrorKind::Syntax, "expected quoted value")),
        };
        self.bump();
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err(XmlErrorKind::Syntax, "value is not valid UTF-8"))?;
                    self.bump();
                    return unescape(raw, line, col);
                }
                Some(b'<') => {
                    return Err(self.err(XmlErrorKind::Syntax, "'<' not allowed in attribute value"))
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(
                        self.err(XmlErrorKind::UnexpectedEof, "unterminated attribute value")
                    )
                }
            }
        }
    }

    fn parse_element(&mut self) -> XmlResult<Element> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        // Attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(b'/') => {
                    self.bump();
                    self.expect(b'>')?;
                    return Ok(element); // self-closing
                }
                Some(b) if Self::is_name_start(b) => {
                    let attr_name = self.parse_name()?;
                    if element.attr(&attr_name).is_some() {
                        return Err(self.err(
                            XmlErrorKind::Syntax,
                            format!("duplicate attribute '{attr_name}'"),
                        ));
                    }
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let value = self.parse_quoted()?;
                    element.attributes.push((attr_name, value));
                }
                Some(c) => {
                    return Err(self.err(
                        XmlErrorKind::Syntax,
                        format!("unexpected character '{}' in tag", c as char),
                    ))
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof, "unterminated start tag")),
            }
        }
        // Content
        self.parse_content(&mut element)?;
        Ok(element)
    }

    fn parse_content(&mut self, element: &mut Element) -> XmlResult<()> {
        loop {
            if self.starts_with("</") {
                self.bump_n(2);
                let name = self.parse_name()?;
                if name != element.name {
                    return Err(self.err(
                        XmlErrorKind::TagMismatch,
                        format!("expected </{}>, found </{}>", element.name, name),
                    ));
                }
                self.skip_ws();
                self.expect(b'>')?;
                // Whitespace-only text between child elements is layout,
                // not data; but if the element holds *only* whitespace
                // text, that text is its (significant) content.
                let has_elements = element
                    .children
                    .iter()
                    .any(|c| matches!(c, Node::Element(_)));
                if has_elements {
                    element
                        .children
                        .retain(|c| !matches!(c, Node::Text(t) if t.trim().is_empty()));
                }
                return Ok(());
            } else if self.starts_with("<!--") {
                let c = self.parse_comment()?;
                element.children.push(c);
            } else if self.starts_with("<![CDATA[") {
                let text = self.parse_cdata()?;
                element.children.push(Node::Text(text));
            } else if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
            } else if self.at_end() {
                return Err(self.err(
                    XmlErrorKind::UnexpectedEof,
                    format!("unexpected end of input inside <{}>", element.name),
                ));
            } else {
                // Keep all text for now; whitespace-only layout runs are
                // pruned when the element closes (see above), so elements
                // whose entire content is whitespace preserve it.
                let text = self.parse_text()?;
                if !text.is_empty() {
                    element.children.push(Node::Text(text));
                }
            }
        }
    }

    fn parse_cdata(&mut self) -> XmlResult<String> {
        self.bump_n(9); // <![CDATA[
        let start = self.pos;
        loop {
            if self.starts_with("]]>") {
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err(XmlErrorKind::Syntax, "CDATA is not valid UTF-8"))?
                    .to_string();
                self.bump_n(3);
                return Ok(text);
            }
            if self.bump().is_none() {
                return Err(self.err(XmlErrorKind::UnexpectedEof, "unterminated CDATA section"));
            }
        }
    }

    fn parse_text(&mut self) -> XmlResult<String> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.bump();
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err(XmlErrorKind::Syntax, "text is not valid UTF-8"))?;
        unescape(raw, line, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b x=\"1\"/><c>text</c></a>").unwrap();
        let root = doc.root();
        assert_eq!(root.name, "a");
        assert_eq!(root.child("b").unwrap().attr("x"), Some("1"));
        assert_eq!(root.child("c").unwrap().text(), "text");
    }

    #[test]
    fn parses_declaration() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<r/>").unwrap();
        assert_eq!(doc.version.as_deref(), Some("1.0"));
        assert_eq!(doc.encoding.as_deref(), Some("UTF-8"));
    }

    #[test]
    fn preserves_comments_in_tree() {
        let doc = parse("<a><!-- note --><b/></a>").unwrap();
        assert!(matches!(doc.root().children[0], Node::Comment(ref c) if c.contains("note")));
    }

    #[test]
    fn cdata_is_literal() {
        let doc = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(doc.root().text(), "1 < 2 && 3 > 2");
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let doc = parse("<a k=\"&lt;v&gt;\">&amp;&#65;</a>").unwrap();
        assert_eq!(doc.root().attr("k"), Some("<v>"));
        assert_eq!(doc.root().text(), "&A");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::TagMismatch);
    }

    #[test]
    fn duplicate_attribute_error() {
        assert!(parse("<a x=\"1\" x=\"2\"/>").is_err());
    }

    #[test]
    fn truncated_document_error() {
        let err = parse("<a><b>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn content_after_root_error() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.root().children.len(), 2);
    }

    #[test]
    fn doctype_and_pi_skipped() {
        let doc = parse("<?xml version=\"1.0\"?><!DOCTYPE exp [<!ENTITY x \"y\">]><?pi data?><r/>")
            .unwrap();
        assert_eq!(doc.root().name, "r");
    }

    #[test]
    fn error_position_reported() {
        let err = parse("<a>\n<b x=>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn names_allow_colon_dash_dot() {
        let doc = parse("<ns:el-em.x a-b=\"1\"/>").unwrap();
        assert_eq!(doc.root().name, "ns:el-em.x");
    }

    #[test]
    fn single_quoted_attributes() {
        let doc = parse("<a k='va\"lue'/>").unwrap();
        assert_eq!(doc.root().attr("k"), Some("va\"lue"));
    }

    #[test]
    fn bom_is_skipped() {
        let input = "\u{FEFF}<a/>".to_string();
        assert!(parse(&input).is_ok());
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let doc = parse(&s).unwrap();
        assert_eq!(doc.root().count_elements(), 200);
    }
}
