//! XML tree representation: [`Document`], [`Element`] and [`Node`].

/// A parsed XML document: optional declaration plus a single root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Value of the `version` pseudo-attribute of the XML declaration.
    pub version: Option<String>,
    /// Value of the `encoding` pseudo-attribute of the XML declaration.
    pub encoding: Option<String>,
    root: Element,
}

impl Document {
    /// Wraps `root` into a document without a declaration.
    pub fn new(root: Element) -> Self {
        Self {
            version: None,
            encoding: None,
            root,
        }
    }

    /// Wraps `root` into a document with a standard `1.0`/`UTF-8` declaration.
    pub fn with_declaration(root: Element) -> Self {
        Self {
            version: Some("1.0".into()),
            encoding: Some("UTF-8".into()),
            root,
        }
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Mutable access to the root element.
    pub fn root_mut(&mut self) -> &mut Element {
        &mut self.root
    }

    /// Consumes the document and returns the root element.
    pub fn into_root(self) -> Element {
        self.root
    }
}

/// A child node of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entities already resolved).
    Text(String),
    /// A comment (`<!-- ... -->`), preserved for round-tripping.
    Comment(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: name, attributes (in document order) and child nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order. Names are unique.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with the given tag name and no content.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Creates an element containing a single text node.
    pub fn with_text(name: impl Into<String>, text: impl Into<String>) -> Self {
        let mut e = Self::new(name);
        e.children.push(Node::Text(text.into()));
        e
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets an attribute, replacing any existing value of the same name.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Appends a child element.
    pub fn push(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Appends a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Iterates over the direct child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterates over direct child elements with the given tag name.
    pub fn elements_named<'s, 'n>(
        &'s self,
        name: &'n str,
    ) -> impl Iterator<Item = &'s Element> + use<'s, 'n> {
        self.elements().filter(move |e| e.name == name)
    }

    /// Returns the first direct child element with the given name.
    pub fn child<'s>(&'s self, name: &str) -> Option<&'s Element> {
        self.elements_named(name).next()
    }

    /// Concatenated text content of this element's *direct* text children,
    /// trimmed of surrounding whitespace.
    pub fn text(&self) -> String {
        self.text_raw().trim().to_string()
    }

    /// Concatenated text content of direct text children, *untrimmed* —
    /// for formats where surrounding whitespace is significant (XML-RPC
    /// `<string>` values).
    pub fn text_raw(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Recursively concatenated text of this element and all descendants.
    pub fn deep_text(&self) -> String {
        fn walk(e: &Element, out: &mut String) {
            for c in &e.children {
                match c {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(el) => walk(el, out),
                    Node::Comment(_) => {}
                }
            }
        }
        let mut out = String::new();
        walk(self, &mut out);
        out.trim().to_string()
    }

    /// True if the element has no attributes and no non-comment children.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty() && self.children.iter().all(|c| matches!(c, Node::Comment(_)))
    }

    /// Counts all descendant elements, including `self`.
    pub fn count_elements(&self) -> usize {
        1 + self.elements().map(Element::count_elements).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        let mut root = Element::new("factor");
        root.set_attr("id", "fact_bw");
        root.set_attr("usage", "constant");
        let mut levels = Element::new("levels");
        levels.push(Element::with_text("level", "10"));
        levels.push(Element::with_text("level", "50"));
        root.push(levels);
        root
    }

    #[test]
    fn attr_lookup_and_overwrite() {
        let mut e = sample();
        assert_eq!(e.attr("id"), Some("fact_bw"));
        assert_eq!(e.attr("missing"), None);
        e.set_attr("id", "other");
        assert_eq!(e.attr("id"), Some("other"));
        assert_eq!(e.attributes.len(), 2, "overwrite must not duplicate");
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        let levels = e.child("levels").unwrap();
        let texts: Vec<String> = levels.elements_named("level").map(|l| l.text()).collect();
        assert_eq!(texts, vec!["10", "50"]);
    }

    #[test]
    fn text_trims_and_concatenates() {
        let mut e = Element::new("x");
        e.push_text("  a");
        e.push(Element::new("skip"));
        e.push_text("b  ");
        assert_eq!(e.text(), "a\u{0}b".replace('\u{0}', ""));
    }

    #[test]
    fn deep_text_descends() {
        let e = sample();
        assert_eq!(e.deep_text(), "1050");
    }

    #[test]
    fn count_elements_counts_self_and_descendants() {
        assert_eq!(sample().count_elements(), 4);
    }

    #[test]
    fn empty_ignores_comments() {
        let mut e = Element::new("x");
        e.children.push(Node::Comment("note".into()));
        assert!(e.is_empty());
        e.push_text("t");
        assert!(!e.is_empty());
    }
}
