//! Path-style queries over element trees.
//!
//! A query path is a `/`-separated list of element names, optionally with a
//! positional index (`factor[2]`) or an attribute predicate
//! (`factor[@id=fact_bw]`). Paths are relative to the element they are called
//! on and never include that element itself.

use crate::node::Element;

/// One parsed step of a query path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step<'a> {
    /// All children of the given name.
    Named(&'a str),
    /// The n-th (0-based) child of the given name.
    Indexed(&'a str, usize),
    /// Children of the given name with attribute `key` equal to `value`.
    AttrEq {
        name: &'a str,
        key: &'a str,
        value: &'a str,
    },
}

fn parse_step(raw: &str) -> Step<'_> {
    if let Some(open) = raw.find('[') {
        let name = &raw[..open];
        let body = raw[open + 1..].trim_end_matches(']');
        if let Some(rest) = body.strip_prefix('@') {
            if let Some((key, value)) = rest.split_once('=') {
                return Step::AttrEq {
                    name,
                    key,
                    value: value.trim_matches(&['"', '\''][..]),
                };
            }
        }
        if let Ok(idx) = body.parse::<usize>() {
            return Step::Indexed(name, idx);
        }
    }
    Step::Named(raw)
}

impl Element {
    /// Returns the first element matching `path`, or `None`.
    ///
    /// ```
    /// # use excovery_xml::parse;
    /// let doc = parse(r#"<fl><factor id="a"/><factor id="b"/></fl>"#).unwrap();
    /// assert_eq!(doc.root().find("factor[@id=b]").unwrap().attr("id"), Some("b"));
    /// assert_eq!(doc.root().find("factor[1]").unwrap().attr("id"), Some("b"));
    /// ```
    pub fn find<'s>(&'s self, path: &str) -> Option<&'s Element> {
        self.find_all(path).into_iter().next()
    }

    /// Returns all elements matching `path`, in document order.
    pub fn find_all<'s>(&'s self, path: &str) -> Vec<&'s Element> {
        let mut current: Vec<&'s Element> = vec![self];
        for raw in path.split('/').filter(|s| !s.is_empty()) {
            let step = parse_step(raw);
            let mut next = Vec::new();
            for el in current {
                match &step {
                    Step::Named(name) => next.extend(el.elements_named(name)),
                    Step::Indexed(name, idx) => {
                        if let Some(hit) = el.elements_named(name).nth(*idx) {
                            next.push(hit);
                        }
                    }
                    Step::AttrEq { name, key, value } => next.extend(
                        el.elements_named(name)
                            .filter(|e| e.attr(key) == Some(*value)),
                    ),
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        current
    }

    /// Returns the trimmed text content of the first element matching `path`.
    pub fn find_text(&self, path: &str) -> Option<String> {
        self.find(path).map(|e| e.text())
    }

    /// Parses the text of the element at `path` into `T`.
    pub fn find_parsed<T: std::str::FromStr>(&self, path: &str) -> Option<T> {
        self.find_text(path)
            .and_then(|t| t.trim_matches('"').parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    const SRC: &str = r#"
        <factorlist>
          <factor id="fact_nodes" usage="blocking"><levels><level>A</level></levels></factor>
          <factor id="fact_pairs" usage="random">
            <levels><level>5</level><level>20</level></levels>
          </factor>
          <factor id="fact_bw" usage="constant">
            <levels><level>10</level><level>50</level><level>100</level></levels>
          </factor>
        </factorlist>"#;

    #[test]
    fn find_first_and_all() {
        let doc = parse(SRC).unwrap();
        let root = doc.root();
        assert_eq!(root.find("factor").unwrap().attr("id"), Some("fact_nodes"));
        assert_eq!(root.find_all("factor").len(), 3);
        assert_eq!(root.find_all("factor/levels/level").len(), 6);
    }

    #[test]
    fn attribute_predicate() {
        let doc = parse(SRC).unwrap();
        let bw = doc.root().find("factor[@id=fact_bw]").unwrap();
        assert_eq!(bw.attr("usage"), Some("constant"));
    }

    #[test]
    fn positional_index() {
        let doc = parse(SRC).unwrap();
        let levels = doc.root().find("factor[@id=fact_bw]/levels").unwrap();
        assert_eq!(levels.find("level[2]").unwrap().text(), "100");
        assert!(levels.find("level[3]").is_none());
    }

    #[test]
    fn find_text_and_parsed() {
        let doc = parse(SRC).unwrap();
        let root = doc.root();
        assert_eq!(
            root.find_text("factor[@id=fact_pairs]/levels/level"),
            Some("5".into())
        );
        let v: Option<u32> = root.find_parsed("factor[@id=fact_pairs]/levels/level[1]");
        assert_eq!(v, Some(20));
    }

    #[test]
    fn missing_path_is_none() {
        let doc = parse(SRC).unwrap();
        assert!(doc.root().find("nope/deeper").is_none());
        assert!(doc.root().find_all("factor/nope").is_empty());
    }

    #[test]
    fn quoted_text_parses() {
        let doc = parse("<t><timeout>\"30\"</timeout></t>").unwrap();
        let v: Option<u32> = doc.root().find_parsed("timeout");
        assert_eq!(v, Some(30));
    }
}
