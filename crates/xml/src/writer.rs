//! Serialization of XML trees back to text.

use crate::escape::{escape_attr, escape_text};
use crate::node::{Document, Element, Node};

/// Options controlling serialization.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indent string per nesting level; `None` emits compact output.
    pub indent: Option<String>,
    /// Emit an `<?xml ...?>` declaration.
    pub declaration: bool,
    /// Collapse childless elements into `<name/>`.
    pub self_close_empty: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        Self {
            indent: Some("  ".into()),
            declaration: true,
            self_close_empty: true,
        }
    }
}

impl WriteOptions {
    /// Compact output: no indentation, no declaration.
    pub fn compact() -> Self {
        Self {
            indent: None,
            declaration: false,
            self_close_empty: true,
        }
    }
}

/// Serializes a document compactly (no indentation, no declaration).
pub fn to_string(doc: &Document) -> String {
    write_document(doc, &WriteOptions::compact())
}

/// Serializes a document with two-space indentation and a declaration.
pub fn to_string_pretty(doc: &Document) -> String {
    write_document(doc, &WriteOptions::default())
}

/// Serializes a document with explicit options.
pub fn write_document(doc: &Document, opts: &WriteOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        let version = doc.version.as_deref().unwrap_or("1.0");
        out.push_str("<?xml version=\"");
        out.push_str(version);
        out.push('"');
        if let Some(enc) = doc.encoding.as_deref().or(Some("UTF-8")) {
            out.push_str(" encoding=\"");
            out.push_str(enc);
            out.push('"');
        }
        out.push_str("?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    write_element(doc.root(), opts, 0, &mut out);
    if opts.indent.is_some() {
        out.push('\n');
    }
    out
}

/// Serializes a bare element with explicit options.
pub fn write_element_string(e: &Element, opts: &WriteOptions) -> String {
    let mut out = String::new();
    write_element(e, opts, 0, &mut out);
    out
}

fn write_indent(opts: &WriteOptions, depth: usize, out: &mut String) {
    if let Some(ind) = &opts.indent {
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
}

fn write_element(e: &Element, opts: &WriteOptions, depth: usize, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (k, v) in &e.attributes {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_attr(v));
        out.push('"');
    }
    let effective_children: Vec<&Node> = e.children.iter().collect();
    if effective_children.is_empty() && opts.self_close_empty {
        out.push_str(" />");
        return;
    }
    out.push('>');
    // Mixed content (any text child) is written inline to keep text intact.
    let has_text = e.children.iter().any(|c| matches!(c, Node::Text(_)));
    let multiline = opts.indent.is_some() && !has_text && !effective_children.is_empty();
    for child in &e.children {
        if multiline {
            out.push('\n');
            write_indent(opts, depth + 1, out);
        }
        match child {
            Node::Element(el) => write_element(el, opts, depth + 1, out),
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
        }
    }
    if multiline {
        out.push('\n');
        write_indent(opts, depth, out);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) -> Document {
        let doc = parse(src).unwrap();
        let text = to_string(&doc);
        parse(&text).unwrap_or_else(|e| panic!("reparse of {text:?} failed: {e}"))
    }

    #[test]
    fn compact_roundtrip_preserves_tree() {
        let src = "<a x=\"1\"><b>t &amp; u</b><c/><!--n--></a>";
        let doc = parse(src).unwrap();
        assert_eq!(roundtrip(src), doc);
    }

    #[test]
    fn pretty_output_is_reparseable_and_equal() {
        let src = "<factorlist><factor id=\"f\"><levels><level>5</level><level>20</level></levels></factor></factorlist>";
        let doc = parse(src).unwrap();
        let pretty = to_string_pretty(&doc);
        assert!(pretty.starts_with("<?xml"));
        assert!(pretty.contains("\n  <factor"));
        assert_eq!(parse(&pretty).unwrap().root(), doc.root());
    }

    #[test]
    fn empty_elements_self_close() {
        let doc = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><b /></a>");
    }

    #[test]
    fn attribute_escaping_roundtrips() {
        let mut root = Element::new("a");
        root.set_attr("k", "a<b>\"c\"&\n");
        let doc = Document::new(root.clone());
        let again = parse(&to_string(&doc)).unwrap();
        assert_eq!(again.root(), &root);
    }

    #[test]
    fn text_with_angle_brackets_escaped() {
        let doc = Document::new(Element::with_text("a", "1 < 2 & 3 > 2"));
        let s = to_string(&doc);
        assert!(s.contains("&lt;") && s.contains("&amp;"));
        assert_eq!(parse(&s).unwrap().root().text(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn mixed_content_stays_inline() {
        let src = "<p>one<b>two</b>three</p>";
        let doc = parse(src).unwrap();
        let pretty = write_document(&doc, &WriteOptions::default());
        assert!(pretty.contains("one<b>two</b>three"));
    }
}
