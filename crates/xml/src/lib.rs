//! # excovery-xml
//!
//! A small, dependency-free XML implementation covering the subset of XML
//! needed by ExCovery: experiment descriptions (paper §IV) and XML-RPC
//! messages (paper §VI-A).
//!
//! The crate provides:
//!
//! * a tokenizing [`parser`] producing a [`Document`] tree of [`Element`]s,
//! * a [`writer`] that serializes trees back to text (pretty or compact),
//! * an ergonomic [`builder`] API for constructing documents in code,
//! * simple path-style [`query`] helpers (`root.find("factorlist/factor")`),
//! * entity escaping/unescaping in [`escape`].
//!
//! Supported syntax: elements, attributes, text, CDATA sections, comments,
//! processing instructions (skipped), XML declarations, the five predefined
//! entities and numeric character references. Namespaces are passed through
//! as plain prefixed names (the paper's descriptions do not use them).
//!
//! ```
//! use excovery_xml::parse;
//! let doc = parse("<exp><param key=\"sd_protocol\">zeroconf</param></exp>").unwrap();
//! let param = doc.root().find("param").unwrap();
//! assert_eq!(param.attr("key"), Some("sd_protocol"));
//! assert_eq!(param.text(), "zeroconf");
//! ```

pub mod builder;
pub mod error;
pub mod escape;
pub mod node;
pub mod parser;
pub mod query;
pub mod writer;

pub use builder::ElementBuilder;
pub use error::{XmlError, XmlResult};
pub use node::{Document, Element, Node};
pub use parser::{parse, parse_document};
pub use writer::{to_string, to_string_pretty, WriteOptions};
