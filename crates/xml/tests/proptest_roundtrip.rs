//! Property-based tests: any generated tree survives write → parse intact,
//! and arbitrary strings survive escape → unescape.

use excovery_xml::writer::{write_document, WriteOptions};
use excovery_xml::{parse, Document, Element, Node};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,11}"
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Non-whitespace-only printable text including XML-special characters.
    "[ -~]{0,24}[!-~]"
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), text_strategy()), 0..3),
    )
        .prop_map(|(name, attrs)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v); // set_attr dedups names
            }
            e
        });
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    text_strategy().prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                // Merge adjacent text nodes: the parser cannot distinguish
                // "ab" from "a"+"b", so normalize the generated tree.
                for c in children {
                    match (e.children.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => e.children.push(c),
                    }
                }
                e
            })
    })
}

/// The parser trims pure-layout whitespace and the writer re-escapes text, so
/// compare trees after normalizing text nodes the way a reparse would.
fn normalize(e: &Element) -> Element {
    let mut out = Element::new(e.name.clone());
    out.attributes = e.attributes.clone();
    for c in &e.children {
        match c {
            Node::Element(el) => out.children.push(Node::Element(normalize(el))),
            Node::Text(t) => {
                if !t.trim().is_empty() {
                    out.children.push(Node::Text(t.clone()));
                }
            }
            Node::Comment(c) => out.children.push(Node::Comment(c.clone())),
        }
    }
    out
}

proptest! {
    #[test]
    fn compact_roundtrip(root in element_strategy()) {
        let doc = Document::new(root.clone());
        let text = write_document(&doc, &WriteOptions::compact());
        let reparsed = parse(&text).expect("reparse");
        prop_assert_eq!(normalize(reparsed.root()), normalize(&root));
    }

    #[test]
    fn pretty_roundtrip(root in element_strategy()) {
        let doc = Document::new(root.clone());
        let text = write_document(&doc, &WriteOptions::default());
        let reparsed = parse(&text).expect("reparse");
        prop_assert_eq!(normalize(reparsed.root()), normalize(&root));
    }

    #[test]
    fn escape_unescape_text(s in "\\PC*") {
        let esc = excovery_xml::escape::escape_text(&s);
        prop_assert_eq!(excovery_xml::escape::unescape(&esc, 1, 1).unwrap(), s);
    }

    #[test]
    fn escape_unescape_attr(s in "\\PC*") {
        let esc = excovery_xml::escape::escape_attr(&s);
        prop_assert_eq!(excovery_xml::escape::unescape(&esc, 1, 1).unwrap(), s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }
}
